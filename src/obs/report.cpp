#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::obs {

RunReport& RunReport::global() {
  static RunReport* r = new RunReport();  // leaked: outlives all users
  return *r;
}

void RunReport::set_meta(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lk(m_);
  meta_[key] = value;
}

void RunReport::add_section(const std::string& name, const std::string& json_fragment) {
  std::lock_guard<std::mutex> lk(m_);
  sections_[name] = json_fragment;
}

void RunReport::add_run_times(const std::string& label, const std::vector<double>& ms) {
  std::lock_guard<std::mutex> lk(m_);
  auto& v = run_times_ms_[label];
  v.insert(v.end(), ms.begin(), ms.end());
}

std::string RunReport::json() const {
  // Aggregate spans per name: the report wants stage attribution (how much
  // total time went to quantize vs. shuffle vs. assemble), not the raw
  // per-chunk event list — that is what the trace file is for.
  struct Agg {
    u64 count = 0, total_ns = 0, min_ns = UINT64_MAX, max_ns = 0;
  };
  std::map<std::string, Agg> spans;
  for (const SpanEvent& e : TraceRecorder::global().events()) {
    Agg& a = spans[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    a.min_ns = std::min(a.min_ns, e.dur_ns);
    a.max_ns = std::max(a.max_ns, e.dur_ns);
  }

  std::lock_guard<std::mutex> lk(m_);
  JsonWriter w;
  w.begin_object();
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta_) w.kv(k, v);
  w.end_object();
  w.key("metrics").raw(MetricsRegistry::global().json());
  w.key("spans").begin_object();
  for (const auto& [name, a] : spans) {
    w.key(name).begin_object();
    w.kv("count", static_cast<unsigned long long>(a.count));
    w.kv("total_ms", a.total_ns / 1e6);
    w.kv("min_ms", a.min_ns / 1e6);
    w.kv("max_ms", a.max_ns / 1e6);
    w.end_object();
  }
  w.end_object();
  w.key("run_times_ms").begin_object();
  for (const auto& [label, times] : run_times_ms_) {
    w.key(label).begin_array();
    for (double t : times) w.value(t);
    w.end_array();
  }
  w.end_object();
  w.key("sections").begin_object();
  for (const auto& [name, frag] : sections_) w.key(name).raw(frag);
  w.end_object();
  w.end_object();
  return w.take();
}

void RunReport::write(const std::string& path) const {
  std::string doc = json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw CompressionError("obs: cannot open report file '" + path + "'");
  std::size_t wrote = std::fwrite(doc.data(), 1, doc.size(), f);
  int rc = std::fclose(f);
  if (wrote != doc.size() || rc != 0)
    throw CompressionError("obs: short write to report file '" + path + "'");
}

void RunReport::clear() {
  std::lock_guard<std::mutex> lk(m_);
  meta_.clear();
  sections_.clear();
  run_times_ms_.clear();
}

}  // namespace repro::obs
