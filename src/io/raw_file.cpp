#include "io/raw_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

namespace repro::io {
namespace {

using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

std::string errno_text() {
  return errno ? std::strerror(errno) : "unexpected end of file";
}

FilePtr open_or_throw(const std::string& path, const char* mode, const char* verb) {
  errno = 0;
  FilePtr f(std::fopen(path.c_str(), mode), &std::fclose);
  if (!f) throw CompressionError("cannot " + std::string(verb) + " " + path + ": " + errno_text());
  return f;
}

/// 64-bit-clean size query: fseek/ftell use `long`, which is 32-bit on some
/// ABIs, so every return value is checked and the size is validated before
/// it is trusted (a >2 GiB file on a 32-bit `long` makes ftell fail or go
/// negative rather than silently truncate the read).
u64 stream_size(std::FILE* f, const std::string& path) {
  errno = 0;
  if (std::fseek(f, 0, SEEK_END) != 0)
    throw CompressionError("cannot seek " + path + ": " + errno_text());
  long size = std::ftell(f);
  if (size < 0) throw CompressionError("cannot stat " + path + ": " + errno_text());
  if (std::fseek(f, 0, SEEK_SET) != 0)
    throw CompressionError("cannot seek " + path + ": " + errno_text());
  return static_cast<u64>(size);
}

/// fread the full range in bounded pieces; a single fread of the whole buffer
/// is allowed to short-count, and looping also keeps each request well under
/// any platform size_t quirks on huge files.
void read_exact(std::FILE* f, u8* dst, std::size_t n, const std::string& path) {
  constexpr std::size_t kBlock = std::size_t{64} << 20;  // 64 MiB per fread
  std::size_t done = 0;
  while (done < n) {
    errno = 0;
    std::size_t want = std::min(kBlock, n - done);
    std::size_t got = std::fread(dst + done, 1, want, f);
    if (got == 0)
      throw CompressionError("short read on " + path + ": " + errno_text());
    done += got;
  }
}

}  // namespace

std::vector<u8> read_file(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb", "open");
  u64 size = stream_size(f.get(), path);
  if (size > std::numeric_limits<std::size_t>::max())
    throw CompressionError(path + ": file too large for this address space");
  std::vector<u8> buf(static_cast<std::size_t>(size));
  if (size > 0) read_exact(f.get(), buf.data(), buf.size(), path);
  return buf;
}

u64 file_size(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb", "open");
  return stream_size(f.get(), path);
}

std::vector<u8> read_file_range(const std::string& path, u64 offset, std::size_t size) {
  FilePtr f = open_or_throw(path, "rb", "open");
  u64 total = stream_size(f.get(), path);
  if (offset > total || size > total - offset)
    throw CompressionError(path + ": read range past end of file");
  if (offset > static_cast<u64>(std::numeric_limits<long>::max()))
    throw CompressionError(path + ": offset exceeds seek range");
  errno = 0;
  if (std::fseek(f.get(), static_cast<long>(offset), SEEK_SET) != 0)
    throw CompressionError("cannot seek " + path + ": " + errno_text());
  std::vector<u8> buf(size);
  if (size > 0) read_exact(f.get(), buf.data(), buf.size(), path);
  return buf;
}

void write_file(const std::string& path, const void* data, std::size_t size) {
  FilePtr f = open_or_throw(path, "wb", "create");
  errno = 0;
  if (size > 0 && std::fwrite(data, 1, size, f.get()) != size)
    throw CompressionError("short write on " + path + ": " + errno_text());
}

}  // namespace repro::io
