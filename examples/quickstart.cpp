// Quickstart: compress an array with a guaranteed error bound in ~20 lines.
//
//   build/examples/quickstart
//
// Demonstrates the minimal PFPL API: pick a bound type + epsilon, compress,
// decompress, and (optionally) verify — although verification is only for
// show here, since the bound is guaranteed by construction.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pfpl.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

int main() {
  // Some scientific-looking data: a smooth wave with a little noise.
  std::vector<float> data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::sin(i * 0.001f) + 0.001f * std::cos(i * 1.7f);

  // Compress with a point-wise absolute error bound of 1e-3.
  Bytes compressed = pfpl::compress(Field(data.data(), data.size()),
                                    {.eps = 1e-3, .eb = EbType::ABS});

  // Decompress (any executor can decode any stream).
  std::vector<float> restored = pfpl::decompress_as<float>(compressed);

  auto stats = metrics::compute_stats(std::span<const float>(data),
                                      std::span<const float>(restored));
  std::size_t violations = metrics::count_violations(
      std::span<const float>(data), std::span<const float>(restored), 1e-3, EbType::ABS);

  std::printf("values:        %zu\n", data.size());
  std::printf("raw size:      %zu bytes\n", data.size() * sizeof(float));
  std::printf("compressed:    %zu bytes\n", compressed.size());
  std::printf("ratio:         %.2fx\n",
              metrics::compression_ratio(data.size() * 4, compressed.size()));
  std::printf("max abs error: %.3g (bound 1e-3)\n", stats.max_abs);
  std::printf("PSNR:          %.1f dB\n", stats.psnr);
  std::printf("violations:    %zu (always 0 -- the bound is guaranteed)\n", violations);
  return violations == 0 ? 0 : 1;
}
