// Section III-B statistics reproduction: the cost of the error-bound
// guarantee.
//
// The paper reports that at an ABS bound of 1E-3, on average 0.7% of values
// are unquantizable (max 11.2% on one input) and that losslessly inlining
// them costs about 5% compression ratio on average. This bench measures,
// per single-precision suite:
//   * the fraction of unquantizable values (encoder verify failures),
//   * the compression ratio with the guarantee (lossless inlining, as
//     shipped) vs. without it (bins force-clamped, bound violated) — the
//     ratio delta is the cost of the guarantee.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "data/synthetic.hpp"
#include "harness.hpp"

using namespace repro;
using pfpl::AbsQuantizer;

namespace {

struct Cost {
  double unquantizable_frac = 0;
  double ratio_guaranteed = 0;
  double ratio_unguarded = 0;
};

Cost measure(const std::vector<float>& v, double eps) {
  AbsQuantizer<float> q(eps);
  const std::size_t n = v.size();
  std::vector<u32> words(n), forced(n);
  std::size_t unq = 0;
  const double inv = 0.5 / eps;
  for (std::size_t i = 0; i < n; ++i) {
    words[i] = q.encode(v[i]);
    if (!AbsQuantizer<float>::is_bin(words[i]) && std::isfinite(v[i])) ++unq;
    // The unguarded variant a guarantee-free compressor would produce:
    // clamp the bin into range and emit it no matter what.
    double bd = fpmath::round_nearest_even(static_cast<double>(v[i]) * inv);
    double lim = static_cast<double>(AbsQuantizer<float>::max_bin);
    i64 bin = static_cast<i64>(std::clamp(bd, -lim, lim));
    u32 mag = static_cast<u32>(bin < 0 ? -bin : bin);
    forced[i] = (mag << 1) | u32{bin < 0};
  }
  auto chunked_size = [](const std::vector<u32>& w) {
    std::size_t total = 0;
    constexpr std::size_t cw = pfpl::chunk_words<u32>();
    for (std::size_t beg = 0; beg < w.size(); beg += cw) {
      std::vector<u8> out;
      pfpl::chunk_encode(w.data() + beg, std::min(cw, w.size() - beg), out);
      total += out.size() + 4;  // +size-table entry
    }
    return total;
  };
  Cost c;
  c.unquantizable_frac = static_cast<double>(unq) / static_cast<double>(n);
  c.ratio_guaranteed = static_cast<double>(n * 4) / static_cast<double>(chunked_size(words));
  c.ratio_unguarded = static_cast<double>(n * 4) / static_cast<double>(chunked_size(forced));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  std::printf("# Section III-B: cost of the error-bound guarantee (ABS, eps = 1e-3)\n");
  std::printf("suite,file,unquantizable_pct,ratio_guaranteed,ratio_unguarded,ratio_cost_pct\n");
  double sum_frac = 0, max_frac = 0, sum_cost = 0;
  int files = 0;
  for (const auto& spec : data::paper_suites()) {
    if (spec.dtype != DType::F32) continue;
    data::Suite s = data::generate(spec, cfg.target_values, cfg.max_files);
    for (const auto& f : s.files) {
      Cost c = measure(f.f32, 1e-3);
      double cost_pct =
          c.ratio_unguarded > 0 ? (1.0 - c.ratio_guaranteed / c.ratio_unguarded) * 100 : 0;
      std::printf("%s,%s,%.3f,%.3f,%.3f,%.2f\n", spec.name.c_str(), f.name.c_str(),
                  c.unquantizable_frac * 100, c.ratio_guaranteed, c.ratio_unguarded, cost_pct);
      sum_frac += c.unquantizable_frac;
      max_frac = std::max(max_frac, c.unquantizable_frac);
      sum_cost += cost_pct;
      ++files;
    }
  }
  std::printf("\n# paper: avg 0.7%% unquantizable, max 11.2%%, ~5%% average ratio cost\n");
  std::printf("summary,avg_unquantizable_pct,%.3f\n", sum_frac / files * 100);
  std::printf("summary,max_unquantizable_pct,%.3f\n", max_frac * 100);
  std::printf("summary,avg_ratio_cost_pct,%.2f\n", sum_cost / files);
  return 0;
}
