// Synthetic SDRBench-like input suites (substitute for Table II).
//
// The paper evaluates on 10 SDRBench suites (7 single-, 3 double-precision;
// 89 files total). Those datasets are not available offline, so each suite
// is replaced by a generator that reproduces the properties PFPL's pipeline
// is sensitive to: dimensionality, precision, smoothness regime (very smooth
// climate fields -> noisy particle data), value ranges centred around zero,
// and absence of NaN/inf/denormals (paper Section III-D). DESIGN.md §1
// records this substitution.
//
// Dims are scaled down from the paper's (laptop-scale harness); the paper's
// original dims and file counts are retained in SuiteSpec for the Table II
// reproduction.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::data {

/// One row of the paper's Table II.
struct SuiteSpec {
  std::string name;
  std::string description;
  DType dtype;
  int paper_files;                        ///< file count in SDRBench
  std::string paper_dims;                 ///< dims as printed in Table II
  std::string kind;                       ///< generator id (see synthetic.cpp)
};

/// The 10 suites of Table II, in paper order.
std::vector<SuiteSpec> paper_suites();

/// One generated file: name plus owned values (f32 or f64 populated per
/// dtype).
struct SyntheticFile {
  std::string name;
  DType dtype = DType::F32;
  std::array<std::size_t, 3> dims{1, 1, 0};
  std::vector<float> f32;
  std::vector<double> f64;

  Field field() const {
    if (dtype == DType::F32) return Field(f32.data(), dims);
    return Field(f64.data(), dims);
  }
  std::size_t byte_size() const { return field().byte_size(); }
};

struct Suite {
  SuiteSpec spec;
  std::vector<SyntheticFile> files;

  std::size_t total_bytes() const {
    std::size_t b = 0;
    for (const auto& f : files) b += f.byte_size();
    return b;
  }
};

/// Generate one suite. `target_values` is the approximate per-file element
/// count (the generator picks dims with the paper's aspect ratio);
/// `max_files` caps the file count (0 = the paper's count).
Suite generate(const SuiteSpec& spec, std::size_t target_values = 1 << 20,
               int max_files = 3, u64 seed = 0x5D12B1E5u);

/// Generate every suite (benchmark harness entry point).
std::vector<Suite> generate_all(std::size_t target_values = 1 << 20, int max_files = 3);

}  // namespace repro::data
