// Kernel-level performance attribution (ROADMAP item 1 groundwork).
//
// The core pipeline is four hot kernels per direction:
//
//   encode: quantize -> delta+negabinary -> tile bitshuffle -> zero-byte elim
//   decode: zero-byte elim -> tile bitshuffle -> delta+negabinary -> dequantize
//
// The existing `core.*` metrics time whole chunks, which says nothing about
// *which* kernel dominates — the question the SIMD work needs answered. This
// unit attributes bytes and time per kernel:
//
//   kernel.<name>.bytes   counter    logical chunk bytes through the kernel
//   kernel.<name>_us      histogram  per-chunk kernel latency (count = calls)
//
// from which MB/s derives as bytes / sum(us). Per-chunk durations are floored
// to whole microseconds (same convention as core.encode_chunk_us), so the sum
// of kernel times can never exceed the enclosing chunk time.
//
// KernelTimer is the RAII recording point: when observability is disabled it
// is a relaxed load + branch — no clock read, nothing recorded (the PR 2
// zero-footprint invariant).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/control.hpp"

namespace repro::obs {

enum class Kernel : int {
  // Encode path, pipeline order.
  Quantize = 0,
  DeltaNb,
  Bitshuffle,
  Zerobyte,
  // Decode path, pipeline order.
  ZerobyteDec,
  BitshuffleDec,
  DeltaNbDec,
  Dequantize,
};

inline constexpr int kKernelCount = 8;

/// Metric-name stem: "quantize", "delta_nb", ... "dequantize".
const char* kernel_name(Kernel k);
/// True for the four encode-path kernels.
bool kernel_is_encode(Kernel k);

/// Record one kernel invocation: `bytes` processed in `us` microseconds.
/// Gated on obs::enabled() like every registry update.
void record_kernel(Kernel k, u64 bytes, u64 us);

/// RAII kernel timer: captures the clock only when observability is enabled
/// at construction; the destructor floors the elapsed time to microseconds
/// and records bytes + latency.
class KernelTimer {
 public:
  KernelTimer(Kernel k, std::size_t bytes) {
    if (!obs::enabled()) return;
    k_ = k;
    bytes_ = bytes;
    armed_ = true;
    t0_ = std::chrono::steady_clock::now();
  }
  ~KernelTimer() {
    if (!armed_) return;
    const u64 us = static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0_)
                                        .count());
    record_kernel(k_, bytes_, us);
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  Kernel k_ = Kernel::Quantize;
  std::size_t bytes_ = 0;
  bool armed_ = false;
  std::chrono::steady_clock::time_point t0_;
};

/// One kernel's attribution snapshot, read back from the registry.
struct KernelStat {
  const char* name = "";  ///< metric-name stem
  bool encode = true;     ///< encode-path kernel
  u64 calls = 0;          ///< histogram count
  u64 bytes = 0;          ///< kernel.<name>.bytes
  u64 us = 0;             ///< histogram sum (total kernel microseconds)
  double mbps = 0;        ///< bytes / us, 0 when unmeasured
};

/// Snapshot all eight kernels from the global registry (zero rows included —
/// callers filter on calls/bytes as needed). Pipeline order, encode first.
std::vector<KernelStat> kernel_stats();

/// Pre-rendered RunReport section: {"encode":[{name,calls,bytes,us,MBps}...],
/// "decode":[...]} with zero-call kernels omitted.
std::string kernel_report_json();

/// Human-readable attribution table (used by `pfpl profile`); empty string
/// when nothing was recorded.
std::string kernel_table_text();

}  // namespace repro::obs
