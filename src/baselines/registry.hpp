// Registry of every compressor in the study — PFPL's three executors plus
// the seven baseline re-implementations — in the order of the paper's
// Table III (by initial release date). The benchmark harness sweeps this
// list to regenerate the evaluation figures.
#pragma once

#include <vector>

#include "common/compressor.hpp"

namespace repro::baselines {

/// All compressors, Table III order, PFPL last (paper order).
/// PFPL appears once per executor (PFPL_Serial, PFPL_OMP, PFPL_CUDAsim),
/// mirroring the paper's "we always show all versions of PFPL".
std::vector<CompressorPtr> all_compressors();

/// The seven baselines only (no PFPL).
std::vector<CompressorPtr> baseline_compressors();

/// Look up by name(); throws CompressionError if absent.
CompressorPtr find_compressor(const std::string& name);

}  // namespace repro::baselines
