#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "metrics/error_stats.hpp"

namespace repro::bench {
namespace {

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

struct FileResult {
  double ratio = 0, comp_mbps = 0, decomp_mbps = 0, psnr = 0;
  std::size_t violations = 0;
  bool ok = false;
};

FileResult measure_file(const Compressor& c, const data::SyntheticFile& f, double eps,
                        EbType eb, int runs) {
  FileResult r;
  Field field = f.field();
  try {
    Bytes stream;
    double tc = median_runtime([&] { stream = c.compress(field, eps, eb); }, runs);
    std::vector<u8> raw;
    double td = median_runtime([&] { raw = c.decompress(stream); }, runs);
    r.ratio = metrics::compression_ratio(field.byte_size(), stream.size());
    r.comp_mbps = throughput_mbps(field.byte_size(), tc);
    r.decomp_mbps = throughput_mbps(field.byte_size(), td);
    if (f.dtype == DType::F32) {
      std::vector<float> back(raw.size() / 4);
      std::memcpy(back.data(), raw.data(), raw.size());
      auto st = metrics::compute_stats(std::span<const float>(f.f32),
                                       std::span<const float>(back));
      r.psnr = st.psnr;
      r.violations = metrics::count_violations(std::span<const float>(f.f32),
                                               std::span<const float>(back), eps, eb);
    } else {
      std::vector<double> back(raw.size() / 8);
      std::memcpy(back.data(), raw.data(), raw.size());
      auto st = metrics::compute_stats(std::span<const double>(f.f64),
                                       std::span<const double>(back));
      r.psnr = st.psnr;
      r.violations = metrics::count_violations(std::span<const double>(f.f64),
                                               std::span<const double>(back), eps, eb);
    }
    r.ok = true;
  } catch (const CompressionError&) {
    r.ok = false;  // unsupported input shape etc.: skip, as the paper skips
  }
  return r;
}

}  // namespace

SweepConfig parse_args(int argc, char** argv, SweepConfig cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--target") cfg.target_values = std::strtoull(next(), nullptr, 10);
    else if (a == "--files") cfg.max_files = std::atoi(next());
    else if (a == "--runs") cfg.runs = std::atoi(next());
    else if (a == "--full") {
      cfg.runs = 9;
      cfg.target_values = 1 << 20;
      cfg.max_files = 4;
    }
  }
  return cfg;
}

std::vector<Row> run_sweep(const SweepConfig& cfg) {
  // Generate matching suites once.
  std::vector<data::Suite> suites;
  for (const auto& spec : data::paper_suites()) {
    if (spec.dtype != cfg.dtype) continue;
    if (cfg.exclude_non_3d && (spec.kind == "exaalt" || spec.kind == "hacc")) continue;
    suites.push_back(data::generate(spec, cfg.target_values, cfg.max_files));
  }

  std::vector<Row> rows;
  for (const auto& comp : baselines::all_compressors()) {
    Features feat = comp->features();
    if (!feat.supports(cfg.eb)) continue;
    if (cfg.dtype == DType::F32 && !feat.f32) continue;
    if (cfg.dtype == DType::F64 && !feat.f64) continue;
    if (contains(cfg.exclude_compressors, comp->name())) continue;
    if (!cfg.only_compressors.empty() && !contains(cfg.only_compressors, comp->name()))
      continue;
    for (double eps : cfg.bounds) {
      std::vector<double> suite_ratio, suite_comp, suite_decomp, suite_psnr;
      std::size_t violations = 0;
      for (const auto& suite : suites) {
        std::vector<double> fr, fc, fd, fp;
        for (const auto& file : suite.files) {
          FileResult r = measure_file(*comp, file, eps, cfg.eb, cfg.runs);
          if (!r.ok) continue;
          fr.push_back(r.ratio);
          fc.push_back(r.comp_mbps);
          fd.push_back(r.decomp_mbps);
          if (std::isfinite(r.psnr)) fp.push_back(r.psnr);
          violations += r.violations;
        }
        if (fr.empty()) continue;
        suite_ratio.push_back(metrics::geomean(fr));
        suite_comp.push_back(metrics::geomean(fc));
        suite_decomp.push_back(metrics::geomean(fd));
        if (!fp.empty()) suite_psnr.push_back(metrics::geomean(fp));
      }
      if (suite_ratio.empty()) continue;
      Row row;
      row.compressor = comp->name();
      row.eb = eps;
      row.ratio = metrics::geomean(suite_ratio);
      row.comp_mbps = metrics::geomean(suite_comp);
      row.decomp_mbps = metrics::geomean(suite_decomp);
      row.psnr_db = metrics::geomean(suite_psnr);
      row.violations = violations;
      rows.push_back(row);
    }
  }
  mark_pareto(rows);
  return rows;
}

void mark_pareto(std::vector<Row>& rows) {
  for (Row& r : rows) {
    bool dom_c = false, dom_d = false;
    for (const Row& o : rows) {
      if (&o == &r || o.eb != r.eb) continue;
      if (o.ratio >= r.ratio && o.comp_mbps >= r.comp_mbps &&
          (o.ratio > r.ratio || o.comp_mbps > r.comp_mbps))
        dom_c = true;
      if (o.ratio >= r.ratio && o.decomp_mbps >= r.decomp_mbps &&
          (o.ratio > r.ratio || o.decomp_mbps > r.decomp_mbps))
        dom_d = true;
    }
    r.pareto_compress = !dom_c;
    r.pareto_decompress = !dom_d;
  }
}

void print_rows(const std::string& figure, const std::vector<Row>& rows) {
  std::printf("# %s\n", figure.c_str());
  std::printf(
      "figure,compressor,eb,ratio,comp_MBps,decomp_MBps,psnr_dB,violations,"
      "pareto_comp,pareto_decomp\n");
  for (const Row& r : rows)
    std::printf("%s,%s,%g,%.3f,%.2f,%.2f,%.2f,%zu,%d,%d\n", figure.c_str(),
                r.compressor.c_str(), r.eb, r.ratio, r.comp_mbps, r.decomp_mbps, r.psnr_db,
                r.violations, r.pareto_compress ? 1 : 0, r.pareto_decompress ? 1 : 0);
  std::printf("\n");
}

}  // namespace repro::bench
