#include "store/segment_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/checksum.hpp"
#include "io/raw_file.hpp"
#include "obs/metrics.hpp"

namespace repro::store {
namespace {

namespace fs = std::filesystem;

/// store.log.* metric handles, resolved once.
struct LogMetrics {
  obs::Counter& appends;
  obs::Counter& dedup_hits;
  obs::Counter& reads;
  obs::Gauge& live_bytes;
  obs::Gauge& dead_bytes;
  obs::Gauge& entries;
  obs::Gauge& segments;
  static LogMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static LogMetrics m{r.counter("store.log.appends"),
                        r.counter("store.log.dedup_hits"),
                        r.counter("store.log.reads"),
                        r.gauge("store.log.live_bytes"),
                        r.gauge("store.log.dead_bytes"),
                        r.gauge("store.log.entries"),
                        r.gauge("store.log.segments")};
    return m;
  }
};

void put_le16(u8* p, u16 v) {
  for (int i = 0; i < 2; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}
void put_le32(u8* p, u32 v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}
void put_le64(u8* p, u64 v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}
u16 get_le16(const u8* p) {
  u16 v = 0;
  for (int i = 0; i < 2; ++i) v = static_cast<u16>(v | (static_cast<u16>(p[i]) << (8 * i)));
  return v;
}
u32 get_le32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}
u64 get_le64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw CompressionError(what + ": " + std::strerror(errno));
}

/// Segment file header: magic, version, reserved, segment id.
void encode_segment_header(u8* p, u64 id) {
  put_le32(p + 0, kSegmentMagic);
  put_le16(p + 4, kStoreVersion);
  put_le16(p + 6, 0);
  put_le64(p + 8, id);
}

/// Chunk frame header layout (little-endian, kChunkFrameHeaderSize bytes):
///   [0]  u32 frame magic
///   [4]  u32 header CRC-32 over bytes [8, 56)
///   [8]  u64 key.hi
///   [16] u64 key.lo
///   [24] u8 dtype, u8 eb type, u16 reserved
///   [28] u32 payload CRC-32
///   [32] f64 eps (IEEE-754 bits)
///   [40] u64 raw_size
///   [48] u64 payload_len
void encode_frame_header(u8* p, const common::Hash128& key, const ChunkMeta& meta,
                         u32 payload_crc, u64 payload_len) {
  put_le32(p + 0, kFrameMagic);
  put_le64(p + 8, key.hi);
  put_le64(p + 16, key.lo);
  p[24] = static_cast<u8>(meta.dtype);
  p[25] = static_cast<u8>(meta.eb);
  put_le16(p + 26, 0);
  put_le32(p + 28, payload_crc);
  u64 eps_bits;
  std::memcpy(&eps_bits, &meta.eps, sizeof eps_bits);
  put_le64(p + 32, eps_bits);
  put_le64(p + 40, meta.raw_size);
  put_le64(p + 48, payload_len);
  put_le32(p + 4, common::crc32(p + 8, kChunkFrameHeaderSize - 8));
}

struct DecodedFrame {
  common::Hash128 key;
  ChunkMeta meta;
  u32 payload_crc = 0;
  u64 payload_len = 0;
};

/// Validate and decode a frame header. Returns false on any mismatch (bad
/// magic, bad header CRC, implausible dtype/eb) — the caller treats that as
/// torn tail or corruption depending on context.
bool decode_frame_header(const u8* p, DecodedFrame& out) {
  if (get_le32(p + 0) != kFrameMagic) return false;
  if (get_le32(p + 4) != common::crc32(p + 8, kChunkFrameHeaderSize - 8)) return false;
  out.key.hi = get_le64(p + 8);
  out.key.lo = get_le64(p + 16);
  if (p[24] > 1 || p[25] > 2) return false;
  out.meta.dtype = static_cast<DType>(p[24]);
  out.meta.eb = static_cast<EbType>(p[25]);
  out.payload_crc = get_le32(p + 28);
  const u64 eps_bits = get_le64(p + 32);
  std::memcpy(&out.meta.eps, &eps_bits, sizeof out.meta.eps);
  out.meta.raw_size = get_le64(p + 40);
  out.payload_len = get_le64(p + 48);
  return true;
}

void fsync_fd_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) throw_errno(what + ": fsync");
}

void fsync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno(dir + ": open for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno(dir + ": fsync");
}

/// Test hook: the PFPL_STORE_TEST_KILL_AT_APPEND-th append in this process
/// writes a deliberately torn frame and SIGKILLs, simulating a crash
/// mid-write for the CI store-smoke job. 0 = disabled.
u64 kill_at_append() {
  static const u64 v = [] {
    const char* e = std::getenv("PFPL_STORE_TEST_KILL_AT_APPEND");
    return e ? std::strtoull(e, nullptr, 10) : 0ull;
  }();
  return v;
}

/// Batch-index variant: the Nth frame *written* through append_batch() in
/// this process tears and SIGKILLs — cumulative across calls, because a
/// caller's batching policy (e.g. the ingest pipeline's greedy batcher) may
/// split one logical batch into several small commits. Read fresh on every
/// call (no cached static) so a fork()ed test child can setenv() after the
/// parent process started.
u64 kill_at_batch_item() {
  const char* e = std::getenv("PFPL_STORE_TEST_KILL_AT_BATCH_ITEM");
  return e ? std::strtoull(e, nullptr, 10) : 0ull;
}

}  // namespace

SegmentStore::SegmentStore(const Options& opts) : opts_(opts) {
  if (opts_.dir.empty()) throw CompressionError("store: empty directory path");
  if (opts_.max_segment_bytes < kSegmentHeaderSize + kChunkFrameHeaderSize)
    throw CompressionError("store: max_segment_bytes too small for one frame");
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec) throw CompressionError(opts_.dir + ": create_directories: " + ec.message());

  std::lock_guard<std::mutex> lk(m_);

  // Manifest first: it carries the generation number. A missing or corrupt
  // manifest is survivable — the directory scan below rebuilds everything.
  bool manifest_ok = false;
  {
    Bytes mf;
    bool have = false;
    try {
      mf = io::read_file(manifest_path());
      have = true;
    } catch (const CompressionError&) {
      have = false;
    }
    bool ok = false;
    if (have && mf.size() >= 24 + 4 && get_le32(mf.data()) == kManifestMagic &&
        get_le16(mf.data() + 4) == kStoreVersion) {
      const u32 crc = get_le32(mf.data() + mf.size() - 4);
      if (crc == common::crc32(mf.data(), mf.size() - 4)) {
        generation_ = get_le64(mf.data() + 8);
        ok = true;
      }
    }
    manifest_ok = ok;
    open_report_.manifest_recovered = have && !ok;
    if (!ok) generation_ = 0;
  }

  // Index every segment file present, in id order, rebuilding the in-memory
  // index from the frames themselves (first occurrence of a key wins).
  std::vector<u64> ids;
  for (const auto& de : fs::directory_iterator(opts_.dir)) {
    const std::string name = de.path().filename().string();
    if (name.size() == 4 + 8 + 5 && name.rfind("seg-", 0) == 0 &&
        name.substr(12) == ".pfps") {
      char* end = nullptr;
      const u64 id = std::strtoull(name.c_str() + 4, &end, 10);
      if (end == name.c_str() + 12) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    Segment seg;
    seg.id = ids[i];
    seg.sealed = i + 1 < ids.size();  // highest id is the active segment
    scan_segment_locked(seg, !seg.sealed);
    segments_.emplace(seg.id, seg);
  }

  if (segments_.empty()) {
    open_active_locked(1, /*create=*/true);
    write_manifest_locked();
  } else {
    // Segments without a valid manifest (deleted, torn, or corrupt) mean the
    // bookkeeping was lost and rebuilt from the scan — flag it and commit a
    // fresh manifest. A brand-new empty directory is NOT a recovery.
    if (!manifest_ok) open_report_.manifest_recovered = true;
    open_active_locked(segments_.rbegin()->first, /*create=*/false);
    if (open_report_.manifest_recovered) write_manifest_locked();
  }

  open_report_.generation = generation_;
  open_report_.segments = segments_.size();
  open_report_.entries = index_.size();
  open_report_.live_bytes = live_bytes_;
  open_report_.dead_bytes = dead_bytes_;

  LogMetrics& m = LogMetrics::get();
  m.live_bytes.set(static_cast<long long>(live_bytes_));
  m.dead_bytes.set(static_cast<long long>(dead_bytes_));
  m.entries.set(static_cast<long long>(index_.size()));
  m.segments.set(static_cast<long long>(segments_.size()));
}

SegmentStore::~SegmentStore() {
  try {
    sync();
  } catch (...) {
    // Destructor: nothing useful to do with a failed final sync.
  }
  if (active_) std::fclose(active_);
}

std::string SegmentStore::segment_path(u64 id) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%08llu.pfps", static_cast<unsigned long long>(id));
  return opts_.dir + "/" + buf;
}

std::string SegmentStore::manifest_path() const { return opts_.dir + "/manifest.pfps"; }

void SegmentStore::scan_segment_locked(Segment& seg, bool active) {
  const std::string path = segment_path(seg.id);
  Bytes data = io::read_file(path);
  seg.file_bytes = data.size();
  seg.valid_bytes = 0;

  const bool header_ok = data.size() >= kSegmentHeaderSize &&
                         get_le32(data.data()) == kSegmentMagic &&
                         get_le16(data.data() + 4) == kStoreVersion &&
                         get_le64(data.data() + 8) == seg.id;
  if (!header_ok) {
    // Unusable from byte 0. Active: rewrite a fresh header so appends can
    // resume; sealed: all bytes are dead, verify() will flag it.
    if (active) {
      u8 hdr[kSegmentHeaderSize];
      encode_segment_header(hdr, seg.id);
      io::write_file(path, hdr, sizeof hdr);
      open_report_.torn_bytes += data.size();
      seg.file_bytes = kSegmentHeaderSize;
      seg.valid_bytes = kSegmentHeaderSize;
    } else {
      ++open_report_.corrupt_segments;
      dead_bytes_ += data.size();
    }
    return;
  }

  std::size_t off = kSegmentHeaderSize;
  while (off < data.size()) {
    DecodedFrame f;
    bool ok = data.size() - off >= kChunkFrameHeaderSize &&
              decode_frame_header(data.data() + off, f);
    if (ok) {
      ok = f.payload_len <= data.size() - off - kChunkFrameHeaderSize &&
           common::crc32(data.data() + off + kChunkFrameHeaderSize, f.payload_len) ==
               f.payload_crc;
    }
    if (!ok) {
      if (active) {
        // Torn tail of an interrupted append: drop it and resume here.
        const u64 torn = data.size() - off;
        open_report_.torn_bytes += torn;
        std::error_code ec;
        fs::resize_file(path, off, ec);
        if (ec)
          throw CompressionError(path + ": truncate torn tail: " + ec.message());
        seg.file_bytes = off;
      } else {
        ++open_report_.corrupt_segments;
        dead_bytes_ += data.size() - off;
      }
      break;
    }
    const u64 frame_bytes = kChunkFrameHeaderSize + f.payload_len;
    if (index_.find(f.key) == index_.end()) {
      index_.emplace(f.key, IndexEntry{seg.id, off, f.payload_len, f.meta});
      live_bytes_ += frame_bytes;
    } else {
      ++open_report_.duplicate_frames;
      dead_bytes_ += frame_bytes;
    }
    off += frame_bytes;
    seg.valid_bytes = off;
  }
  if (seg.valid_bytes == 0) seg.valid_bytes = kSegmentHeaderSize;
}

void SegmentStore::open_active_locked(u64 id, bool create) {
  const std::string path = segment_path(id);
  if (create) {
    active_ = std::fopen(path.c_str(), "wb");
    if (!active_) throw_errno(path + ": create segment");
    u8 hdr[kSegmentHeaderSize];
    encode_segment_header(hdr, id);
    if (std::fwrite(hdr, 1, sizeof hdr, active_) != sizeof hdr)
      throw_errno(path + ": write segment header");
    if (std::fflush(active_) != 0) throw_errno(path + ": flush");
    Segment seg;
    seg.id = id;
    seg.valid_bytes = kSegmentHeaderSize;
    seg.file_bytes = kSegmentHeaderSize;
    segments_.emplace(id, seg);
  } else {
    // "ab" appends at end-of-file, which scan_segment_locked has already
    // truncated back to the last valid frame.
    active_ = std::fopen(path.c_str(), "ab");
    if (!active_) throw_errno(path + ": open segment for append");
  }
}

void SegmentStore::write_manifest_locked() {
  ++generation_;
  Bytes buf(24 + segments_.size() * 24 + 4);
  put_le32(buf.data() + 0, kManifestMagic);
  put_le16(buf.data() + 4, kStoreVersion);
  put_le16(buf.data() + 6, 0);
  put_le64(buf.data() + 8, generation_);
  put_le64(buf.data() + 16, segments_.size());
  std::size_t off = 24;
  for (const auto& [id, seg] : segments_) {
    put_le64(buf.data() + off, id);
    put_le64(buf.data() + off + 8, seg.valid_bytes);
    put_le64(buf.data() + off + 16, seg.sealed ? 1 : 0);
    off += 24;
  }
  put_le32(buf.data() + off, common::crc32(buf.data(), off));

  // tmp + fsync + rename + fsync(dir): a crash leaves either the previous
  // generation or this one, never a torn manifest.
  const std::string tmp = manifest_path() + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno(tmp + ": open");
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno(tmp + ": write");
    }
    done += static_cast<std::size_t>(n);
  }
  fsync_fd_or_throw(fd, tmp);
  ::close(fd);
  if (std::rename(tmp.c_str(), manifest_path().c_str()) != 0)
    throw_errno(manifest_path() + ": rename manifest");
  fsync_dir(opts_.dir);
}

bool SegmentStore::contains(const common::Hash128& key) const {
  std::lock_guard<std::mutex> lk(m_);
  return index_.find(key) != index_.end();
}

bool SegmentStore::get(const common::Hash128& key, Bytes& out, ChunkMeta* meta) const {
  IndexEntry e;
  u64 seg_id;
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    e = it->second;
    seg_id = e.segment;
    // Appends go through stdio buffering; make the frame visible to the
    // read path before leaving the lock.
    if (active_ && !segments_.rbegin()->second.sealed &&
        seg_id == segments_.rbegin()->first)
      std::fflush(active_);
  }
  Bytes frame = io::read_file_range(segment_path(seg_id), e.offset,
                                    kChunkFrameHeaderSize + e.payload_len);
  DecodedFrame f;
  if (!decode_frame_header(frame.data(), f) || f.key != key ||
      f.payload_len != e.payload_len ||
      common::crc32(frame.data() + kChunkFrameHeaderSize, f.payload_len) !=
          f.payload_crc)
    throw CompressionError("store: frame for " + key.hex() +
                           " failed CRC verification (corrupt segment)");
  out.assign(frame.begin() + static_cast<std::ptrdiff_t>(kChunkFrameHeaderSize),
             frame.end());
  if (meta) *meta = f.meta;
  LogMetrics::get().reads.add(1);
  return true;
}

void SegmentStore::append_frame_locked(const common::Hash128& key, const Bytes& payload,
                                       const ChunkMeta& meta, bool flush,
                                       bool torn_kill) {
  Bytes frame(kChunkFrameHeaderSize + payload.size());
  encode_frame_header(frame.data(), key, meta,
                      common::crc32(payload.data(), payload.size()), payload.size());
  std::memcpy(frame.data() + kChunkFrameHeaderSize, payload.data(), payload.size());

  ++appends_this_process_;
  const u64 kill_at = kill_at_append();
  const std::size_t write_n =
      (torn_kill || (kill_at && appends_this_process_ == kill_at))
          ? kChunkFrameHeaderSize + payload.size() / 2  // torn: half the payload
          : frame.size();

  Segment& seg = segments_.rbegin()->second;
  const std::string path = segment_path(seg.id);
  if (std::fwrite(frame.data(), 1, write_n, active_) != write_n)
    throw_errno(path + ": append frame");
  if (write_n != frame.size()) {
    // Crash simulation: make the torn frame (and every frame written before
    // it) visible on disk, then die without updating any bookkeeping.
    std::fflush(active_);
    ::fsync(::fileno(active_));
    std::raise(SIGKILL);
  }
  if (flush) {
    if (std::fflush(active_) != 0) throw_errno(path + ": flush");
    if (opts_.fsync_each_append) fsync_fd_or_throw(::fileno(active_), path);
  }

  index_.emplace(key, IndexEntry{seg.id, seg.valid_bytes, payload.size(), meta});
  seg.valid_bytes += frame.size();
  seg.file_bytes = seg.valid_bytes;
  live_bytes_ += frame.size();
}

void SegmentStore::rotate_locked() {
  Segment& seg = segments_.rbegin()->second;
  if (std::fflush(active_) != 0) throw_errno(segment_path(seg.id) + ": flush");
  fsync_fd_or_throw(::fileno(active_), segment_path(seg.id));
  std::fclose(active_);
  active_ = nullptr;
  seg.sealed = true;
  const u64 next = seg.id + 1;
  open_active_locked(next, /*create=*/true);
  write_manifest_locked();
}

bool SegmentStore::put(const common::Hash128& key, const Bytes& payload,
                       const ChunkMeta& meta) {
  LogMetrics& m = LogMetrics::get();
  std::lock_guard<std::mutex> lk(m_);
  if (index_.find(key) != index_.end()) {
    m.dedup_hits.add(1);
    return false;
  }
  if (segments_.rbegin()->second.valid_bytes + kChunkFrameHeaderSize + payload.size() >
          opts_.max_segment_bytes &&
      segments_.rbegin()->second.valid_bytes > kSegmentHeaderSize)
    rotate_locked();
  append_frame_locked(key, payload, meta, /*flush=*/true);
  m.appends.add(1);
  m.live_bytes.set(static_cast<long long>(live_bytes_));
  m.entries.set(static_cast<long long>(index_.size()));
  m.segments.set(static_cast<long long>(segments_.size()));
  return true;
}

std::size_t SegmentStore::append_batch(const std::vector<BatchEntry>& entries) {
  LogMetrics& m = LogMetrics::get();
  std::lock_guard<std::mutex> lk(m_);
  const u64 kill_item = kill_at_batch_item();
  std::size_t stored = 0;
  for (const BatchEntry& e : entries) {
    if (!e.payload) continue;
    if (index_.find(e.key) != index_.end()) {
      m.dedup_hits.add(1);
      continue;
    }
    if (segments_.rbegin()->second.valid_bytes + kChunkFrameHeaderSize +
                e.payload->size() >
            opts_.max_segment_bytes &&
        segments_.rbegin()->second.valid_bytes > kSegmentHeaderSize)
      rotate_locked();  // flushes + fsyncs the sealed segment
    ++batch_frames_this_process_;
    append_frame_locked(e.key, *e.payload, e.meta, /*flush=*/false,
                        /*torn_kill=*/kill_item &&
                            batch_frames_this_process_ == kill_item);
    ++stored;
    m.appends.add(1);
  }
  // Group commit: one flush (and at most one fsync) covers the whole batch.
  // Frames were written in entry order, so durability is prefix-closed — a
  // crash before this point can only lose a suffix of the batch.
  if (stored) {
    const std::string path = segment_path(segments_.rbegin()->first);
    if (std::fflush(active_) != 0) throw_errno(path + ": flush");
    if (opts_.fsync_each_append) fsync_fd_or_throw(::fileno(active_), path);
    m.live_bytes.set(static_cast<long long>(live_bytes_));
    m.entries.set(static_cast<long long>(index_.size()));
    m.segments.set(static_cast<long long>(segments_.size()));
  }
  return stored;
}

std::vector<StoredChunk> SegmentStore::entries() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<StoredChunk> out;
  out.reserve(index_.size());
  for (const auto& [key, e] : index_)
    out.push_back(StoredChunk{key, e.meta, e.payload_len, e.segment, e.offset});
  std::sort(out.begin(), out.end(), [](const StoredChunk& a, const StoredChunk& b) {
    return a.segment != b.segment ? a.segment < b.segment : a.offset < b.offset;
  });
  return out;
}

std::size_t SegmentStore::entry_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return index_.size();
}

u64 SegmentStore::live_bytes() const {
  std::lock_guard<std::mutex> lk(m_);
  return live_bytes_;
}

u64 SegmentStore::dead_bytes() const {
  std::lock_guard<std::mutex> lk(m_);
  return dead_bytes_;
}

u64 SegmentStore::generation() const {
  std::lock_guard<std::mutex> lk(m_);
  return generation_;
}

SegmentStore::VerifyReport SegmentStore::verify() const {
  std::lock_guard<std::mutex> lk(m_);
  if (active_) std::fflush(active_);
  VerifyReport rep;
  for (const auto& [id, seg] : segments_) {
    ++rep.segments;
    Bytes data = io::read_file(segment_path(id));
    rep.bytes_scanned += data.size();
    if (data.size() < kSegmentHeaderSize || get_le32(data.data()) != kSegmentMagic) {
      ++rep.corrupt_frames;
      continue;
    }
    std::size_t off = kSegmentHeaderSize;
    while (off < data.size()) {
      DecodedFrame f;
      bool ok = data.size() - off >= kChunkFrameHeaderSize &&
                decode_frame_header(data.data() + off, f) &&
                f.payload_len <= data.size() - off - kChunkFrameHeaderSize &&
                common::crc32(data.data() + off + kChunkFrameHeaderSize,
                              f.payload_len) == f.payload_crc;
      if (!ok) {
        // Frames are variable-length: nothing after an invalid frame can be
        // trusted, so count the rest of the segment as one corrupt region.
        ++rep.corrupt_frames;
        break;
      }
      ++rep.frames_ok;
      off += kChunkFrameHeaderSize + f.payload_len;
    }
  }
  return rep;
}

SegmentStore::CompactReport SegmentStore::compact() {
  std::lock_guard<std::mutex> lk(m_);
  CompactReport rep;
  rep.segments_before = segments_.size();
  for (const auto& [id, seg] : segments_) rep.bytes_before += seg.file_bytes;
  rep.live_entries = index_.size();

  // Seal the world: everything live gets rewritten into fresh segments, the
  // manifest commits the new layout, and only then do the old files go away.
  // A crash at any point leaves a readable store (worst case: duplicate
  // frames across old and new segments, which the next open dedups).
  if (active_) {
    std::fflush(active_);
    std::fclose(active_);
    active_ = nullptr;
  }

  std::vector<std::pair<common::Hash128, IndexEntry>> live(index_.begin(), index_.end());
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.second.segment != b.second.segment ? a.second.segment < b.second.segment
                                                : a.second.offset < b.second.offset;
  });

  const u64 base = segments_.empty() ? 1 : segments_.rbegin()->first + 1;
  std::vector<u64> old_ids;
  for (const auto& [id, seg] : segments_) old_ids.push_back(id);

  std::map<u64, Segment> new_segments;
  std::unordered_map<common::Hash128, IndexEntry, common::Hash128Hasher> new_index;
  u64 new_live = 0;

  u64 cur_id = base;
  std::FILE* out = nullptr;
  Segment cur;
  auto open_new = [&](u64 id) {
    const std::string path = segment_path(id);
    out = std::fopen(path.c_str(), "wb");
    if (!out) throw_errno(path + ": create segment");
    u8 hdr[kSegmentHeaderSize];
    encode_segment_header(hdr, id);
    if (std::fwrite(hdr, 1, sizeof hdr, out) != sizeof hdr)
      throw_errno(path + ": write segment header");
    cur = Segment{id, kSegmentHeaderSize, kSegmentHeaderSize, /*sealed=*/true};
  };
  auto close_cur = [&] {
    if (!out) return;
    if (std::fflush(out) != 0) throw_errno(segment_path(cur.id) + ": flush");
    fsync_fd_or_throw(::fileno(out), segment_path(cur.id));
    std::fclose(out);
    out = nullptr;
    new_segments.emplace(cur.id, cur);
  };

  open_new(cur_id);
  for (const auto& [key, e] : live) {
    Bytes payload = io::read_file_range(segment_path(e.segment),
                                        e.offset + kChunkFrameHeaderSize, e.payload_len);
    Bytes frame(kChunkFrameHeaderSize + payload.size());
    encode_frame_header(frame.data(), key, e.meta,
                        common::crc32(payload.data(), payload.size()), payload.size());
    std::memcpy(frame.data() + kChunkFrameHeaderSize, payload.data(), payload.size());
    if (cur.valid_bytes + frame.size() > opts_.max_segment_bytes &&
        cur.valid_bytes > kSegmentHeaderSize) {
      close_cur();
      open_new(++cur_id);
    }
    if (std::fwrite(frame.data(), 1, frame.size(), out) != frame.size())
      throw_errno(segment_path(cur.id) + ": append frame");
    new_index.emplace(key, IndexEntry{cur.id, cur.valid_bytes, e.payload_len, e.meta});
    cur.valid_bytes += frame.size();
    cur.file_bytes = cur.valid_bytes;
    new_live += frame.size();
  }
  close_cur();

  // Fresh empty active segment on top of the compacted ones.
  segments_ = std::move(new_segments);
  index_ = std::move(new_index);
  live_bytes_ = new_live;
  dead_bytes_ = 0;
  open_active_locked(cur_id + 1, /*create=*/true);
  write_manifest_locked();

  for (u64 id : old_ids) {
    std::error_code ec;
    fs::remove(segment_path(id), ec);  // best-effort; leftovers dedup on reopen
  }
  fsync_dir(opts_.dir);

  rep.segments_after = segments_.size();
  for (const auto& [id, seg] : segments_) rep.bytes_after += seg.file_bytes;
  rep.reclaimed_bytes =
      rep.bytes_before > rep.bytes_after ? rep.bytes_before - rep.bytes_after : 0;

  LogMetrics& m = LogMetrics::get();
  m.live_bytes.set(static_cast<long long>(live_bytes_));
  m.dead_bytes.set(0);
  m.entries.set(static_cast<long long>(index_.size()));
  m.segments.set(static_cast<long long>(segments_.size()));
  return rep;
}

void SegmentStore::sync() {
  std::lock_guard<std::mutex> lk(m_);
  if (active_) {
    if (std::fflush(active_) != 0)
      throw_errno(segment_path(segments_.rbegin()->first) + ": flush");
    fsync_fd_or_throw(::fileno(active_), segment_path(segments_.rbegin()->first));
  }
  write_manifest_locked();
}

}  // namespace repro::store
