// PFPN/1 — the framed wire protocol of the pfpld compression service.
//
// Every message on a connection is one length-prefixed frame:
//
//   +-------------------+ offset 0
//   | frame header 40 B |   magic, version, op, status, params, CRC, length
//   +-------------------+ 40
//   | payload           |   payload_len bytes (raw scalars, PFPL stream,
//   +-------------------+   JSON stats, or UTF-8 error text)
//
// Requests carry op COMPRESS/DECOMPRESS/STATS/PING/SHUTDOWN; responses echo
// the request's op with the response bit (0x80) set and the same request_id.
// status == 0 means success; a nonzero status makes the frame a *typed error
// frame* whose payload is a human-readable message. The payload is covered
// by CRC-32 (common/checksum.hpp — the same checksum the PFPA archive uses),
// so a flipped bit in transit is detected before any payload byte is
// interpreted. Full layout spec in docs/FORMAT.md §PFPN.
//
// FrameParser consumes a byte stream *incrementally* (feed() arbitrary
// splits, next() yields complete frames) and classifies malformed input:
// recoverable errors (payload CRC mismatch, where the frame boundary is
// still trustworthy) leave the parser usable; framing errors (bad magic,
// wrong version, oversized declared length) poison it, because nothing after
// the corruption can be resynchronized safely.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace repro::net {

/// Network-layer error (connect/send/recv failures, protocol violations).
class NetError : public CompressionError {
 public:
  using CompressionError::CompressionError;
};

/// Error reported by the *server* in a typed error frame. Carrying the
/// status lets callers distinguish "server said no" (no point retrying)
/// from transport failures (retry-once-on-reconnect territory).
class RemoteError : public NetError {
 public:
  RemoteError(u16 status, const std::string& what) : NetError(what), status_(status) {}
  u16 status() const { return status_; }

 private:
  u16 status_;
};

inline constexpr u32 kFrameMagic = 0x4E504650;  // "PFPN" little-endian
inline constexpr u16 kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 40;

/// Request operations. A response echoes the op with kResponseBit set.
enum class Op : u8 {
  Compress = 1,    ///< payload: raw scalars; response payload: PFPL stream
  Decompress = 2,  ///< payload: PFPL stream; response payload: raw scalars
  Stats = 3,       ///< empty payload; response payload: server-stats JSON
  Ping = 4,        ///< empty payload; response: empty payload
  Shutdown = 5,    ///< begin graceful drain; response: empty payload
  Metrics = 6,     ///< payload: "" or "json" for JSON, "prom" for Prometheus
                   ///< text; response payload: the rendered metrics document
  ShardMap = 7,    ///< payload: "" or the caller's serialized shard map (the
                   ///< server adopts a higher epoch); response payload: the
                   ///< server's current serialized map (PFSM, docs/FORMAT.md)
  Health = 8,      ///< empty payload; response payload: liveness + load JSON
  StreamOpen = 9,  ///< open a temporal frame session: dtype/eb/eps in the
                   ///< header, payload = dims + keyframe interval (16 B);
                   ///< response payload: u64 session id
  StreamFrame = 10,  ///< payload: u64 session id + u64 frame index + raw
                     ///< frame scalars; response payload: the encoded PFPV
                     ///< frame record
  StreamClose = 11,  ///< payload: u64 session id; response: empty
                     ///< (idempotent — closing an unknown session is Ok)
};

inline constexpr u8 kResponseBit = 0x80;

/// Typed error codes carried in FrameHeader::status of error frames.
enum class Status : u16 {
  Ok = 0,
  BadFrame = 1,        ///< malformed header / unsupported op or version
  CrcMismatch = 2,     ///< payload CRC-32 did not match the header
  BadParams = 3,       ///< invalid dtype/eb/eps/payload-size combination
  CompressFailed = 4,  ///< the compressor rejected the request (error text)
  TooLarge = 5,        ///< declared payload_len over the server's limit
  Draining = 6,        ///< server is draining; request rejected
  WrongShard = 7,      ///< key not owned by this node under its shard-map
                       ///< epoch — refetch the map (SHARDMAP) and re-route
  BadSession = 8,      ///< STREAM_FRAME names an unknown or evicted session
                       ///< — open a new one (the next frame is a keyframe)
  SessionLimit = 9,    ///< STREAM_OPEN refused: --max-sessions reached
};

const char* to_string(Op op);
const char* to_string(Status st);

/// Name for a wire-level status value, including ones this build does not
/// know: known codes render as the enumerator name ("CrcMismatch"), unknown
/// ones as "Status<N>" — so error messages from newer peers stay readable.
std::string status_name(u16 st);

/// Decoded frame header (wire layout in docs/FORMAT.md §PFPN).
struct FrameHeader {
  u8 op = 0;          ///< Op value; responses set kResponseBit
  u8 dtype = 0;       ///< DType value (COMPRESS requests/responses)
  u16 status = 0;     ///< Status value; nonzero marks an error frame
  u8 eb_type = 0;     ///< EbType value (COMPRESS requests/responses)
  u32 payload_crc = 0;
  double eps = 0;
  u64 request_id = 0;
  u64 payload_len = 0;

  bool is_response() const { return (op & kResponseBit) != 0; }
  u8 base_op() const { return op & static_cast<u8>(~kResponseBit); }
};

struct Frame {
  FrameHeader header;
  Bytes payload;
};

/// Serialize a frame: fills in payload_len and payload_crc from the payload.
Bytes encode_frame(FrameHeader h, const void* payload, std::size_t n);
inline Bytes encode_frame(FrameHeader h, const Bytes& payload) {
  return encode_frame(h, payload.data(), payload.size());
}

/// Build a typed error *response* frame: op = request op | response bit,
/// status = `st`, payload = UTF-8 `message`.
Bytes encode_error_frame(u64 request_id, u8 request_op, Status st,
                         const std::string& message);

/// Decode a 40-byte header. Throws NetError on bad magic or version.
FrameHeader decode_frame_header(const u8* p);

/// Incremental frame parser over a per-connection byte stream.
class FrameParser {
 public:
  /// `max_payload` caps the *declared* payload length; a header declaring
  /// more is a framing error (the sender could otherwise make the parser
  /// buffer arbitrary memory before any payload byte arrives).
  explicit FrameParser(std::size_t max_payload = 256u << 20);

  /// Append raw bytes received from the peer.
  void feed(const void* data, std::size_t n);

  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Ready,     ///< `out` holds the next frame
    Error,     ///< malformed input; see status()/error()/fatal()
  };

  /// Extract the next complete frame. After a non-fatal Error (CRC mismatch)
  /// the offending frame is discarded and parsing continues with the next
  /// call; after a fatal Error every subsequent call returns Error again.
  Result next(Frame& out);

  bool fatal() const { return fatal_; }
  Status status() const { return err_status_; }
  const std::string& error() const { return err_text_; }
  /// Best-effort request id / op of the frame that caused the last Error
  /// (0 when the header itself was unreadable) — what the server echoes in
  /// the typed error frame.
  u64 error_request_id() const { return err_request_id_; }
  u8 error_op() const { return err_op_; }

  std::size_t buffered() const { return buf_.size() - pos_; }
  std::size_t max_payload() const { return max_payload_; }

 private:
  Result fail(Status st, std::string text, bool fatal);

  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  std::size_t max_payload_;
  bool have_header_ = false;
  FrameHeader h_{};
  bool fatal_ = false;
  Status err_status_ = Status::Ok;
  std::string err_text_;
  u64 err_request_id_ = 0;
  u8 err_op_ = 0;
};

}  // namespace repro::net
