#include "svc/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace repro::svc {
namespace {

/// Pool metric handles, resolved once (see obs/metrics.hpp on the pattern).
struct PoolMetrics {
  obs::Counter& steals;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_us;  ///< enqueue -> dequeue
  obs::Histogram& task_run_us;   ///< dequeue -> completion
  obs::Histogram& steal_us;      ///< victim-scan latency of successful steals
  static PoolMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static PoolMetrics m{r.counter("svc.pool.steals"), r.gauge("svc.pool.queue_depth"),
                         r.histogram("svc.pool.task_wait_us"),
                         r.histogram("svc.pool.task_run_us"),
                         r.histogram("svc.pool.steal_us")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
  // Deques exist before any thread starts, so worker_loop can scan all of
  // them for victims without synchronizing on the vector itself.
  for (unsigned i = 0; i < threads; ++i)
    workers_[i]->thread = std::thread(&ThreadPool::worker_loop, this, i);
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> f) {
  const bool obs_on = obs::enabled();
  Task t{std::move(f), obs_on ? obs::TraceRecorder::global().now_ns() : 0,
         obs_on ? obs::TraceContext::current() : 0};
  std::unique_lock<std::mutex> lk(state_m_);
  space_cv_.wait(lk, [&] { return stopping_ || draining_ || pending_ < capacity_; });
  if (stopping_) throw CompressionError("svc::ThreadPool: submit after shutdown");
  if (draining_) throw CompressionError("svc::ThreadPool: submit during drain");
  const unsigned target = static_cast<unsigned>(next_worker_++ % workers_.size());
  {
    // Push BEFORE pending_ is bumped (both under state_m_, so the two are
    // ordered for anyone holding the lock): a worker whose wait predicate
    // observes pending_ > 0 is then guaranteed to find a task in some deque
    // instead of busy-spinning through empty scans until the push lands.
    // Lock order state_m_ -> worker.m is safe: workers take the two locks
    // only one at a time, never nested.
    std::lock_guard<std::mutex> dlk(workers_[target]->m);
    workers_[target]->q.push_back(std::move(t));
  }
  ++pending_;
  ++counters_.submitted;
  counters_.peak_pending = std::max<u64>(counters_.peak_pending, pending_);
  PoolMetrics::get().queue_depth.set(static_cast<long long>(pending_));
  lk.unlock();
  work_cv_.notify_one();
}

bool ThreadPool::try_pop_own(unsigned self, Task& out) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lk(w.m);
  if (w.q.empty()) return false;
  out = std::move(w.q.back());  // owner pops LIFO
  w.q.pop_back();
  return true;
}

bool ThreadPool::try_steal(unsigned self, Task& out) {
  const u64 t0 = obs::enabled() ? obs::TraceRecorder::global().now_ns() : 0;
  const unsigned n = static_cast<unsigned>(workers_.size());
  for (unsigned k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lk(victim.m);
    if (victim.q.empty()) continue;
    out = std::move(victim.q.front());  // thieves steal FIFO
    victim.q.pop_front();
    if (t0) {
      PoolMetrics& m = PoolMetrics::get();
      m.steals.add(1);
      m.steal_us.record((obs::TraceRecorder::global().now_ns() - t0) / 1000);
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  // Watchdog slot for stall detection: one per worker, marked busy around
  // each task. Slots are process-global and never recycled; once the table
  // fills (many short-lived pools in one test process) later workers get -1
  // and StallScope goes inert, which only costs them stall coverage.
  const int wd_slot =
      obs::Watchdog::global().register_slot("svc.worker." + std::to_string(self));
  for (;;) {
    Task task;
    bool got = try_pop_own(self, task);
    bool was_steal = false;
    if (!got) {
      got = try_steal(self, task);
      was_steal = got;
    }
    if (!got) {
      std::unique_lock<std::mutex> lk(state_m_);
      // Re-check under the lock: a task may have been enqueued between the
      // deque scans and this wait.
      work_cv_.wait(lk, [&] { return pending_ > 0 || stopping_; });
      if (pending_ == 0 && stopping_) return;
      continue;  // retry the deque scan
    }
    {
      std::lock_guard<std::mutex> lk(state_m_);
      --pending_;
      ++running_;
      if (was_steal) ++counters_.stolen;
      PoolMetrics::get().queue_depth.set(static_cast<long long>(pending_));
    }
    space_cv_.notify_one();  // queue slot freed on dequeue, not completion
    u64 run_t0 = 0;
    if (obs::enabled()) {
      obs::TraceRecorder& rec = obs::TraceRecorder::global();
      run_t0 = rec.now_ns();
      // enqueue_ns can postdate run_t0 if TraceRecorder::clear() reset the
      // epoch between enqueue and dequeue; skip the sample rather than wrap.
      if (task.enqueue_ns && run_t0 >= task.enqueue_ns)
        PoolMetrics::get().task_wait_us.record((run_t0 - task.enqueue_ns) / 1000);
    }
    {
      // The stall scope brackets exactly one task: a worker flagged by the
      // watchdog has been inside this block — i.e. inside task.fn() — past
      // the threshold. `detail` carries the originating request id.
      obs::StallScope stall(wd_slot, task.trace_ctx);
      if (run_t0) {
        // Re-install the submitter's trace context for the task's duration so
        // every span it opens (and the task span itself) is tagged with the
        // originating request id.
        obs::TraceContext::Scope ctx(task.trace_ctx);
        obs::ScopedSpan span("svc.pool.task");
        task.fn();
      } else {
        task.fn();
      }
    }
    if (run_t0)
      PoolMetrics::get().task_run_us.record(
          (obs::TraceRecorder::global().now_ns() - run_t0) / 1000);
    {
      std::lock_guard<std::mutex> lk(state_m_);
      --running_;
      ++counters_.executed;
      if (pending_ == 0 && running_ == 0) idle_cv_.notify_all();
    }
    space_cv_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(state_m_);
  idle_cv_.wait(lk, [&] { return pending_ == 0 && running_ == 0; });
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lk(state_m_);
  // Concurrent drains simply queue up on the same predicate: each waits for
  // idle, and the flag stays set until the last one re-enables submissions.
  draining_ = true;
  lk.unlock();
  // Wake producers blocked on the capacity bound so they see the drain and
  // throw instead of waiting out a queue slot that may never matter again.
  space_cv_.notify_all();
  lk.lock();
  idle_cv_.wait(lk, [&] { return pending_ == 0 && running_ == 0; });
  draining_ = false;
  lk.unlock();
  space_cv_.notify_all();
}

bool ThreadPool::draining() const {
  std::lock_guard<std::mutex> lk(state_m_);
  return draining_;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(state_m_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(state_m_);
  return pending_;
}

ThreadPool::Counters ThreadPool::counters() const {
  std::lock_guard<std::mutex> lk(state_m_);
  return counters_;
}

}  // namespace repro::svc
