// bench_ingest — serial vs. pipelined ingest on a mixed dup-ratio workload.
//
// Generates --files raw f32 files on disk (a --dup-ratio fraction duplicate
// file 0's bytes), then ingests the set twice into fresh PFPS stores:
//
//   serial     the synchronous reference loop — read, probe, encode, put,
//              one file at a time (the pre-pipeline `pfpl pack --store` shape)
//   pipelined  ingest::IngestPipeline — the four stages overlap
//
// Both passes run the SAME per-stage work plus the SAME injected per-stage
// cost (--stage-cost-us, applied once per item per stage in both passes), so
// the measured speedup isolates the pipeline's structural overlap — serial
// throughput is the SUM of the stages, pipelined is the SLOWEST stage — and
// does not depend on the host's core count. Streams from the two passes are
// checked byte-identical and the pipelined store is CRC-verified, so the
// bench doubles as the end-to-end ingest correctness test.
//
//   bench_ingest                            # 12 files x 16384 values
//   bench_ingest --files 16 --values 65536 --threads 4 --min-speedup 1.5
//   bench_ingest --update-baseline --baseline BENCH_baseline.json
//
// Exit codes: 0 ok, 1 byte mismatch / verify failure / speedup below
// --min-speedup, 3 failed --gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/pfpl.hpp"
#include "harness.hpp"
#include "ingest/pipeline.hpp"
#include "io/buffered_reader.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "store/store.hpp"

#ifdef _WIN32
#include <process.h>
#define getpid _getpid
#else
#include <unistd.h>
#endif

using namespace repro;

namespace {

struct IngestCfg {
  unsigned files = 12;
  std::size_t values = 16384;   ///< f32 scalars per file
  double dup_ratio = 0.25;      ///< fraction of files duplicating file 0
  unsigned threads = 4;         ///< encode pool workers (pipelined pass)
  u64 stage_cost_us = 1500;     ///< injected per-stage per-item cost (both passes)
  double min_speedup = 1.5;     ///< required pipelined-vs-serial ratio
};

IngestCfg parse_ingest_flags(int argc, char** argv) {
  IngestCfg cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--files") cfg.files = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--values") cfg.values = std::strtoull(next(), nullptr, 10);
    else if (a == "--dup-ratio") cfg.dup_ratio = std::atof(next());
    else if (a == "--threads") cfg.threads = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--stage-cost-us") cfg.stage_cost_us = std::strtoull(next(), nullptr, 10);
    else if (a == "--min-speedup") cfg.min_speedup = std::atof(next());
  }
  if (cfg.files == 0) cfg.files = 1;
  if (cfg.values == 0) cfg.values = 1;
  return cfg;
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void stage_sleep(u64 us) {
  if (us) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

constexpr double kEps = 1e-3;

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Ingest rows measure one-directional throughput only: no decompression
/// pass, no PSNR, no violation count — those columns are structurally
/// unmeasured, so the row skips them instead of recording zeros.
bench::Row make_row(const char* name, double eb, const std::vector<double>& rep_secs,
                    u64 raw_bytes, u64 comp_bytes) {
  bench::Row row;
  row.compressor = name;
  row.eb = eb;
  row.ratio = comp_bytes ? static_cast<double>(raw_bytes) / comp_bytes : 0.0;
  const double mb = raw_bytes / (1024.0 * 1024.0);
  for (double s : rep_secs)
    if (s > 0) row.comp_run_mbps.push_back(mb / s);
  const double med = median(rep_secs);
  row.comp_mbps = med > 0 ? mb / med : 0.0;
  row.has_decomp = row.has_psnr = row.has_violations = false;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig sweep = bench::parse_args(argc, argv, bench::SweepConfig{});
  const IngestCfg cfg = parse_ingest_flags(argc, argv);
  obs::set_enabled(true);

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pfpl_bench_ingest_" + std::to_string(static_cast<long long>(getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir / "in");

  // ---- workload: --files raw f32 files, some duplicating file 0 ----------
  std::vector<std::string> paths;
  u64 raw_bytes = 0;
  for (unsigned f = 0; f < cfg.files; ++f) {
    const bool is_dup =
        f > 0 && static_cast<double>((f * 104729u) % 1000) < cfg.dup_ratio * 1000.0;
    const unsigned seed = is_dup ? 0 : f;
    std::vector<float> v(cfg.values);
    for (std::size_t i = 0; i < cfg.values; ++i) {
      double x = static_cast<double>(i) * 0.001 + seed * 0.37;
      v[i] = static_cast<float>(std::sin(x) * 100.0 + std::cos(3.0 * x) + seed);
    }
    const fs::path p = dir / "in" / ("f" + std::to_string(f) + ".raw");
    std::FILE* out = std::fopen(p.string().c_str(), "wb");
    if (!out) { std::perror("fopen"); return 1; }
    std::fwrite(v.data(), sizeof(float), v.size(), out);
    std::fclose(out);
    paths.push_back(p.string());
    raw_bytes += cfg.values * sizeof(float);
  }
  std::fprintf(stderr,
               "bench_ingest: %u files x %zu values (dup %.2f), stage cost %llu us, "
               "%u threads\n",
               cfg.files, cfg.values, cfg.dup_ratio,
               static_cast<unsigned long long>(cfg.stage_cost_us), cfg.threads);

  int mismatches = 0;
  pfpl::Params params;
  params.eps = kEps;

  // Repetition count: median + MAD need ≥3 samples for the baseline's
  // regression gate to have a real noise floor (--runs raises it further).
  const int reps = std::max(3, sweep.runs);

  // ---- serial reference pass: read → probe → encode → put, one at a time.
  // Every stage pays the same injected cost the pipelined pass pays, so the
  // two passes differ ONLY in overlap. Each rep ingests into a fresh store
  // so every rep is a true cold pass.
  std::vector<Bytes> serial_streams;
  u64 comp_bytes = 0;
  std::vector<double> serial_times;
  for (int rep = 0; rep < reps; ++rep) {
    store::ChunkStore::Options so;
    so.dir = (dir / ("store_serial_r" + std::to_string(rep))).string();
    store::ChunkStore cs(so);
    const double t0 = now_s();
    std::vector<Bytes> streams;
    u64 cb = 0;
    for (const std::string& p : paths) {
      Bytes raw;
      io::DoubleBufferedReader rd(p);
      for (std::span<const u8> sp = rd.next(); !sp.empty(); sp = rd.next())
        raw.insert(raw.end(), sp.begin(), sp.end());
      stage_sleep(cfg.stage_cost_us);
      const common::Hash128 key =
          store::compress_key(raw.data(), raw.size(), DType::F32, EbType::ABS, kEps);
      Bytes stream;
      const bool hit = cs.get(key, stream);
      stage_sleep(cfg.stage_cost_us);
      if (!hit)
        stream = pfpl::compress(
            Field(reinterpret_cast<const float*>(raw.data()), raw.size() / 4), params);
      stage_sleep(cfg.stage_cost_us);
      if (!hit)
        cs.put(key, stream, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw.size()});
      stage_sleep(cfg.stage_cost_us);
      cb += stream.size();
      streams.push_back(std::move(stream));
    }
    cs.sync();
    serial_times.push_back(now_s() - t0);
    if (rep == 0) {
      serial_streams = std::move(streams);
      comp_bytes = cb;
    }
  }

  // ---- pipelined passes over fresh stores --------------------------------
  std::vector<ingest::Result> pipe_results;
  ingest::IngestStats pipe_stats;
  std::vector<double> pipe_times;
  for (int rep = 0; rep < reps; ++rep) {
    store::ChunkStore::Options so;
    so.dir = (dir / ("store_pipe_r" + std::to_string(rep))).string();
    store::ChunkStore cs(so);
    ingest::IngestPipeline::Options po;
    po.dtype = DType::F32;
    po.params = params;
    po.threads = cfg.threads;
    po.store = &cs;
    po.stage_cost_us[0] = cfg.stage_cost_us;
    po.stage_cost_us[1] = cfg.stage_cost_us;
    po.stage_cost_us[2] = cfg.stage_cost_us;
    po.stage_cost_us[3] = cfg.stage_cost_us;
    std::vector<ingest::Item> items;
    for (unsigned f = 0; f < cfg.files; ++f)
      items.push_back(ingest::Item{"f" + std::to_string(f), paths[f], {}});
    ingest::IngestPipeline pipe(po);
    const double t0 = now_s();
    std::vector<ingest::Result> results = pipe.run(std::move(items));
    cs.sync();
    pipe_times.push_back(now_s() - t0);

    if (rep == 0) {
      // Correctness checks once, on the first rep: byte-identity against the
      // serial streams is deterministic, so one pass proves all of them.
      pipe_results = std::move(results);
      pipe_stats = pipe.stats();
      const store::SegmentStore::VerifyReport rep_v = cs.log()->verify();
      if (!rep_v.ok()) {
        std::fprintf(stderr, "bench_ingest: store verify FAILED: %llu corrupt frame(s)\n",
                     static_cast<unsigned long long>(rep_v.corrupt_frames));
        ++mismatches;
      }
    }
  }
  const double serial_s = median(serial_times);
  const double pipe_s = median(pipe_times);

  // ---- byte-identity: pipelined streams == serial streams ----------------
  for (unsigned f = 0; f < cfg.files; ++f) {
    if (pipe_results[f].failed || pipe_results[f].cancelled) {
      std::fprintf(stderr, "bench_ingest: file %u failed: %s\n", f,
                   pipe_results[f].error.c_str());
      ++mismatches;
    } else if (pipe_results[f].stream != serial_streams[f]) {
      std::fprintf(stderr, "bench_ingest: file %u: pipelined stream differs\n", f);
      ++mismatches;
    }
  }

  const double speedup = pipe_s > 0 && serial_s > 0 ? serial_s / pipe_s : 0.0;
  const double wall_ms = pipe_stats.wall_ms > 0 ? pipe_stats.wall_ms : 1.0;
  std::fprintf(stderr,
               "bench_ingest: serial %.3fs (%.1f MB/s), pipelined %.3fs (%.1f MB/s) "
               "-> %.2fx\n",
               serial_s, raw_bytes / (1024.0 * 1024.0) / serial_s, pipe_s,
               raw_bytes / (1024.0 * 1024.0) / pipe_s, speedup);
  std::fprintf(stderr,
               "bench_ingest: stage utilization read/hash/encode/append = "
               "%.0f%%/%.0f%%/%.0f%%/%.0f%% of %.0fms wall, %llu append batch(es)\n",
               100.0 * pipe_stats.read_ms / wall_ms, 100.0 * pipe_stats.hash_ms / wall_ms,
               100.0 * pipe_stats.encode_ms / wall_ms,
               100.0 * pipe_stats.append_ms / wall_ms, pipe_stats.wall_ms,
               static_cast<unsigned long long>(pipe_stats.append_batches));
  if (speedup < cfg.min_speedup) {
    std::fprintf(stderr, "bench_ingest: speedup %.2fx below required %.2fx\n", speedup,
                 cfg.min_speedup);
    ++mismatches;
  }

  std::vector<bench::Row> rows;
  rows.push_back(make_row("Ingest_serial", cfg.dup_ratio, serial_times, raw_bytes, comp_bytes));
  rows.push_back(make_row("Ingest_pipelined", cfg.dup_ratio, pipe_times, raw_bytes, comp_bytes));
  bench::print_rows("Ingest", rows);

  obs::RunReport::global().add_section("ingest_bench", [&] {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("files", cfg.files);
    w.kv("values", static_cast<unsigned long long>(cfg.values));
    w.kv("dup_ratio", cfg.dup_ratio);
    w.kv("stage_cost_us", static_cast<unsigned long long>(cfg.stage_cost_us));
    w.kv("serial_s", serial_s);
    w.kv("pipelined_s", pipe_s);
    w.kv("speedup", speedup);
    w.kv("probe_hits", static_cast<unsigned long long>(pipe_stats.probe_hits));
    w.kv("append_batches", static_cast<unsigned long long>(pipe_stats.append_batches));
    w.kv("peak_queue_bytes", static_cast<unsigned long long>(pipe_stats.peak_queue_bytes));
    w.kv("mismatches", mismatches);
    w.end_object();
    return w.take();
  }());

  fs::remove_all(dir, ec);

  const int gate_rc = bench::finish();
  if (mismatches) return 1;
  return gate_rc;
}
