// Tests for the PFPL quantizers: error-bound guarantee (including adversarial
// and special values), bit-pattern encoding invariants, and round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/quantizers.hpp"
#include "data/rng.hpp"

using namespace repro;
using namespace repro::pfpl;
using repro::fpmath::FloatTraits;

namespace {

template <typename T>
void check_abs_bound(T v, double eps) {
  AbsQuantizer<T> q(eps);
  auto w = q.encode(v);
  T r = q.decode(w);
  if (std::isnan(v)) {
    EXPECT_TRUE(std::isnan(r));
    return;
  }
  if (std::isinf(v)) {
    EXPECT_EQ(r, v);
    return;
  }
  using V = VerifyReal<T>;
  V err = static_cast<V>(v) - static_cast<V>(r);
  if (err < 0) err = -err;
  EXPECT_LE(err, static_cast<V>(eps)) << "v=" << v << " r=" << r << " eps=" << eps;
}

template <typename T>
void check_rel_bound(T v, double eps) {
  RelQuantizer<T> q(eps);
  auto w = q.encode(v);
  T r = q.decode(w);
  if (std::isnan(v)) {
    EXPECT_TRUE(std::isnan(r));
    return;
  }
  if (std::isinf(v)) {
    EXPECT_EQ(r, v);
    return;
  }
  if (v == T(0)) {
    EXPECT_EQ(r, T(0));
    return;
  }
  ASSERT_TRUE((v > T(0)) == (r > T(0)) && r != T(0)) << "sign flip: v=" << v << " r=" << r;
  using V = VerifyReal<T>;
  V av = static_cast<V>(v < T(0) ? -v : v);
  V ar = static_cast<V>(r < T(0) ? -r : r);
  V op = V(1) + static_cast<V>(eps);
  EXPECT_TRUE(ar * op >= av && ar <= av * op) << "v=" << v << " r=" << r << " eps=" << eps;
}

template <typename T>
std::vector<T> special_values() {
  using L = std::numeric_limits<T>;
  return {T(0),
          T(-0.0),
          L::quiet_NaN(),
          -L::quiet_NaN(),
          L::infinity(),
          -L::infinity(),
          L::denorm_min(),
          -L::denorm_min(),
          L::min(),
          -L::min(),
          L::max(),
          -L::max(),
          std::nextafter(L::min(), T(0)),   // largest denormal
          std::nextafter(L::min(), T(1)),   // smallest normal + 1 ulp
          T(1),
          T(-1),
          T(3.14159265),
          T(-2.718281828)};
}

}  // namespace

// --- ABS ---------------------------------------------------------------------

TEST(AbsQuantizer, PaperExampleBins) {
  // Paper Figure 2 semantics: eps=0.01 -> bin width 0.02, bin = round(v/0.02).
  AbsQuantizer<float> q(0.01);
  EXPECT_EQ(q.encode(0.0f), 0u);                       // bin 0
  EXPECT_EQ(q.encode(0.02f) >> 1, 1u);                 // bin 1
  EXPECT_EQ(q.encode(-0.02f) & 1u, 1u);                // negative sign bit
  EXPECT_FLOAT_EQ(q.decode(q.encode(0.02f)), 0.02f);   // bin centre
  EXPECT_FLOAT_EQ(q.decode(q.encode(0.021f)), 0.02f);  // same bin
}

TEST(AbsQuantizer, SpecialValuesGuaranteedFloat) {
  for (float v : special_values<float>())
    for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) check_abs_bound(v, eps);
}

TEST(AbsQuantizer, SpecialValuesGuaranteedDouble) {
  for (double v : special_values<double>())
    for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) check_abs_bound(v, eps);
}

TEST(AbsQuantizer, RandomValuesGuaranteed) {
  data::Rng rng(21);
  for (int i = 0; i < 100000; ++i) {
    float v = static_cast<float>(rng.gaussian() * std::pow(10.0, rng.uniform(-6, 6)));
    check_abs_bound(v, 1e-3);
  }
}

TEST(AbsQuantizer, RandomBitPatternsGuaranteedFloat) {
  // Adversarial: arbitrary bit patterns (NaNs, denormals, extremes).
  data::Rng rng(22);
  for (int i = 0; i < 200000; ++i) {
    float v = fpmath::from_bits<float>(static_cast<u32>(rng.next_u64()));
    check_abs_bound(v, 1e-3);
  }
}

TEST(AbsQuantizer, RandomBitPatternsGuaranteedDouble) {
  data::Rng rng(23);
  for (int i = 0; i < 100000; ++i) {
    double v = fpmath::from_bits<double>(rng.next_u64());
    check_abs_bound(v, 1e-5);
  }
}

TEST(AbsQuantizer, BinWordsLiveInDenormalRange) {
  AbsQuantizer<float> q(1e-2);
  data::Rng rng(24);
  for (int i = 0; i < 10000; ++i) {
    float v = static_cast<float>(rng.gaussian());
    u32 w = q.encode(v);
    if (AbsQuantizer<float>::is_bin(w)) {
      EXPECT_LT(w, FloatTraits<float>::denormal_limit);
    } else {
      EXPECT_EQ(w, fpmath::to_bits(v));  // lossless words are the raw pattern
    }
  }
}

TEST(AbsQuantizer, DenormalInputsQuantizeToZero) {
  // Paper: "denormals are always quantized to zero" for ABS/NOA, so positive
  // denormal patterns can never appear as lossless words.
  AbsQuantizer<float> q(1e-3);
  for (u32 bits = 1; bits < 1000; ++bits) {
    float v = fpmath::from_bits<float>(bits);
    u32 w = q.encode(v);
    EXPECT_EQ(w, 0u) << bits;  // bin 0
  }
}

TEST(AbsQuantizer, LargeValuesStoredLossless) {
  AbsQuantizer<float> q(1e-3);
  float v = 1e30f;  // bin would exceed the denormal range
  u32 w = q.encode(v);
  EXPECT_FALSE(AbsQuantizer<float>::is_bin(w));
  EXPECT_EQ(q.decode(w), v);
}

TEST(AbsQuantizer, DegenerateEpsilonIsLosslessButValid) {
  AbsQuantizer<float> q(0.0);
  EXPECT_EQ(q.decode(q.encode(1.234f)), 1.234f);
  EXPECT_EQ(q.decode(q.encode(0.0f)), 0.0f);
}

TEST(AbsQuantizer, RejectsInvalidBounds) {
  EXPECT_THROW(AbsQuantizer<float>(-1.0), CompressionError);
  EXPECT_THROW(AbsQuantizer<float>(std::numeric_limits<double>::infinity()),
               CompressionError);
  EXPECT_THROW(AbsQuantizer<float>(std::numeric_limits<double>::quiet_NaN()),
               CompressionError);
}

// --- REL ---------------------------------------------------------------------

TEST(RelQuantizer, SpecialValuesGuaranteedFloat) {
  for (float v : special_values<float>())
    for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) check_rel_bound(v, eps);
}

TEST(RelQuantizer, SpecialValuesGuaranteedDouble) {
  for (double v : special_values<double>())
    for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) check_rel_bound(v, eps);
}

TEST(RelQuantizer, RandomValuesGuaranteed) {
  data::Rng rng(31);
  for (int i = 0; i < 100000; ++i) {
    float v = static_cast<float>(rng.gaussian() * std::pow(10.0, rng.uniform(-30, 30)));
    check_rel_bound(v, 1e-2);
  }
}

TEST(RelQuantizer, RandomBitPatternsGuaranteedFloat) {
  data::Rng rng(32);
  for (int i = 0; i < 200000; ++i) {
    float v = fpmath::from_bits<float>(static_cast<u32>(rng.next_u64()));
    check_rel_bound(v, 1e-3);
  }
}

TEST(RelQuantizer, RandomBitPatternsGuaranteedDouble) {
  data::Rng rng(33);
  for (int i = 0; i < 100000; ++i) {
    double v = fpmath::from_bits<double>(rng.next_u64());
    check_rel_bound(v, 1e-4);
  }
}

TEST(RelQuantizer, NegativeNaNsBecomePositive) {
  // Paper Section III-B: the negative NaN range is freed for bin numbers by
  // making all negative NaNs positive.
  RelQuantizer<float> q(1e-2);
  float nnan = fpmath::from_bits<float>(0xFFC00001u);
  float r = q.decode(q.encode(nnan));
  EXPECT_TRUE(std::isnan(r));
  EXPECT_EQ(fpmath::to_bits(r) & FloatTraits<float>::sign_mask, 0u);
}

TEST(RelQuantizer, ZeroKeepsSign) {
  RelQuantizer<float> q(1e-2);
  EXPECT_EQ(fpmath::to_bits(q.decode(q.encode(0.0f))), 0u);
  EXPECT_EQ(fpmath::to_bits(q.decode(q.encode(-0.0f))), 0x80000000u);
}

TEST(RelQuantizer, BinsClusterForCompressibility) {
  // Nearby values map to nearby (or equal) bins — the property the delta
  // stage exploits.
  RelQuantizer<float> q(1e-2);
  u32 w1 = q.encode(100.0f);
  u32 w2 = q.encode(100.5f);
  ASSERT_TRUE(RelQuantizer<float>::is_bin(w1));
  ASSERT_TRUE(RelQuantizer<float>::is_bin(w2));
  EXPECT_LE((w2 >> 1) - (w1 >> 1), 1u);
}

TEST(RelQuantizer, EmittedWordsRespectTheNanRangeEncoding) {
  // Bin words (after the stream-wide inversion) sit strictly below
  // 2^mantissa_bits - 1; inverting them back lands in the negative-NaN
  // pattern range. Lossless words never collide with that range because
  // input NaNs were made positive.
  RelQuantizer<float> q(1e-3);
  data::Rng rng(200);
  for (int i = 0; i < 200000; ++i) {
    float v = fpmath::from_bits<float>(static_cast<u32>(rng.next_u64()));
    u32 w = q.encode(v);
    if (RelQuantizer<float>::is_bin(w)) {
      ASSERT_LT(w, FloatTraits<float>::denormal_limit - 1);
      u32 uninverted = ~w;
      ASSERT_GT(uninverted, 0xFF800000u);  // strictly inside negative NaNs
    } else {
      // Lossless word: the un-inverted pattern must NOT be a negative NaN.
      u32 pattern = ~w;
      ASSERT_FALSE(pattern > 0xFF800000u) << std::hex << pattern;
    }
  }
}

TEST(RelQuantizer, DoubleWideBinsCoverMoreRange) {
  // Double precision has a 2^52-wide NaN range, so magnitudes that overflow
  // the float bin range still quantize in double (paper Section III-B).
  RelQuantizer<double> qd(1e-6);
  u64 w = qd.encode(1e300);
  EXPECT_TRUE(RelQuantizer<double>::is_bin(w));
  double r = qd.decode(w);
  EXPECT_NEAR(r / 1e300, 1.0, 1e-6 * 1.01);
}

TEST(RelQuantizer, RejectsInvalidBounds) {
  EXPECT_THROW(RelQuantizer<float>(0.0), CompressionError);
  EXPECT_THROW(RelQuantizer<float>(-0.5), CompressionError);
}

// --- parameterized sweep: both quantizers across bound magnitudes -----------

class QuantizerSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizerSweep, AbsBoundHolds) {
  double eps = GetParam();
  data::Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    float v = static_cast<float>(rng.gaussian() * std::pow(10.0, rng.uniform(-4, 4)));
    check_abs_bound(v, eps);
    check_abs_bound(static_cast<double>(v), eps);
  }
}

TEST_P(QuantizerSweep, RelBoundHolds) {
  double eps = GetParam();
  data::Rng rng(102);
  for (int i = 0; i < 20000; ++i) {
    float v = static_cast<float>(rng.gaussian() * std::pow(10.0, rng.uniform(-20, 20)));
    check_rel_bound(v, eps);
    check_rel_bound(static_cast<double>(v), eps);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, QuantizerSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 0.5, 2.0e-38));
