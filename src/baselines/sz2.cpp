#include "baselines/sz2.hpp"

#include <cmath>

#include "baselines/sz_common.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x32325A53u;  // "SZ22"

// --- Lorenzo prediction (1D previous-value, 3D 7-neighbour) -----------------
//
// For 3D fields SZ2 additionally fits a per-block linear regression and
// chooses, block by block, whichever predictor fits the original data better
// (Liang et al. 2018). Blocks are 6x6x6; the regression coefficients are
// stored exactly so compressor and decompressor predict identically.

constexpr std::size_t kRegBlock = 6;

template <typename T>
struct RegressionCoeffs {
  double b0 = 0, bx = 0, by = 0, bz = 0;

  double predict(std::size_t z, std::size_t y, std::size_t x) const {
    return b0 + bz * static_cast<double>(z) + by * static_cast<double>(y) +
           bx * static_cast<double>(x);
  }
};

/// Closed-form least squares of v ~ b0 + bz*z + by*y + bx*x over a
/// rectangular sub-block. Centered coordinates over a rectangular grid are
/// mutually orthogonal, so each slope is an independent 1D projection.
template <typename T>
RegressionCoeffs<T> fit_block(const T* d, const std::array<std::size_t, 3>& dims,
                              std::size_t z0, std::size_t y0, std::size_t x0, std::size_t bz,
                              std::size_t by, std::size_t bx) {
  const std::size_t ny = dims[1], nx = dims[2];
  double n = static_cast<double>(bz * by * bx);
  double mz = (static_cast<double>(bz) - 1) / 2, my = (static_cast<double>(by) - 1) / 2,
         mx = (static_cast<double>(bx) - 1) / 2;
  double sum = 0, sz_ = 0, sy = 0, sx = 0, szz = 0, syy = 0, sxx = 0;
  for (std::size_t z = 0; z < bz; ++z)
    for (std::size_t y = 0; y < by; ++y)
      for (std::size_t x = 0; x < bx; ++x) {
        double v = static_cast<double>(d[((z0 + z) * ny + (y0 + y)) * nx + (x0 + x)]);
        if (!std::isfinite(v)) v = 0;
        double cz = static_cast<double>(z) - mz, cy = static_cast<double>(y) - my,
               cx = static_cast<double>(x) - mx;
        sum += v;
        sz_ += v * cz;
        sy += v * cy;
        sx += v * cx;
        szz += cz * cz;
        syy += cy * cy;
        sxx += cx * cx;
      }
  RegressionCoeffs<T> c;
  c.bz = szz > 0 ? sz_ / szz : 0;
  c.by = syy > 0 ? sy / syy : 0;
  c.bx = sxx > 0 ? sx / sxx : 0;
  c.b0 = sum / n - c.bz * (static_cast<double>(z0) + mz) - c.by * (static_cast<double>(y0) + my) -
         c.bx * (static_cast<double>(x0) + mx);
  // Express in global coordinates so predict() takes absolute indices.
  return c;
}

/// 3D encoder with per-block predictor selection (Lorenzo vs. regression).
/// `flags` gets one bit per block (set = regression) and `coeffs` the packed
/// coefficients of the regression blocks, in block raster order.
template <typename T>
SzPayload lorenzo_regression_encode(const T* d, std::array<std::size_t, 3> dims,
                                    double abs_eps, std::vector<u8>& flags,
                                    std::vector<u8>& coeff_bytes) {
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  const std::size_t n = nz * ny * nx;
  SzQuantizer<T> q(abs_eps);
  SzPayload p;
  p.codes.assign(n, 0);
  std::vector<T> outliers;
  std::vector<T> recon(n, T(0));
  auto at = [&](std::size_t k, std::size_t j, std::size_t i) -> T& {
    return recon[(k * ny + j) * nx + i];
  };
  auto lorenzo_pred = [&](auto&& src, std::size_t k, std::size_t j, std::size_t i) -> T {
    T f100 = i ? src(k, j, i - 1) : T(0);
    T f010 = j ? src(k, j - 1, i) : T(0);
    T f001 = k ? src(k - 1, j, i) : T(0);
    T f110 = (i && j) ? src(k, j - 1, i - 1) : T(0);
    T f101 = (i && k) ? src(k - 1, j, i - 1) : T(0);
    T f011 = (j && k) ? src(k - 1, j - 1, i) : T(0);
    T f111 = (i && j && k) ? src(k - 1, j - 1, i - 1) : T(0);
    return f100 + f010 + f001 - f110 - f101 - f011 + f111;
  };
  auto orig = [&](std::size_t k, std::size_t j, std::size_t i) -> T {
    return d[(k * ny + j) * nx + i];
  };
  std::size_t nblocks = ((nz + kRegBlock - 1) / kRegBlock) * ((ny + kRegBlock - 1) / kRegBlock) *
                        ((nx + kRegBlock - 1) / kRegBlock);
  flags.assign((nblocks + 7) / 8, 0);
  std::size_t block = 0;
  for (std::size_t z0 = 0; z0 < nz; z0 += kRegBlock)
    for (std::size_t y0 = 0; y0 < ny; y0 += kRegBlock)
      for (std::size_t x0 = 0; x0 < nx; x0 += kRegBlock, ++block) {
        std::size_t bz = std::min(kRegBlock, nz - z0), by = std::min(kRegBlock, ny - y0),
                    bx = std::min(kRegBlock, nx - x0);
        RegressionCoeffs<T> c = fit_block(d, dims, z0, y0, x0, bz, by, bx);
        // Predictor selection on the original data (SZ2 samples).
        double sse_reg = 0, sse_lor = 0;
        for (std::size_t z = z0; z < z0 + bz; ++z)
          for (std::size_t y = y0; y < y0 + by; ++y)
            for (std::size_t x = x0; x < x0 + bx; ++x) {
              double v = static_cast<double>(orig(z, y, x));
              double er = v - c.predict(z, y, x);
              double el = v - static_cast<double>(lorenzo_pred(orig, z, y, x));
              sse_reg += er * er;
              sse_lor += el * el;
            }
        bool use_reg = sse_reg < sse_lor;
        if (use_reg) {
          flags[block >> 3] |= static_cast<u8>(1u << (block & 7));
          append_scalar<double>(coeff_bytes, c.b0);
          append_scalar<double>(coeff_bytes, c.bz);
          append_scalar<double>(coeff_bytes, c.by);
          append_scalar<double>(coeff_bytes, c.bx);
        }
        for (std::size_t z = z0; z < z0 + bz; ++z)
          for (std::size_t y = y0; y < y0 + by; ++y)
            for (std::size_t x = x0; x < x0 + bx; ++x) {
              T pred = use_reg
                           ? static_cast<T>(c.predict(z, y, x))
                           : lorenzo_pred([&](std::size_t k, std::size_t j,
                                              std::size_t i) { return at(k, j, i); },
                                          z, y, x);
              std::size_t idx = (z * ny + y) * nx + x;
              p.codes[idx] = q.quantize(pred, d[idx], recon[idx], outliers);
            }
      }
  for (T o : outliers) append_scalar(p.outlier_bytes, o);
  return p;
}

/// Mirror of lorenzo_regression_encode.
template <typename T>
std::vector<T> lorenzo_regression_decode(const SzPayload& p, std::array<std::size_t, 3> dims,
                                         double abs_eps, std::span<const u8> flags,
                                         std::span<const u8> coeff_bytes) {
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  const std::size_t n = nz * ny * nx;
  if (p.codes.size() != n) throw CompressionError("sz2: code count mismatch");
  SzQuantizer<T> q(abs_eps);
  std::vector<T> recon(n, T(0));
  std::span<const u8> ob(p.outlier_bytes);
  std::size_t oi = 0, ci = 0;
  auto at = [&](std::size_t k, std::size_t j, std::size_t i) -> T& {
    return recon[(k * ny + j) * nx + i];
  };
  std::size_t block = 0;
  for (std::size_t z0 = 0; z0 < nz; z0 += kRegBlock)
    for (std::size_t y0 = 0; y0 < ny; y0 += kRegBlock)
      for (std::size_t x0 = 0; x0 < nx; x0 += kRegBlock, ++block) {
        std::size_t bz = std::min(kRegBlock, nz - z0), by = std::min(kRegBlock, ny - y0),
                    bx = std::min(kRegBlock, nx - x0);
        if (block >= flags.size() * 8) throw CompressionError("sz2: flag table underrun");
        bool use_reg = (flags[block >> 3] >> (block & 7)) & 1u;
        RegressionCoeffs<T> c;
        if (use_reg) {
          c.b0 = take_scalar<double>(coeff_bytes, ci++);
          c.bz = take_scalar<double>(coeff_bytes, ci++);
          c.by = take_scalar<double>(coeff_bytes, ci++);
          c.bx = take_scalar<double>(coeff_bytes, ci++);
        }
        for (std::size_t z = z0; z < z0 + bz; ++z)
          for (std::size_t y = y0; y < y0 + by; ++y)
            for (std::size_t x = x0; x < x0 + bx; ++x) {
              std::size_t idx = (z * ny + y) * nx + x;
              u16 code = p.codes[idx];
              if (code == 0) {
                recon[idx] = take_scalar<T>(ob, oi++);
                continue;
              }
              T pred;
              if (use_reg) {
                pred = static_cast<T>(c.predict(z, y, x));
              } else {
                T f100 = x ? at(z, y, x - 1) : T(0);
                T f010 = y ? at(z, y - 1, x) : T(0);
                T f001 = z ? at(z - 1, y, x) : T(0);
                T f110 = (x && y) ? at(z, y - 1, x - 1) : T(0);
                T f101 = (x && z) ? at(z - 1, y, x - 1) : T(0);
                T f011 = (y && z) ? at(z - 1, y - 1, x) : T(0);
                T f111 = (x && y && z) ? at(z - 1, y - 1, x - 1) : T(0);
                pred = f100 + f010 + f001 - f110 - f101 - f011 + f111;
              }
              recon[idx] = q.reconstruct(pred, code);
            }
      }
  return recon;
}

template <typename T>
SzPayload lorenzo_encode(const T* d, std::array<std::size_t, 3> dims, double abs_eps) {
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  const std::size_t n = nz * ny * nx;
  SzQuantizer<T> q(abs_eps);
  SzPayload p;
  p.codes.reserve(n);
  std::vector<T> outliers;
  std::vector<T> recon(n, T(0));
  const bool use3d = nz > 1 && ny > 1 && nx > 1;
  auto at = [&](std::size_t k, std::size_t j, std::size_t i) -> T& {
    return recon[(k * ny + j) * nx + i];
  };
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        std::size_t idx = (k * ny + j) * nx + i;
        T pred;
        if (use3d) {
          // 3D Lorenzo: inclusion-exclusion over the already-decoded corner.
          T f100 = i ? at(k, j, i - 1) : T(0);
          T f010 = j ? at(k, j - 1, i) : T(0);
          T f001 = k ? at(k - 1, j, i) : T(0);
          T f110 = (i && j) ? at(k, j - 1, i - 1) : T(0);
          T f101 = (i && k) ? at(k - 1, j, i - 1) : T(0);
          T f011 = (j && k) ? at(k - 1, j - 1, i) : T(0);
          T f111 = (i && j && k) ? at(k - 1, j - 1, i - 1) : T(0);
          pred = f100 + f010 + f001 - f110 - f101 - f011 + f111;
        } else {
          pred = idx ? recon[idx - 1] : T(0);
        }
        p.codes.push_back(q.quantize(pred, d[idx], recon[idx], outliers));
      }
  for (T o : outliers) append_scalar(p.outlier_bytes, o);
  return p;
}

template <typename T>
std::vector<T> lorenzo_decode(const SzPayload& p, std::array<std::size_t, 3> dims,
                              double abs_eps) {
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  const std::size_t n = nz * ny * nx;
  if (p.codes.size() != n) throw CompressionError("sz2: code count mismatch");
  SzQuantizer<T> q(abs_eps);
  std::vector<T> recon(n, T(0));
  std::span<const u8> ob(p.outlier_bytes);
  std::size_t oi = 0;
  const bool use3d = nz > 1 && ny > 1 && nx > 1;
  auto at = [&](std::size_t k, std::size_t j, std::size_t i) -> T& {
    return recon[(k * ny + j) * nx + i];
  };
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        std::size_t idx = (k * ny + j) * nx + i;
        u16 code = p.codes[idx];
        if (code == 0) {
          recon[idx] = take_scalar<T>(ob, oi++);
          continue;
        }
        T pred;
        if (use3d) {
          T f100 = i ? at(k, j, i - 1) : T(0);
          T f010 = j ? at(k, j - 1, i) : T(0);
          T f001 = k ? at(k - 1, j, i) : T(0);
          T f110 = (i && j) ? at(k, j - 1, i - 1) : T(0);
          T f101 = (i && k) ? at(k - 1, j, i - 1) : T(0);
          T f011 = (j && k) ? at(k - 1, j - 1, i) : T(0);
          T f111 = (i && j && k) ? at(k - 1, j - 1, i - 1) : T(0);
          pred = f100 + f010 + f001 - f110 - f101 - f011 + f111;
        } else {
          pred = idx ? recon[idx - 1] : T(0);
        }
        recon[idx] = q.reconstruct(pred, code);
      }
  return recon;
}

// --- REL via log transform (the bound-violating SZ2 scheme) -----------------
//
// v -> log(|v|), compressed with an ABS bound of log(1+eps); signs and
// zero/non-finite masks are stored on the side. The exp() on decode rounds,
// so reconstructed values occasionally land just outside the relative bound.

template <typename T>
Bytes rel_compress(const T* d, std::array<std::size_t, 3> dims, double eps,
                   BaselineHeader h) {
  const std::size_t n = dims[0] * dims[1] * dims[2];
  std::vector<T> logs(n, T(0));
  std::vector<u8> mask(n, 0);  // 0 normal, 1 zero, 2 special (exact copy)
  std::vector<u8> signs((n + 7) / 8, 0);
  std::vector<u8> specials;
  for (std::size_t i = 0; i < n; ++i) {
    T v = d[i];
    if (v < T(0)) signs[i >> 3] |= static_cast<u8>(1u << (i & 7));
    if (v == T(0)) {
      mask[i] = 1;
    } else if (!std::isfinite(v)) {
      mask[i] = 2;
      append_scalar(specials, v);
    } else {
      logs[i] = static_cast<T>(std::log(std::abs(static_cast<double>(v))));
    }
  }
  double eps_log = std::log1p(eps);  // no guard band: the source of violations
  SzPayload p = lorenzo_encode(logs.data(), {1, 1, n}, eps_log);
  h.derived = eps_log;
  Bytes out;
  write_bheader(h, out);
  Bytes mask_c = lossless::lz_encode(mask);
  Bytes signs_c = lossless::lz_encode(signs);
  append_scalar<u64>(out, mask_c.size());
  append_scalar<u64>(out, signs_c.size());
  append_scalar<u64>(out, specials.size());
  out.insert(out.end(), mask_c.begin(), mask_c.end());
  out.insert(out.end(), signs_c.begin(), signs_c.end());
  out.insert(out.end(), specials.begin(), specials.end());
  Bytes payload = sz_pack(p);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename T>
std::vector<u8> rel_decompress(const Bytes& in, const BaselineHeader& h) {
  const std::size_t n = h.count;
  std::size_t pos = sizeof(BaselineHeader);
  auto read_u64 = [&]() {
    if (pos + 8 > in.size()) throw CompressionError("sz2: truncated");
    u64 v;
    std::memcpy(&v, in.data() + pos, 8);
    pos += 8;
    return v;
  };
  u64 mask_size = read_u64(), signs_size = read_u64(), specials_size = read_u64();
  if (pos + mask_size + signs_size + specials_size > in.size())
    throw CompressionError("sz2: truncated side data");
  std::vector<u8> mask = lossless::lz_decode(in.data() + pos, mask_size);
  pos += mask_size;
  std::vector<u8> signs = lossless::lz_decode(in.data() + pos, signs_size);
  pos += signs_size;
  std::span<const u8> specials(in.data() + pos, specials_size);
  pos += specials_size;
  SzPayload p = sz_unpack(in.data() + pos, in.size() - pos);
  std::vector<T> logs = lorenzo_decode<T>(p, {1, 1, n}, h.derived);
  std::vector<u8> out(n * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());
  std::size_t si = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool neg = (signs[i >> 3] >> (i & 7)) & 1u;
    if (mask[i] == 1) {
      values[i] = neg ? T(-0.0) : T(0);
    } else if (mask[i] == 2) {
      values[i] = take_scalar<T>(specials, si++);
    } else {
      T mag = static_cast<T>(std::exp(static_cast<double>(logs[i])));
      values[i] = neg ? -mag : mag;
    }
  }
  return out;
}

// --- top-level dispatch ------------------------------------------------------

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb) {
  auto d = in.as<T>();
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  if (eb == EbType::REL) return rel_compress(d.data(), in.dims, eps, h);
  double abs_eps = eb == EbType::NOA ? noa_to_abs(d, eps) : eps;
  h.derived = abs_eps;
  Bytes out;
  write_bheader(h, out);
  if (in.is_3d()) {
    // 3D: per-block Lorenzo-vs-regression selection, like real SZ2.
    std::vector<u8> flags, coeffs;
    SzPayload p = lorenzo_regression_encode(d.data(), in.dims, abs_eps, flags, coeffs);
    append_scalar<u64>(out, flags.size());
    append_scalar<u64>(out, coeffs.size());
    out.insert(out.end(), flags.begin(), flags.end());
    out.insert(out.end(), coeffs.begin(), coeffs.end());
    Bytes payload = sz_pack(p);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }
  SzPayload p = lorenzo_encode(d.data(), in.dims, abs_eps);
  Bytes payload = sz_pack(p);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  if (h.eb == EbType::REL) return rel_decompress<T>(in, h);
  std::array<std::size_t, 3> dims{h.dims[0], h.dims[1], h.dims[2]};
  std::vector<T> recon;
  if (dims[0] > 1 && dims[1] > 1 && dims[2] > 1) {
    std::size_t pos = sizeof(BaselineHeader);
    if (pos + 16 > in.size()) throw CompressionError("sz2: truncated block tables");
    u64 flag_size, coeff_size;
    std::memcpy(&flag_size, in.data() + pos, 8);
    std::memcpy(&coeff_size, in.data() + pos + 8, 8);
    pos += 16;
    if (pos + flag_size + coeff_size > in.size())
      throw CompressionError("sz2: truncated block tables");
    std::span<const u8> flags(in.data() + pos, flag_size);
    std::span<const u8> coeffs(in.data() + pos + flag_size, coeff_size);
    pos += flag_size + coeff_size;
    SzPayload p = sz_unpack(in.data() + pos, in.size() - pos);
    recon = lorenzo_regression_decode<T>(p, dims, h.derived, flags, coeffs);
  } else {
    SzPayload p =
        sz_unpack(in.data() + sizeof(BaselineHeader), in.size() - sizeof(BaselineHeader));
    recon = lorenzo_decode<T>(p, dims, h.derived);
  }
  std::vector<u8> out(recon.size() * sizeof(T));
  std::memcpy(out.data(), recon.data(), out.size());
  return out;
}

}  // namespace

Bytes Sz2Compressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb);
  return compress_typed<double>(in, eps, eb);
}

std::vector<u8> Sz2Compressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
