// Table III reproduction: supported features of all tested compressors.
//
// Two parts:
//  1. the feature matrix from the capability records ('Y' = supported and
//     guaranteed, 'o' = supported but bound not always adhered to, '-' =
//     unsupported) — same glyph semantics as the paper's ✓/○/✗;
//  2. an empirical bound-violation probe: each compressor x bound type is
//     run on an adversarial mix (smooth data + huge magnitudes + tiny
//     values) and violations are counted by the external verifier. This is
//     how the paper's '○' entries were established.
#include <cmath>
#include <cstdio>

#include "baselines/registry.hpp"
#include "data/rng.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

namespace {

std::vector<float> adversarial_field(std::size_t n) {
  data::Rng rng(2025);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double r = rng.uniform();
    if (r < 0.90) {
      v[i] = static_cast<float>(std::sin(i * 0.01) + 0.01 * rng.gaussian());
    } else if (r < 0.95) {
      v[i] = static_cast<float>(rng.gaussian() * 1e12);  // prequant overflow bait
    } else {
      v[i] = static_cast<float>(rng.gaussian() * 1e-20);  // tiny magnitudes
    }
  }
  return v;
}

char glyph(bool supported, bool guaranteed) {
  if (!supported) return '-';
  return guaranteed ? 'Y' : 'o';
}

}  // namespace

int main() {
  std::printf("# Table III: compressor features ('Y' = supported+guaranteed, 'o' = supported\n");
  std::printf("# but bound not always adhered to, '-' = unsupported)\n");
  std::printf("compressor,ABS,REL,NOA,Float,Double,CPU,GPU\n");
  // Collapse PFPL's three executors into the single PFPL row of the paper.
  for (const auto& c : baselines::all_compressors()) {
    if (c->name() == "PFPL_OMP" || c->name() == "PFPL_CUDAsim") continue;
    Features f = c->features();
    bool cpu = f.cpu || c->name() == "PFPL_Serial";
    bool gpu = f.gpu || c->name() == "PFPL_Serial";  // PFPL covers both
    std::printf("%s,%c,%c,%c,%c,%c,%c,%c\n", c->name().c_str(),
                glyph(f.abs, f.guarantee_abs), glyph(f.rel, f.guarantee_rel),
                glyph(f.noa, f.guarantee_noa), f.f32 ? 'Y' : '-', f.f64 ? 'Y' : '-',
                cpu ? 'Y' : '-', gpu ? 'Y' : '-');
  }

  std::printf("\n# Empirical bound-violation probe (adversarial 3D field, eps = 1e-3)\n");
  std::printf("compressor,eb,violations,values\n");
  auto v = adversarial_field(32 * 32 * 32);
  Field field(v.data(), {32, 32, 32});
  for (const auto& c : baselines::all_compressors()) {
    if (c->name() == "PFPL_OMP" || c->name() == "PFPL_CUDAsim") continue;
    Features f = c->features();
    for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
      if (!f.supports(eb)) continue;
      try {
        Bytes s = c->compress(field, 1e-3, eb);
        auto back = c->decompress_as<float>(s);
        std::size_t bad = metrics::count_violations(
            std::span<const float>(v), std::span<const float>(back), 1e-3, eb);
        std::printf("%s,%s,%zu,%zu\n", c->name().c_str(), to_string(eb), bad, v.size());
      } catch (const CompressionError& e) {
        std::printf("%s,%s,error:%s,%zu\n", c->name().c_str(), to_string(eb), e.what(),
                    v.size());
      }
    }
  }
  return 0;
}
