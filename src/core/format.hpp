// PFPL container format.
//
// Layout (little-endian):
//   Header (40 bytes)
//   chunk size table: chunk_count x u32 (bit 31 set = chunk stored raw)
//   concatenated chunk payloads
//
// The header records the reconstruction parameter actually used by the
// decoder (`recon_param`): 2*eps factors for ABS, the range-derived absolute
// bound for NOA, and log1p(eps) for REL. Storing it — instead of recomputing
// it at decode time — is part of the bit-for-bit compatibility story: every
// decoder, on any device, reconstructs with the identical constant.
#pragma once

#include <cstring>

#include "common/types.hpp"

namespace repro::pfpl {

inline constexpr u32 kMagic = 0x4C504650u;  // "PFPL"
inline constexpr u16 kVersion = 1;
inline constexpr u32 kRawChunkFlag = 0x80000000u;

struct Header {
  u32 magic = kMagic;
  u16 version = kVersion;
  DType dtype = DType::F32;
  EbType eb_type = EbType::ABS;
  double eps = 0.0;          ///< user-requested bound
  double recon_param = 0.0;  ///< ABS: eps; NOA: eps*(max-min); REL: log1p(eps)
  u64 value_count = 0;
  u32 chunk_count = 0;
  u32 reserved = 0;
};

static_assert(sizeof(Header) == 40);

inline void write_header(const Header& h, Bytes& out) {
  std::size_t off = out.size();
  out.resize(off + sizeof(Header));
  std::memcpy(out.data() + off, &h, sizeof(Header));
}

inline Header read_header(const Bytes& in) {
  if (in.size() < sizeof(Header)) throw CompressionError("PFPL stream: truncated header");
  Header h;
  std::memcpy(&h, in.data(), sizeof(Header));
  if (h.magic != kMagic) throw CompressionError("PFPL stream: bad magic");
  if (h.version != kVersion) throw CompressionError("PFPL stream: unsupported version");
  return h;
}

}  // namespace repro::pfpl
