// Jittered exponential backoff, shared by net::Client (transport retries)
// and cluster::ClusterClient (replica-sweep pacing).
//
// The jitter matters more than the curve: when a node dies, every client
// notices at the same instant, and a deterministic backoff would have the
// whole fleet reconnect in lockstep — the classic retry stampede. Scaling
// each sleep by a per-client uniform factor in [0.5, 1.5) spreads the
// retries across a window as wide as the sleep itself.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace repro::net {

/// Per-caller jitter state (xorshift64*). Deterministic for a given seed —
/// tests pin exact sleep sequences — and decorrelated across clients when
/// seeded from per-instance entropy. Not cryptographic; does not need to be.
class BackoffJitter {
 public:
  explicit BackoffJitter(u64 seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Uniform in [0, 1).
  double next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return static_cast<double>((state_ * 0x2545F4914F6CDD1Dull) >> 11) /
           static_cast<double>(1ull << 53);
  }

 private:
  u64 state_;
};

/// Sleep before retry `k` (1-based): min(base << (k-1), max) milliseconds,
/// scaled by jitter in [0.5, 1.5). base <= 0 returns 0 (immediate retry).
inline int backoff_ms(unsigned k, int base_ms, int max_ms, BackoffJitter& jitter) {
  if (base_ms <= 0) return 0;
  const unsigned shift = std::min(k > 0 ? k - 1 : 0u, 20u);  // cap the curve
  long long ms = static_cast<long long>(base_ms) << shift;
  if (max_ms > 0) ms = std::min<long long>(ms, max_ms);
  ms = static_cast<long long>(static_cast<double>(ms) * (0.5 + jitter.next()));
  return static_cast<int>(std::max<long long>(ms, 0));
}

}  // namespace repro::net
