// Mini-LC: a reproduction of the LC framework's component model (Azami,
// Fallin, Burtscher et al. [3]) that the paper used to *design* PFPL:
// "We designed these stages with the LC framework, which can automatically
// synthesize parallelized data compressors ... we used LC to generate many
// algorithms and then optimized the best" (Section III-D).
//
// A Stage is a reversible transformation over one chunk of data. Stages are
// word-size aware (the double-precision pipeline is the single-precision one
// with wider words) and may change the chunk's length (only compressing
// stages do). Pipelines are sequences of stages; the search driver
// (lc/search.hpp) enumerates and ranks them the way the authors did.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::lc {

/// One reversible chunk transformation.
class Stage {
 public:
  virtual ~Stage() = default;

  virtual std::string name() const = 0;

  /// Transform `data` in place (may change its size).
  virtual void encode(std::vector<u8>& data) const = 0;

  /// Invert. `original_size` is the pre-encode size of this stage's input
  /// (pipelines track sizes stage by stage, like LC's length headers).
  virtual void decode(std::vector<u8>& data, std::size_t original_size) const = 0;

  /// True if this stage only permutes/remaps bits (size preserved).
  virtual bool size_preserving() const { return true; }
};

using StagePtr = std::shared_ptr<const Stage>;

/// A pipeline of stages applied in order.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(std::vector<StagePtr> stages) : stages_(std::move(stages)) {}

  std::string name() const;
  const std::vector<StagePtr>& stages() const { return stages_; }

  /// Encode a chunk; returns the transformed bytes.
  std::vector<u8> encode(std::vector<u8> data) const;

  /// Decode a chunk given the original (pre-pipeline) size.
  std::vector<u8> decode(std::vector<u8> data, std::size_t original_size) const;

 private:
  std::vector<StagePtr> stages_;
};

/// The component library: every stage the search may use, by word size.
/// WordBits is 32 or 64.
std::vector<StagePtr> component_library(int word_bits);

/// Individual components (exposed for tests and targeted pipelines).
StagePtr make_diff(int word_bits);             ///< word delta (two's complement)
StagePtr make_diff_negabinary(int word_bits);  ///< word delta + negabinary (PFPL stage 1)
StagePtr make_xor_prev(int word_bits);         ///< XOR with previous word
StagePtr make_negabinary(int word_bits);       ///< negabinary remap only
StagePtr make_bitshuffle(int word_bits);       ///< tile bit transpose (PFPL stage 2)
StagePtr make_byteshuffle(int word_bits);      ///< byte-granularity transpose
StagePtr make_zerobyte();                      ///< zero-byte elimination (PFPL stage 3)
StagePtr make_rle();                           ///< byte run-length coding
StagePtr make_lz();                            ///< LZ backend

}  // namespace repro::lc
