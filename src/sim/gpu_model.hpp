// Analytical GPU performance model for PFPL (paper Section V-F).
//
// The paper evaluates PFPL on five GPUs (TITAN Xp, RTX 2070 Super,
// RTX 3080 Ti, RTX 4090, A100) and concludes that "the performance
// correlates primarily with the amount of compute provided by the GPU" —
// not memory bandwidth (only 15% DRAM utilization on the A100) — and that
// the 2070 Super's 1024-thread block limit reduces resident parallelism
// enough to make it perform like the 3-year-older TITAN Xp.
//
// This module reproduces that reasoning as a model: throughput is
// proportional to resident-thread compute capacity
//     SMs x min(threads_per_SM, blocks_per_SM * threads_per_block) x clock
// with a memory-bandwidth roofline that (per the paper) never binds at
// PFPL's ~0.5 byte/op intensity. The bench prints predicted relative
// performance next to the paper's qualitative ordering.
#pragma once

#include <string>
#include <vector>

namespace repro::sim {

struct GpuSpec {
  std::string name;
  int sms;                    ///< streaming multiprocessors
  int cuda_cores_per_sm;
  double boost_clock_ghz;
  int max_threads_per_block;  ///< limits PFPL's chosen block size
  int max_threads_per_sm;
  double mem_bw_gbs;          ///< DRAM bandwidth
  int release_year;
};

/// The five GPUs of Section V-F / Table I.
std::vector<GpuSpec> paper_gpus();

struct GpuPrediction {
  GpuSpec spec;
  double compute_score;    ///< resident threads x clock (arbitrary units)
  double mem_score;        ///< bandwidth-roofline cap (same units)
  double predicted_rel;    ///< min(compute, mem) normalized to the fastest
  bool memory_bound;       ///< whether the roofline binds (paper: never)
};

/// Evaluate the model. `block_threads` is PFPL's kernel block size (the
/// paper's implementation uses more than 1024 threads per block where the
/// hardware allows it); `bytes_per_op` is PFPL's measured memory intensity.
std::vector<GpuPrediction> predict(int block_threads = 2048, double bytes_per_op = 0.15);

}  // namespace repro::sim
