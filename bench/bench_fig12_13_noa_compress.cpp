// Figures 12 & 13 reproduction: NOA error bounds — compression ratio vs.
// compression throughput, single (Fig 12) and double (Fig 13) precision.
// EXAALT/HACC excluded (not 3D -> unsupported by FZ-GPU, matching the
// paper); ZFP and SPERR do not support NOA and are filtered automatically.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::NOA;
  cfg.exclude_non_3d = true;
  // The paper compares to SZ2 only in the REL section (V-C); SZ3 elsewhere.
  cfg.exclude_compressors = {"SZ2_Serial"};

  cfg.dtype = DType::F32;
  bench::print_rows("Fig12_NOA_compress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  bench::print_rows("Fig13_NOA_compress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
