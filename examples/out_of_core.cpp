// Out-of-core compression with the streaming API — the "instruments that
// produce more data than can reasonably be handled" scenario of the paper's
// introduction: the full dataset never exists in memory.
//
//   build/examples/out_of_core
//
// A producer generates a long detector time series in small batches and
// feeds them to StreamEncoder; a consumer later walks the compressed stream
// with StreamDecoder in equally small batches, computing statistics without
// materializing the array. The example verifies the streamed bytes are
// identical to the one-shot API's output.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pfpl.hpp"
#include "core/stream.hpp"

using namespace repro;

namespace {

constexpr std::size_t kBatch = 4096;
constexpr std::size_t kBatches = 512;  // 2M values, "arriving" batch by batch

/// Deterministic detector signal: drifting baseline + bursts.
void produce(std::size_t batch, float* out) {
  for (std::size_t i = 0; i < kBatch; ++i) {
    double t = static_cast<double>(batch * kBatch + i);
    double burst = std::fmod(t, 50000.0) < 300.0 ? std::sin(t * 0.5) * 5.0 : 0.0;
    out[i] = static_cast<float>(0.001 * std::sin(t * 1e-5) * 1000.0 + burst +
                                0.01 * std::sin(t * 0.37));
  }
}

}  // namespace

int main() {
  pfpl::StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::ABS});
  std::vector<float> batch(kBatch);
  for (std::size_t b = 0; b < kBatches; ++b) {
    produce(b, batch.data());
    enc.append(std::span<const float>(batch));
  }
  std::printf("streamed in %zu batches of %zu values; compressed so far: %zu bytes\n",
              kBatches, kBatch, enc.compressed_size_so_far());
  Bytes stream = enc.finish();
  std::size_t raw = kBatches * kBatch * sizeof(float);
  std::printf("final stream: %zu -> %zu bytes (%.1fx)\n", raw, stream.size(),
              static_cast<double>(raw) / static_cast<double>(stream.size()));

  // Consume incrementally: running mean/min/max without the full array.
  pfpl::StreamDecoder dec(stream);
  double sum = 0, mn = 1e300, mx = -1e300;
  std::size_t count = 0;
  while (true) {
    std::size_t n = dec.read(std::span<float>(batch));
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      sum += batch[i];
      mn = std::min(mn, static_cast<double>(batch[i]));
      mx = std::max(mx, static_cast<double>(batch[i]));
    }
    count += n;
  }
  std::printf("consumed %zu values incrementally: mean %.4f, range [%.3f, %.3f]\n", count,
              sum / static_cast<double>(count), mn, mx);

  // Cross-check: the streamed bytes equal the one-shot compressor's output.
  std::vector<float> all(kBatches * kBatch);
  for (std::size_t b = 0; b < kBatches; ++b) produce(b, all.data() + b * kBatch);
  Bytes oneshot = pfpl::compress(Field(all.data(), all.size()), {1e-3, EbType::ABS});
  bool identical = stream == oneshot;
  std::printf("streamed == one-shot bytes: %s\n", identical ? "yes" : "NO");
  return identical && count == all.size() ? 0 : 1;
}
