// PFPL — Portable Floating-Point Lossy compressor (public API).
//
// Reproduction of: Fallin, Azami, Di, Cappello, Burtscher, "Fast and
// Effective Lossy Compression on GPUs and CPUs with Guaranteed Error
// Bounds", IPDPS 2025.
//
// Guarantees, by construction:
//   * the requested point-wise bound (ABS, REL, or NOA) holds for every
//     value, including NaNs, infinities, and denormals (stored losslessly or
//     within bound);
//   * all three executors (Serial, OpenMP, GpuSim) produce bit-for-bit
//     identical compressed streams and bit-for-bit identical decompressed
//     values, and any executor can decode any executor's stream.
//
// Typical use:
//   std::vector<float> data = ...;
//   Bytes c = pfpl::compress(Field(data.data(), data.size()),
//                            {.eps = 1e-3, .eb = EbType::ABS});
//   std::vector<float> back = pfpl::decompress_as<float>(c);
#pragma once

#include <cstring>
#include <vector>

#include "common/compressor.hpp"
#include "common/types.hpp"
#include "core/format.hpp"

namespace repro::pfpl {

/// Execution backend. GpuSim runs the CUDA algorithm (warp shuffles, block
/// scans) in a functional simulator — see src/sim and DESIGN.md §1.
enum class Executor : u8 { Serial = 0, OpenMP = 1, GpuSim = 2 };

inline const char* to_string(Executor e) {
  switch (e) {
    case Executor::Serial: return "Serial";
    case Executor::OpenMP: return "OMP";
    case Executor::GpuSim: return "CUDAsim";
  }
  return "?";
}

struct Params {
  double eps = 1e-3;                  ///< error bound (interpretation: eb)
  EbType eb = EbType::ABS;            ///< bound type
  Executor exec = Executor::Serial;   ///< execution backend
};

/// Compress a field. Throws CompressionError on invalid bounds
/// (ABS requires eps >= the smallest positive normal value of the dtype;
/// REL requires eps > 0; NOA requires eps >= 0).
Bytes compress(const Field& in, const Params& p);

/// Decompress a stream produced by any executor. Returns raw scalar bytes
/// (dtype recorded in the stream header).
std::vector<u8> decompress(const Bytes& stream, Executor exec = Executor::Serial);

/// Header of a compressed stream (for inspecting dtype/eb/count).
Header peek_header(const Bytes& stream);

template <typename T>
std::vector<T> decompress_as(const Bytes& stream, Executor exec = Executor::Serial) {
  std::vector<u8> raw = decompress(stream, exec);
  std::vector<T> out(raw.size() / sizeof(T));
  std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
  return out;
}

/// Compressor-interface adapter so PFPL plugs into the benchmark harness
/// alongside the baselines.
class PfplCompressor final : public Compressor {
 public:
  explicit PfplCompressor(Executor exec = Executor::Serial) : exec_(exec) {}

  std::string name() const override {
    return std::string("PFPL_") + pfpl::to_string(exec_);
  }
  Features features() const override {
    Features f;
    f.abs = f.rel = f.noa = f.f32 = f.f64 = true;
    f.cpu = exec_ != Executor::GpuSim;
    f.gpu = exec_ == Executor::GpuSim;
    f.guarantee_abs = f.guarantee_rel = f.guarantee_noa = true;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override {
    return pfpl::compress(in, Params{eps, eb, exec_});
  }
  std::vector<u8> decompress(const Bytes& stream) const override {
    return pfpl::decompress(stream, exec_);
  }

 private:
  Executor exec_;
};

}  // namespace repro::pfpl
