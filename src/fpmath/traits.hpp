// IEEE-754 bit-level traits for float and double.
//
// PFPL stores quantization bin numbers inside reserved regions of the IEEE
// bit-pattern space (Section III-B of the paper):
//   * ABS/NOA: the positive-denormal range (top sign+exponent bits all zero),
//     which is ~8 million patterns wide for floats and 2^52 wide for doubles.
//   * REL: the negative-NaN range, freed up by making input NaNs positive.
// These traits centralize the constants that carve up those ranges.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/types.hpp"

namespace repro::fpmath {

template <typename T>
struct FloatTraits;

template <>
struct FloatTraits<float> {
  using Bits = u32;
  using Signed = i32;
  static constexpr int total_bits = 32;
  static constexpr int mantissa_bits = 23;
  static constexpr int exponent_bits = 8;
  static constexpr Bits sign_mask = 0x80000000u;
  static constexpr Bits exponent_mask = 0x7F800000u;
  static constexpr Bits mantissa_mask = 0x007FFFFFu;
  static constexpr Bits pos_inf = 0x7F800000u;
  static constexpr Bits neg_inf = 0xFF800000u;
  /// All bit patterns strictly below this are +0 or positive denormals.
  static constexpr Bits denormal_limit = Bits{1} << mantissa_bits;  // 2^23
  static constexpr float min_normal = 1.17549435082228751e-38f;     // 2^-126
};

template <>
struct FloatTraits<double> {
  using Bits = u64;
  using Signed = i64;
  static constexpr int total_bits = 64;
  static constexpr int mantissa_bits = 52;
  static constexpr int exponent_bits = 11;
  static constexpr Bits sign_mask = 0x8000000000000000ull;
  static constexpr Bits exponent_mask = 0x7FF0000000000000ull;
  static constexpr Bits mantissa_mask = 0x000FFFFFFFFFFFFFull;
  static constexpr Bits pos_inf = 0x7FF0000000000000ull;
  static constexpr Bits neg_inf = 0xFFF0000000000000ull;
  static constexpr Bits denormal_limit = Bits{1} << mantissa_bits;  // 2^52
  static constexpr double min_normal = 2.2250738585072014e-308;     // 2^-1022
};

template <typename T>
constexpr typename FloatTraits<T>::Bits to_bits(T v) {
  return std::bit_cast<typename FloatTraits<T>::Bits>(v);
}

template <typename T>
constexpr T from_bits(typename FloatTraits<T>::Bits b) {
  return std::bit_cast<T>(b);
}

template <typename T>
constexpr bool is_nan_bits(typename FloatTraits<T>::Bits b) {
  using FT = FloatTraits<T>;
  return (b & FT::exponent_mask) == FT::exponent_mask && (b & FT::mantissa_mask) != 0;
}

template <typename T>
constexpr bool is_inf_bits(typename FloatTraits<T>::Bits b) {
  using FT = FloatTraits<T>;
  return (b & ~FT::sign_mask) == FT::pos_inf;
}

template <typename T>
constexpr bool is_finite_bits(typename FloatTraits<T>::Bits b) {
  using FT = FloatTraits<T>;
  return (b & FT::exponent_mask) != FT::exponent_mask;
}

}  // namespace repro::fpmath
