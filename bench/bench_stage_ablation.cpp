// Section III-D ablation: "Removing any one of these transformations
// decreases the compression ratio by a substantial factor."
//
// For each single-precision suite (ABS quantizer at 1e-3), the quantized
// word stream is compressed by pipeline variants with one stage removed or
// altered:
//   full        delta -> negabinary -> bit shuffle -> zero-byte elimination
//   no_delta    (negabinary of raw words) -> shuffle -> zero-elim
//   twos_compl  delta in two's complement (no negabinary) -> shuffle -> zero
//   no_shuffle  delta -> negabinary -> zero-elim
//   no_zeroelim delta -> negabinary -> shuffle (nothing compresses: ratio 1)
#include <cstdio>
#include <cstring>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/negabinary.hpp"
#include "bits/zerobyte.hpp"
#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "data/synthetic.hpp"
#include "harness.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

namespace {

enum class Variant { Full, NoDelta, TwosComplement, NoShuffle, NoZeroElim };

const char* name_of(Variant v) {
  switch (v) {
    case Variant::Full: return "full";
    case Variant::NoDelta: return "no_delta";
    case Variant::TwosComplement: return "twos_complement";
    case Variant::NoShuffle: return "no_shuffle";
    case Variant::NoZeroElim: return "no_zeroelim";
  }
  return "?";
}

std::size_t variant_size(const std::vector<u32>& words, Variant var) {
  constexpr std::size_t cw = pfpl::chunk_words<u32>();
  std::size_t total = 0;
  for (std::size_t beg = 0; beg < words.size(); beg += cw) {
    std::size_t k = std::min(cw, words.size() - beg);
    std::size_t padded = pfpl::padded_words<u32>(k);
    std::vector<u32> buf(padded, 0);
    std::memcpy(buf.data(), words.data() + beg, k * 4);
    switch (var) {
      case Variant::Full:
        bits::delta_negabinary_encode(buf.data(), padded);
        bits::bitshuffle(buf.data(), padded);
        break;
      case Variant::NoDelta:
        for (auto& w : buf) w = bits::to_negabinary(w);
        bits::bitshuffle(buf.data(), padded);
        break;
      case Variant::TwosComplement: {
        u32 prev = 0;
        for (auto& w : buf) {
          u32 cur = w;
          w = cur - prev;
          prev = cur;
        }
        bits::bitshuffle(buf.data(), padded);
        break;
      }
      case Variant::NoShuffle:
        bits::delta_negabinary_encode(buf.data(), padded);
        break;
      case Variant::NoZeroElim:
        total += k * 4;  // nothing downstream compresses
        continue;
    }
    std::vector<u8> out;
    bits::zerobyte_encode(reinterpret_cast<const u8*>(buf.data()), padded * 4, out);
    total += std::min(out.size(), k * 4) + 4;  // raw fallback + table entry
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  std::printf("# Section III-D stage ablation (ABS quantizer, eps = 1e-3)\n");
  std::printf("suite,variant,ratio\n");
  std::vector<double> per_variant[5];
  for (const auto& spec : data::paper_suites()) {
    if (spec.dtype != DType::F32) continue;
    data::Suite s = data::generate(spec, cfg.target_values, cfg.max_files);
    for (Variant var : {Variant::Full, Variant::NoDelta, Variant::TwosComplement,
                        Variant::NoShuffle, Variant::NoZeroElim}) {
      std::vector<double> ratios;
      for (const auto& f : s.files) {
        pfpl::AbsQuantizer<float> q(1e-3);
        std::vector<u32> words(f.f32.size());
        for (std::size_t i = 0; i < words.size(); ++i) words[i] = q.encode(f.f32[i]);
        std::size_t sz = variant_size(words, var);
        ratios.push_back(static_cast<double>(words.size() * 4) / static_cast<double>(sz));
      }
      double g = metrics::geomean(ratios);
      per_variant[static_cast<int>(var)].push_back(g);
      std::printf("%s,%s,%.3f\n", spec.name.c_str(), name_of(var), g);
    }
  }
  std::printf("\n# geometric means across suites (paper claim: every removal hurts)\n");
  std::printf("summary,variant,geo_mean_ratio\n");
  for (Variant var : {Variant::Full, Variant::NoDelta, Variant::TwosComplement,
                      Variant::NoShuffle, Variant::NoZeroElim})
    std::printf("summary,%s,%.3f\n", name_of(var),
                metrics::geomean(per_variant[static_cast<int>(var)]));
  return 0;
}
