// Thin dependency-free POSIX TCP helpers for the PFPN service: an RAII fd,
// listen/connect with timeouts, and poll-gated blocking send/recv. All
// failures throw NetError with errno text; SIGPIPE is never raised (sends
// use MSG_NOSIGNAL).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"
#include "net/frame.hpp"

namespace repro::net {

/// Move-only RAII owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Parse "host:port" (host may be empty => 127.0.0.1). Throws NetError on a
/// missing/invalid port.
void split_host_port(const std::string& spec, std::string& host, u16& port);

/// Create a listening TCP socket bound to host:port (port 0 = ephemeral,
/// SO_REUSEADDR set, non-blocking). `host` is an IPv4 literal or a name
/// resolvable by getaddrinfo.
Socket tcp_listen(const std::string& host, u16 port, int backlog = 128);

/// Local port of a bound socket (resolves port-0 binds).
u16 local_port(const Socket& s);

/// Blocking connect with timeout; the returned socket is in blocking mode.
Socket tcp_connect(const std::string& host, u16 port, int timeout_ms);

void set_nonblocking(int fd, bool on);

/// Send exactly `n` bytes; `timeout_ms` bounds each poll-for-writable wait
/// (<= 0 = wait forever). Throws NetError on failure or timeout.
void send_all(int fd, const void* data, std::size_t n, int timeout_ms);

/// Receive exactly `n` bytes. Throws NetError on failure, timeout, or EOF
/// before `n` bytes arrived.
void recv_all(int fd, void* data, std::size_t n, int timeout_ms);

}  // namespace repro::net
