// Negabinary (base -2) conversion — used by the first lossless stage.
//
// Paper, Section III-D / Figure 3: the delta residuals are stored in
// negabinary so that both small positive and small negative values have many
// leading zero bits, which the later bit-shuffle and zero-elimination stages
// exploit. (ZFP uses the same representation for its coefficients.)
//
// The closed forms operate on the two's-complement bit pattern:
//   to:   nb  = (x + M) ^ M
//   from: x   = (nb ^ M) - M
// with M = 0b...10101010 (every odd bit set). Both are exact bijections on
// the full 32/64-bit range with wraparound arithmetic.
#pragma once

#include "common/types.hpp"

namespace repro::bits {

template <typename U>
inline constexpr U negabinary_mask();

template <>
inline constexpr u32 negabinary_mask<u32>() { return 0xAAAAAAAAu; }

template <>
inline constexpr u64 negabinary_mask<u64>() { return 0xAAAAAAAAAAAAAAAAull; }

template <typename U>
inline constexpr U to_negabinary(U twos_complement) {
  constexpr U m = negabinary_mask<U>();
  return static_cast<U>((twos_complement + m) ^ m);
}

template <typename U>
inline constexpr U from_negabinary(U nb) {
  constexpr U m = negabinary_mask<U>();
  return static_cast<U>((nb ^ m) - m);
}

}  // namespace repro::bits
