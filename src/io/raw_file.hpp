// Raw binary file I/O for scalar fields (the SDRBench on-disk format: a bare
// array of little-endian f32/f64 values, dims supplied out of band).
//
// All functions throw CompressionError on failure; messages include the
// strerror(errno) text of the failing call.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::io {

/// Read a whole file into a byte buffer. Throws CompressionError on failure.
std::vector<u8> read_file(const std::string& path);

/// Size of a file in bytes.
u64 file_size(const std::string& path);

/// Read exactly `size` bytes starting at `offset` (random access — the PFPA
/// archive reader extracts single entries with this, never touching the rest
/// of the file). Throws if the range extends past end of file.
std::vector<u8> read_file_range(const std::string& path, u64 offset, std::size_t size);

/// Write a byte buffer to a file (truncating). Throws on failure.
void write_file(const std::string& path, const void* data, std::size_t size);

template <typename T>
std::vector<T> read_values(const std::string& path) {
  std::vector<u8> raw = read_file(path);
  if (raw.size() % sizeof(T) != 0)
    throw CompressionError(path + ": size is not a multiple of the scalar size");
  std::vector<T> out(raw.size() / sizeof(T));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

}  // namespace repro::io
