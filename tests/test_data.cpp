// Tests for the synthetic SDRBench-substitute generators: determinism,
// Table II fidelity (precision, counts, dimensionality), and the smoothness
// regimes the compression results depend on.
#include <gtest/gtest.h>

#include <cmath>

#include "data/rng.hpp"
#include "data/synthetic.hpp"

using namespace repro;
using namespace repro::data;

TEST(Rng, DeterministicAndWellDistributed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = r.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Suites, TableTwoInventory) {
  auto specs = paper_suites();
  ASSERT_EQ(specs.size(), 10u);  // 10 suites
  int f32 = 0, f64 = 0, files = 0;
  for (const auto& s : specs) {
    (s.dtype == DType::F32 ? f32 : f64)++;
    files += s.paper_files;
  }
  EXPECT_EQ(f32, 7);  // "7 single- and 3 double-precision suites"
  EXPECT_EQ(f64, 3);
  EXPECT_EQ(files, 89);  // "a total of 89 files"
}

TEST(Suites, GenerationIsDeterministic) {
  auto a = generate(paper_suites()[0], 1 << 12, 2);
  auto b = generate(paper_suites()[0], 1 << 12, 2);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) EXPECT_EQ(a.files[i].f32, b.files[i].f32);
}

TEST(Suites, DifferentFilesDiffer) {
  auto s = generate(paper_suites()[0], 1 << 12, 3);
  ASSERT_GE(s.files.size(), 2u);
  EXPECT_NE(s.files[0].f32, s.files[1].f32);
}

TEST(Suites, DtypeAndSizesMatchSpec) {
  for (const auto& spec : paper_suites()) {
    auto s = generate(spec, 1 << 12, 1);
    ASSERT_EQ(s.files.size(), 1u);
    const auto& f = s.files[0];
    EXPECT_EQ(f.dtype, spec.dtype) << spec.name;
    if (spec.dtype == DType::F32) {
      EXPECT_FALSE(f.f32.empty());
      EXPECT_TRUE(f.f64.empty());
      EXPECT_EQ(f.f32.size(), f.field().count());
    } else {
      EXPECT_FALSE(f.f64.empty());
      EXPECT_EQ(f.f64.size(), f.field().count());
    }
    // Approximate the requested size (loose: minimum-axis clamping can
    // inflate strongly anisotropic suites at tiny targets).
    EXPECT_GT(f.field().count(), (1u << 12) / 4) << spec.name;
    EXPECT_LT(f.field().count(), (1u << 12) * 8) << spec.name;
  }
}

TEST(Suites, NoNonFiniteValues) {
  // Paper Section III-D: the evaluation inputs "contain no denormals, NaNs,
  // or infinities"; the generators must honour that.
  for (auto& suite : generate_all(1 << 12, 2)) {
    for (auto& f : suite.files) {
      if (f.dtype == DType::F32) {
        for (float v : f.f32) ASSERT_TRUE(std::isfinite(v)) << suite.spec.name;
      } else {
        for (double v : f.f64) ASSERT_TRUE(std::isfinite(v)) << suite.spec.name;
      }
    }
  }
}

TEST(Suites, SmoothnessRegimesDiffer) {
  // Climate fields must be much smoother (smaller mean |delta| relative to
  // range) than particle velocity data — that ordering drives the per-suite
  // compression-ratio spread in the figures.
  auto smoothness = [](const std::vector<float>& v) {
    double range_lo = v[0], range_hi = v[0], dsum = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      dsum += std::abs(static_cast<double>(v[i]) - v[i - 1]);
      range_lo = std::min<double>(range_lo, v[i]);
      range_hi = std::max<double>(range_hi, v[i]);
    }
    double range = range_hi - range_lo;
    return range > 0 ? (dsum / (v.size() - 1)) / range : 0.0;
  };
  auto specs = paper_suites();
  auto cesm = generate(specs[0], 1 << 14, 1);     // climate
  auto hacc = generate(specs[3], 1 << 14, 2);     // cosmology particles
  double s_cesm = smoothness(cesm.files[0].f32);
  double s_hacc_vel = smoothness(hacc.files[1].f32);  // odd index = velocities
  EXPECT_LT(s_cesm, s_hacc_vel / 5) << s_cesm << " vs " << s_hacc_vel;
}

TEST(Suites, Is3dFlagsMatchKinds) {
  for (const auto& spec : paper_suites()) {
    auto s = generate(spec, 1 << 12, 1);
    bool is3d = s.files[0].field().is_3d();
    if (spec.kind == "hacc" || spec.kind == "nwchem" || spec.kind == "brown")
      EXPECT_FALSE(is3d) << spec.name;
    if (spec.kind == "cesm" || spec.kind == "nyx" || spec.kind == "miranda")
      EXPECT_TRUE(is3d) << spec.name;
  }
}

TEST(Suites, TotalBytesAccountsAllFiles) {
  auto s = generate(paper_suites()[0], 1 << 12, 3);
  std::size_t sum = 0;
  for (const auto& f : s.files) sum += f.byte_size();
  EXPECT_EQ(s.total_bytes(), sum);
}
