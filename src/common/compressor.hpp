// Unified compressor interface.
//
// PFPL and all seven baseline re-implementations sit behind this interface so
// the benchmark harness (bench/) can sweep compressors x error bounds x suites
// exactly the way the paper's evaluation does, and so Table III (the feature
// matrix) can be regenerated from the capability records.
#pragma once

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro {

/// Capability record for one compressor; regenerates Table III.
struct Features {
  bool abs = false;       ///< supports the ABS error-bound type
  bool rel = false;       ///< supports the REL error-bound type
  bool noa = false;       ///< supports the NOA error-bound type
  bool f32 = false;       ///< supports single-precision data
  bool f64 = false;       ///< supports double-precision data
  bool cpu = false;       ///< has a CPU implementation
  bool gpu = false;       ///< has a GPU implementation (simulated here)
  bool guarantee_abs = false;  ///< ABS bound is guaranteed (vs. best-effort)
  bool guarantee_rel = false;
  bool guarantee_noa = false;
  bool requires_3d = false;    ///< only operates on 3D fields (SPERR/FZ-GPU)

  bool supports(EbType eb) const {
    switch (eb) {
      case EbType::ABS: return abs;
      case EbType::REL: return rel;
      case EbType::NOA: return noa;
    }
    return false;
  }
  bool guarantees(EbType eb) const {
    switch (eb) {
      case EbType::ABS: return guarantee_abs;
      case EbType::REL: return guarantee_rel;
      case EbType::NOA: return guarantee_noa;
    }
    return false;
  }
};

/// Abstract error-bounded lossy compressor.
///
/// `compress` consumes a Field view and produces a self-describing byte
/// stream; `decompress` reconstructs the values (dtype and count are encoded
/// in the stream). Implementations throw CompressionError on unsupported
/// parameter combinations.
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;
  virtual Features features() const = 0;

  virtual Bytes compress(const Field& in, double eps, EbType eb) const = 0;

  /// Decompress into a freshly allocated buffer of `dtype` scalars.
  /// The shape is not part of the logical result; callers that need it kept
  /// it from the original field.
  virtual std::vector<u8> decompress(const Bytes& stream) const = 0;

  /// Convenience: decompress and reinterpret as T.
  template <typename T>
  std::vector<T> decompress_as(const Bytes& stream) const {
    std::vector<u8> raw = decompress(stream);
    if (raw.size() % sizeof(T) != 0)
      throw CompressionError(name() + ": decompressed size not a multiple of scalar size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
};

using CompressorPtr = std::shared_ptr<const Compressor>;

}  // namespace repro
