#include "obs/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace repro::obs {
namespace {

std::string read_file_text(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw CompressionError("baseline: cannot open '" + path + "'");
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw CompressionError("baseline: read error on '" + path + "'");
  return out;
}

double num_or(const JsonValue& obj, const std::string& key, double fallback) {
  if (!obj.has(key)) return fallback;
  const JsonValue& v = obj.at(key);
  return v.type == JsonValue::Type::Number ? v.num : fallback;
}

}  // namespace

std::string BaselineDoc::json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("tag", tag);
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta) w.kv(k, v);
  w.end_object();
  w.key("metrics").begin_object();
  for (const auto& [name, m] : metrics) {
    w.key(name).begin_object();
    w.kv("median", m.median);
    w.kv("mad", m.mad);
    w.kv("n", static_cast<unsigned long long>(m.n));
    w.kv("better", to_string(m.better));
    if (!m.unit.empty()) w.kv("unit", m.unit);
    if (m.advisory) w.kv("advisory", true);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

BaselineDoc BaselineDoc::from_json(const std::string& text) {
  JsonValue root;
  try {
    root = parse_json(text);
  } catch (const std::exception& e) {
    throw CompressionError(std::string("baseline: ") + e.what());
  }
  if (!root.is_object() || !root.has("schema") ||
      root.at("schema").str != std::string(kSchema))
    throw CompressionError("baseline: missing or unsupported schema marker (want '" +
                           std::string(kSchema) + "')");
  BaselineDoc doc;
  if (root.has("tag")) doc.tag = root.at("tag").str;
  if (root.has("meta") && root.at("meta").is_object())
    for (const auto& [k, v] : root.at("meta").obj)
      if (v.type == JsonValue::Type::String) doc.meta[k] = v.str;
  if (root.has("metrics") && root.at("metrics").is_object()) {
    for (const auto& [name, v] : root.at("metrics").obj) {
      if (!v.is_object()) continue;
      BaselineMetric m;
      m.median = num_or(v, "median", 0.0);
      m.mad = num_or(v, "mad", 0.0);
      m.n = static_cast<u64>(num_or(v, "n", 0.0));
      if (v.has("better") && v.at("better").str == "lower") m.better = Better::Lower;
      if (v.has("unit")) m.unit = v.at("unit").str;
      if (v.has("advisory")) m.advisory = v.at("advisory").b;
      doc.metrics[name] = m;
    }
  }
  return doc;
}

BaselineDoc BaselineStore::load(const std::string& path) {
  return BaselineDoc::from_json(read_file_text(path));
}

void BaselineStore::save(const std::string& path, const BaselineDoc& doc) {
  const std::string text = doc.json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw CompressionError("baseline: cannot write '" + path + "'");
  const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (wrote != text.size() || rc != 0)
    throw CompressionError("baseline: short write to '" + path + "'");
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    // Even count: midpoint of the two central samples. nth_element left the
    // lower half before `mid`, so its max is the lower central sample.
    const double lower = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

double mad_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double med = median_of(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - med));
  return median_of(std::move(dev));
}

BaselineMetric summarize_samples(const std::vector<double>& samples, Better better,
                                 std::string unit, bool advisory) {
  std::vector<double> finite;
  finite.reserve(samples.size());
  for (double s : samples)
    if (std::isfinite(s)) finite.push_back(s);
  BaselineMetric m;
  m.n = finite.size();
  m.median = median_of(finite);
  m.mad = mad_of(finite);
  m.better = better;
  m.unit = std::move(unit);
  m.advisory = advisory;
  return m;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Pass: return "pass";
    case Verdict::New: return "new";
    case Verdict::Missing: return "missing";
    case Verdict::Skip: return "skip";
    case Verdict::Warn: return "warn";
    case Verdict::Fail: return "fail";
  }
  return "?";
}

GateResult RegressionGate::compare(
    const BaselineDoc& baseline, const std::map<std::string, BaselineMetric>& current) const {
  GateResult res;
  auto tally = [&res](const GateRow& row) {
    switch (row.verdict) {
      case Verdict::Fail: ++res.fails; break;
      case Verdict::Warn: ++res.warns; break;
      case Verdict::Skip: ++res.skips; break;
      default: ++res.passes; break;
    }
    res.rows.push_back(row);
  };

  for (const auto& [name, base] : baseline.metrics) {
    GateRow row;
    row.metric = name;
    row.baseline = base.median;
    row.better = base.better;

    auto it = current.find(name);
    if (it == current.end()) {
      row.verdict = cfg_.fail_on_missing ? Verdict::Fail : Verdict::Missing;
      row.note = "metric absent from current run";
      tally(row);
      continue;
    }
    const BaselineMetric& cur = it->second;
    row.current = cur.median;

    // A side with no valid samples (all runs NaN, or nothing measured) is
    // not judgeable — neither pass nor fail.
    if (base.n == 0 || cur.n == 0 || !std::isfinite(base.median) ||
        !std::isfinite(cur.median)) {
      row.verdict = Verdict::Skip;
      row.note = base.n == 0 ? "baseline has no valid samples" : "no valid samples";
      tally(row);
      continue;
    }

    // Noise allowance: flat pct bound, widened by the larger of the two
    // sides' relative MADs. MAD = 0 (all-identical runs) degenerates to the
    // flat bound.
    const double abs_base = std::abs(base.median);
    if (abs_base == 0.0) {
      // No relative scale. Equal-to-baseline passes; for lower-is-better
      // metrics (violations, latencies) any growth from 0 is a hard fail —
      // this is what makes "zero bound violations" an enforced invariant.
      if (cur.median == 0.0) {
        row.verdict = Verdict::Pass;
      } else if (base.better == Better::Lower) {
        row.verdict = base.advisory ? Verdict::Warn : Verdict::Fail;
        row.note = "baseline is 0; any increase is a regression";
      } else {
        row.verdict = Verdict::Pass;
        row.note = "improved from zero baseline";
      }
      tally(row);
      continue;
    }

    const double rel_mad = std::max(base.mad, cur.mad) / abs_base;
    row.allowed_pct = std::max(cfg_.pct, cfg_.mad_k * rel_mad * 100.0);
    row.change_pct = (cur.median - base.median) / abs_base * 100.0;
    const double degradation_pct =
        base.better == Better::Higher ? -row.change_pct : row.change_pct;

    if (degradation_pct > row.allowed_pct) {
      row.verdict = base.advisory ? Verdict::Warn : Verdict::Fail;
      if (base.advisory) row.note = "advisory metric: capped at warn";
    } else if (degradation_pct > cfg_.warn_fraction * row.allowed_pct) {
      row.verdict = Verdict::Warn;
    } else {
      row.verdict = Verdict::Pass;
    }
    tally(row);
  }

  // Metrics the current run has but the baseline does not.
  for (const auto& [name, cur] : current) {
    if (baseline.metrics.count(name)) continue;
    GateRow row;
    row.metric = name;
    row.current = cur.median;
    row.better = cur.better;
    row.verdict = cfg_.fail_on_new ? Verdict::Fail : Verdict::New;
    row.note = "metric absent from baseline (refresh with --update-baseline)";
    tally(row);
  }
  return res;
}

std::string GateResult::table() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-52s %12s %12s %8s %8s  %s\n", "metric", "baseline",
                "current", "chg%", "allow%", "verdict");
  out += line;
  for (const GateRow& r : rows) {
    std::snprintf(line, sizeof(line), "%-52s %12.4g %12.4g %+8.1f %8.1f  %-7s %s\n",
                  r.metric.c_str(), r.baseline, r.current, r.change_pct, r.allowed_pct,
                  to_string(r.verdict), r.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "gate: %d pass, %d warn, %d fail, %d skip -> %s\n",
                passes, warns, fails, skips, failed() ? "FAIL" : "OK");
  out += line;
  return out;
}

std::string GateResult::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  for (const GateRow& r : rows) {
    w.begin_object();
    w.kv("metric", r.metric);
    w.kv("baseline", r.baseline);
    w.kv("current", r.current);
    w.kv("change_pct", r.change_pct);
    w.kv("allowed_pct", r.allowed_pct);
    w.kv("better", to_string(r.better));
    w.kv("verdict", to_string(r.verdict));
    if (!r.note.empty()) w.kv("note", r.note);
    w.end_object();
  }
  w.end_array();
  w.kv("passes", passes);
  w.kv("warns", warns);
  w.kv("fails", fails);
  w.kv("skips", skips);
  w.kv("failed", failed());
  w.end_object();
  return w.take();
}

}  // namespace repro::obs
