// Tests for raw-file I/O and the pfpl command-line tool (run end to end via
// std::system against the built binary).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "data/rng.hpp"
#include "io/raw_file.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

std::string tmp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("pfpl_test_" + name)).string();
}

std::string cli_path() {
  // Tests run from build/tests; the CLI lives in build/src/cli.
  for (const char* p : {"src/cli/pfpl", "../src/cli/pfpl", "build/src/cli/pfpl"}) {
    if (fs::exists(p)) return fs::absolute(p).string();
  }
  return "";
}

int run(const std::string& cmd) { return std::system((cmd + " >/dev/null 2>&1").c_str()); }

}  // namespace

TEST(RawFile, RoundTrip) {
  std::string path = tmp_path("io_roundtrip.bin");
  std::vector<float> v(1000);
  data::Rng rng(1);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  io::write_file(path, v.data(), v.size() * 4);
  auto back = io::read_values<float>(path);
  EXPECT_EQ(back, v);
  fs::remove(path);
}

TEST(RawFile, EmptyFile) {
  std::string path = tmp_path("io_empty.bin");
  io::write_file(path, nullptr, 0);
  EXPECT_TRUE(io::read_file(path).empty());
  fs::remove(path);
}

TEST(RawFile, MissingFileThrows) {
  EXPECT_THROW(io::read_file("/nonexistent/path/file.bin"), CompressionError);
}

TEST(RawFile, MisalignedSizeThrows) {
  std::string path = tmp_path("io_misaligned.bin");
  u8 bytes[5] = {1, 2, 3, 4, 5};
  io::write_file(path, bytes, 5);
  EXPECT_THROW(io::read_values<float>(path), CompressionError);
  fs::remove(path);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli = cli_path();
    if (cli.empty()) GTEST_SKIP() << "pfpl CLI binary not found";
    in = tmp_path("cli_in.raw");
    comp = tmp_path("cli_out.pfpl");
    out = tmp_path("cli_back.raw");
    data::Rng rng(7);
    values.resize(50000);
    double acc = 0;
    for (auto& x : values) {
      acc += 0.01 * rng.gaussian();
      x = static_cast<float>(acc);
    }
    io::write_file(in, values.data(), values.size() * 4);
  }
  void TearDown() override {
    fs::remove(in);
    fs::remove(comp);
    fs::remove(out);
  }
  std::string cli, in, comp, out;
  std::vector<float> values;
};

TEST_F(CliTest, CompressDecompressRoundTrip) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --dtype f32 --eb abs --eps 1e-3"), 0);
  ASSERT_TRUE(fs::exists(comp));
  EXPECT_LT(fs::file_size(comp), fs::file_size(in));
  ASSERT_EQ(run(cli + " d " + comp + " " + out), 0);
  auto back = io::read_values<float>(out);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - back[i]), 1e-3) << i;
}

TEST_F(CliTest, ExecutorsProduceIdenticalFiles) {
  std::string comp2 = tmp_path("cli_out2.pfpl");
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eps 1e-3 --exec serial"), 0);
  ASSERT_EQ(run(cli + " c " + in + " " + comp2 + " --eps 1e-3 --exec gpusim"), 0);
  EXPECT_EQ(io::read_file(comp), io::read_file(comp2));
  fs::remove(comp2);
}

TEST_F(CliTest, InfoCommand) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eb rel --eps 1e-2"), 0);
  EXPECT_EQ(run(cli + " info " + comp), 0);
}

TEST_F(CliTest, VerifyCommand) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eb abs --eps 1e-3"), 0);
  // PFPL's bound is guaranteed, so verify must pass (exit 0).
  EXPECT_EQ(run(cli + " verify " + in + " " + comp), 0);
  // Verifying against different data must fail (exit 3).
  std::string other = tmp_path("cli_other.raw");
  std::vector<float> wrong(values.size(), 1234.5f);
  io::write_file(other, wrong.data(), wrong.size() * 4);
  EXPECT_NE(run(cli + " verify " + other + " " + comp), 0);
  fs::remove(other);
}

TEST_F(CliTest, BadUsageFails) {
  EXPECT_NE(run(cli), 0);
  EXPECT_NE(run(cli + " c " + in), 0);
  EXPECT_NE(run(cli + " d /nonexistent.pfpl " + out), 0);
}
