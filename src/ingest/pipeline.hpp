// IngestPipeline — asynchronous staged ingest (DESIGN.md §ingest).
//
// Restructures file/stream ingest from a synchronous
// read → hash → encode → append loop (throughput = SUM of the stages) into
// four explicit stages connected by bounded byte-budgeted queues
// (throughput = the SLOWEST stage):
//
//   read    double-buffered chunked file reads (io::DoubleBufferedReader)
//   hash    content key + store dedup probe: a hit skips encoding entirely
//   encode  chunk fan-out across the svc ThreadPool, slot-ordered assembly —
//           the exact BatchCompressor discipline, so the output stream is
//           byte-identical to single-threaded pfpl::compress
//   append  batched ChunkStore::put_batch with one group fsync per batch
//
// Each stage runs on its own thread; queues are FIFO, so items complete in
// submission order — the progress callback fires in order, and run()'s
// result vector is index-aligned with its input.
//
// Error semantics: a per-item failure marks that item's Result and flows
// through (matching `pfpl pack`: pack the rest, report the failures).
// Options::fail_fast instead cancels the upstream stages on first error —
// queued items are dropped, blocked stages wake immediately, the failing
// item's Result is still delivered with its real error (directly from the
// failing stage when its output queue is already cancelled, through the
// append stage otherwise), and every undelivered item comes back marked
// `cancelled`.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "core/pfpl.hpp"
#include "ingest/stats.hpp"

namespace repro::store {
class ChunkStore;
}
namespace repro::svc {
class ThreadPool;
}

namespace repro::ingest {

/// One unit of ingest: a named payload, either on disk (path) or in memory
/// (raw). When `path` is non-empty the read stage loads it; otherwise `raw`
/// is used as-is (the in-memory form the tests and the server use).
struct Item {
  std::string name;
  std::string path;
  Bytes raw;
};

struct Result {
  std::string name;
  Bytes stream;         ///< empty when failed/cancelled
  pfpl::Header header;  ///< valid when !failed && !cancelled
  u64 raw_bytes = 0;
  bool failed = false;
  bool cancelled = false;  ///< dropped by first-error cancellation
  std::string error;
  bool reused = false;  ///< stream came from the store's dedup probe
  bool audited = false;
  u64 audit_violations = 0;
};

/// Dedup probe shared by the pipeline's hash stage and the network server's
/// COMPRESS path: compute the request's content key and look it up in the
/// store. On a hit, `stream_out` holds the stored (byte-identical) stream.
/// Records the ingest.probe_hits / ingest.probe_misses counters.
struct ProbeResult {
  common::Hash128 key;
  bool hit = false;
};
ProbeResult probe_compress(store::ChunkStore& cs, const void* raw, std::size_t n,
                           DType dtype, EbType eb, double eps, Bytes& stream_out);

class IngestPipeline {
 public:
  struct Options {
    DType dtype = DType::F32;
    pfpl::Params params;
    unsigned threads = 0;  ///< encode pool; 0 = hardware concurrency
    /// Per-queue bounds (three queues: read→hash, hash→encode,
    /// encode→append). Backpressure: a push blocks while the queue holds
    /// `queue_items` items or `queue_bytes` bytes.
    std::size_t queue_items = 4;
    std::size_t queue_bytes = 256u << 20;
    std::size_t read_buffer_bytes = 4u << 20;  ///< double-buffer size
    /// Append batching: group commits are cut at whichever bound trips
    /// first (or when the append queue momentarily runs dry).
    std::size_t batch_items = 16;
    std::size_t batch_bytes = 32u << 20;
    std::size_t max_inflight_bytes = 256u << 20;  ///< encode chunk admission
    bool audit = false;      ///< re-verify every stream against its bound
    bool fail_fast = false;  ///< first error cancels upstream stages
    /// Optional PFPS chunk store (borrowed; must outlive the pipeline).
    store::ChunkStore* store = nullptr;
    /// Injected per-stage cost in microseconds {read, hash, encode, append},
    /// applied once per item per stage. bench_ingest sets this identically
    /// for its serial and pipelined passes, so the measured speedup isolates
    /// the structural overlap (wall = max stage vs. sum of stages) from the
    /// machine's core count.
    u64 stage_cost_us[4] = {0, 0, 0, 0};
    /// In-order completion callback (fires on the append-stage thread).
    std::function<void(const Result&, std::size_t index, std::size_t total)> progress;
  };

  explicit IngestPipeline(const Options& opts);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Run every item through the pipeline; results come back in item order.
  /// Per-item errors land in Result::failed/error, never thrown.
  std::vector<Result> run(std::vector<Item> items);

  /// Metrics of the most recent run().
  const IngestStats& stats() const { return stats_; }

  unsigned threads() const;

 private:
  struct Work;
  struct RunState;

  Options opts_;
  std::unique_ptr<svc::ThreadPool> pool_;
  IngestStats stats_;
};

}  // namespace repro::ingest
