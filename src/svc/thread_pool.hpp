// Work-stealing thread pool for the batch-compression service.
//
// Design (DESIGN.md §svc):
//   * one task deque per worker. The owner pushes and pops at the back
//     (LIFO, cache-warm); idle workers steal from the front of a victim's
//     deque (FIFO, oldest task first) — the classic Blumofe/Leiserson
//     discipline, mirroring the paper's dynamic chunk assignment for load
//     balance (chunks differ in compressibility).
//   * external submissions are distributed round-robin and return a
//     std::future; submit() BLOCKS while `queue_capacity` tasks are already
//     pending — the bounded queue is the service's backpressure primitive, so
//     a fast producer cannot buffer unbounded work in memory.
//   * graceful shutdown: the destructor (or shutdown()) lets every already-
//     queued task run to completion, then joins the workers. Tasks submitted
//     after shutdown began are rejected with CompressionError.
//
// The pool is deliberately scheduler-only: task *results* are delivered via
// futures, so any execution order yields the same values — determinism of
// the compressed output is the responsibility of the caller's slot layout
// (see svc/batch.cpp), not of the scheduler.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace repro::svc {

class ThreadPool {
 public:
  /// Scheduler counters (monotonic over the pool's lifetime).
  struct Counters {
    u64 submitted = 0;      ///< tasks accepted by submit()
    u64 executed = 0;       ///< tasks run to completion
    u64 stolen = 0;         ///< tasks taken from another worker's deque
    u64 peak_pending = 0;   ///< high-water mark of the queue depth
  };

  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0, std::size_t queue_capacity = 4096);
  ~ThreadPool();  // graceful: drains queued tasks, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule `f` and return a future for its result. Blocks while the
  /// pending-task count is at capacity; throws CompressionError after
  /// shutdown() has begun.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Block until every queued and running task has finished.
  void wait_idle();

  /// Graceful drain WITHOUT destroying the pool: submissions made while a
  /// drain is in progress are rejected with CompressionError, every already-
  /// queued and running task finishes, then the pool accepts work again.
  /// This is the quiescence primitive the network server's graceful shutdown
  /// uses (finish in-flight requests, reject new ones, keep the workers),
  /// and what the batch path uses to guarantee the pool is idle before it
  /// snapshots scheduler counters.
  void drain();

  /// True while a drain() is in progress (submissions are being rejected).
  bool draining() const;

  /// Begin graceful shutdown (idempotent): queued tasks still run; new
  /// submissions are rejected. Returns after all workers have joined.
  void shutdown();

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t pending() const;
  Counters counters() const;

 private:
  /// A queued closure plus its enqueue timestamp (ns on the obs trace clock;
  /// 0 when observability is disabled). The timestamp is what turns into the
  /// svc.pool.task_wait_us histogram — time spent queued before a worker
  /// picked the task up, the service's scheduling-delay signal. `trace_ctx`
  /// carries the submitter's obs::TraceContext id across the queue so spans
  /// recorded while the task runs are tagged with the originating request.
  struct Task {
    std::function<void()> fn;
    u64 enqueue_ns = 0;
    u64 trace_ctx = 0;
  };

  struct Worker {
    mutable std::mutex m;
    std::deque<Task> q;
    std::thread thread;
  };

  void enqueue(std::function<void()> f);
  void worker_loop(unsigned self);
  bool try_pop_own(unsigned self, Task& out);
  bool try_steal(unsigned self, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t capacity_;

  // Global scheduler state: pending/running counts, shutdown flag, counters.
  mutable std::mutex state_m_;
  std::condition_variable work_cv_;   ///< workers sleep here
  std::condition_variable space_cv_;  ///< producers blocked on the bound
  std::condition_variable idle_cv_;   ///< wait_idle()/shutdown() sleep here
  std::size_t pending_ = 0;           ///< queued, not yet started
  std::size_t running_ = 0;           ///< currently executing
  bool stopping_ = false;
  bool draining_ = false;             ///< drain() in progress: reject submits
  u64 next_worker_ = 0;  ///< round-robin cursor for external submissions
  Counters counters_;
};

}  // namespace repro::svc
