// ClusterClient — route PFPN requests across a sharded pfpld cluster.
//
// One ClusterClient holds the shard map plus one lazily-opened net::Client
// per node, and routes every COMPRESS/DECOMPRESS by its 128-bit content key
// (the same store::compress_key / decompress_key the server's dedup store
// uses, so client and server always agree on ownership). Failure handling,
// per attempt:
//
//   * transport error / Draining  — fail over to the next replica in the
//     key's R-way list; when a whole sweep over the replicas fails, sleep a
//     jittered exponential backoff and sweep again (Options::sweeps bounds
//     the total), then give up with NetError.
//   * Status::WrongShard          — this client's map is stale. Refetch the
//     map from the refusing node (SHARDMAP exchange, offering ours so a
//     stale *server* can catch up too), re-route under the new epoch, and
//     retry; bounded per request so two confused peers cannot ping-pong.
//   * any other RemoteError       — the shard owner answered and said no;
//     propagated unchanged, never retried (same contract as net::Client).
//
// Per-node clients run with a single attempt (fail fast): the replica list
// IS the retry policy at this layer.
//
// Thread safety: public operations serialize on an internal mutex, which is
// what lets the optional background refresher (Options::refresh_interval_ms)
// share the connection cache with the caller's thread. Throughput-wise it is
// still one connection per node — run one ClusterClient per thread for
// parallel load, like net::Client.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "cluster/shard_map.hpp"
#include "common/types.hpp"
#include "net/backoff.hpp"
#include "net/client.hpp"

namespace repro::cluster {

class ClusterClient {
 public:
  struct Options {
    ShardMap map;  ///< initial shard map; must be non-empty
    int connect_timeout_ms = 5000;
    int request_timeout_ms = 120000;
    /// Attempts per node per sweep (net::Client::max_attempts). 1 = fail
    /// fast and let the replica list handle it — the right default.
    unsigned node_attempts = 1;
    /// Full passes over a key's replica list before giving up.
    unsigned sweeps = 3;
    /// Jittered exponential backoff between sweeps (net/backoff.hpp).
    int backoff_base_ms = 15;
    int backoff_max_ms = 1000;
    std::size_t max_response_payload = 1u << 30;
    /// > 0: a background thread calls refresh_map() every this many ms, so
    /// shard-map recovery does not depend on traffic hitting a WrongShard
    /// refusal (an idle client converges too). Refresh failures (no node
    /// answered) are swallowed — the next tick tries again. 0 = disabled.
    int refresh_interval_ms = 0;
  };

  /// Counters over this client's lifetime. Plain (not atomic): every update
  /// happens under the internal mutex; read them through stats(), which
  /// copies under the same lock.
  struct Stats {
    u64 requests = 0;       ///< successfully answered data requests
    u64 failovers = 0;      ///< replicas skipped on transport error/draining
    u64 retries = 0;        ///< extra sweeps after the first failed
    u64 map_refreshes = 0;  ///< newer-epoch maps adopted
    u64 wrong_shard = 0;    ///< WrongShard refusals observed
    u64 background_refreshes = 0;  ///< timer-driven refresh_map() sweeps run
    /// Successful data requests per node id (who actually answered).
    std::map<std::string, u64> node_requests;
  };

  /// Throws CompressionError when opts.map is empty.
  explicit ClusterClient(Options opts);
  /// Stops the background refresher (if any) before tearing down clients.
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Compress/decompress with key-based routing; signatures and payload
  /// semantics identical to net::Client.
  Bytes compress(const void* raw, std::size_t n, DType dtype, EbType eb, double eps);
  std::vector<u8> decompress(const Bytes& stream);

  /// HEALTH of one node by id (throws CompressionError on unknown id,
  /// NetError/RemoteError as net::Client would).
  std::string health(const std::string& node_id);

  /// Ask every node for its map, newest epoch wins; returns true when a
  /// newer map than ours was adopted. Throws NetError only when *no* node
  /// answered.
  bool refresh_map();

  /// Copies under the internal mutex (the background refresher may be
  /// swapping the map / bumping counters concurrently).
  ShardMap map() const;
  Stats stats() const;
  std::string stats_json() const;

 private:
  net::Client& client_for(u32 node_index);
  /// SHARDMAP exchange with one node; adopt + return true on newer epoch.
  bool refresh_from(net::Client& c);
  bool refresh_map_locked();
  void adopt(ShardMap fresh);
  Bytes routed(const common::Hash128& key,
               const std::function<Bytes(net::Client&)>& op);
  void refresher_loop();

  Options opts_;
  mutable std::mutex m_;  ///< serializes every public op + the refresher
  ShardMap map_;
  Stats stats_;
  std::unordered_map<std::string, net::Client> clients_;  ///< by node id
  net::BackoffJitter jitter_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread refresher_;  ///< joinable only when refresh_interval_ms > 0
};

}  // namespace repro::cluster
