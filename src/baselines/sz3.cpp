#include "baselines/sz3.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <exception>

#include "baselines/sz_common.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x33335A53u;  // "SZ33"
constexpr std::size_t kOmpBlock = 1 << 17;  // values per independent OMP block

// Multi-level interpolation traversal: index 0 first, then, for strides
// halving from the largest power of two below n, every odd multiple of the
// stride. Each index is visited exactly once and its interpolation
// neighbours (multiples of twice the stride) are already decoded.
template <typename F>
void interp_traverse(std::size_t n, F&& visit) {
  if (n == 0) return;
  visit(std::size_t{0}, std::size_t{0});
  if (n == 1) return;
  std::size_t top = 1;
  while (top * 2 < n) top *= 2;
  for (std::size_t s = top;; s /= 2) {
    for (std::size_t i = s; i < n; i += 2 * s) visit(i, s);
    if (s == 1) break;
  }
}

/// Cubic (4-point midpoint) interpolation where the stencil fits, linear at
/// the right boundary, previous-value at the far edge — the SZ3 predictor
/// hierarchy.
template <typename T>
T interp_predict(const std::vector<T>& recon, std::size_t n, std::size_t i, std::size_t s) {
  if (s == 0) return T(0);  // the anchor value
  bool has_right = i + s < n;
  if (has_right && i >= 3 * s && i + 3 * s < n) {
    double a = recon[i - 3 * s], b = recon[i - s], c = recon[i + s], d = recon[i + 3 * s];
    return static_cast<T>((-a + 9.0 * b + 9.0 * c - d) / 16.0);
  }
  if (has_right)
    return static_cast<T>((static_cast<double>(recon[i - s]) + recon[i + s]) * 0.5);
  return recon[i - s];
}

template <typename T>
SzPayload interp_encode(const T* d, std::size_t n, double abs_eps) {
  SzQuantizer<T> q(abs_eps);
  SzPayload p;
  p.codes.resize(n);
  std::vector<T> outliers;
  std::vector<T> recon(n, T(0));
  interp_traverse(n, [&](std::size_t i, std::size_t s) {
    T pred = interp_predict(recon, n, i, s);
    p.codes[i] = q.quantize(pred, d[i], recon[i], outliers);
  });
  for (T o : outliers) append_scalar(p.outlier_bytes, o);
  return p;
}

template <typename T>
void interp_decode(const SzPayload& p, std::size_t n, double abs_eps, T* out) {
  if (p.codes.size() != n) throw CompressionError("sz3: code count mismatch");
  SzQuantizer<T> q(abs_eps);
  std::vector<T> recon(n, T(0));
  std::span<const u8> ob(p.outlier_bytes);
  // Outliers are consumed in traversal order; pre-walk to map them.
  std::size_t oi = 0;
  interp_traverse(n, [&](std::size_t i, std::size_t s) {
    if (p.codes[i] == 0) {
      recon[i] = take_scalar<T>(ob, oi++);
    } else {
      recon[i] = q.reconstruct(interp_predict(recon, n, i, s), p.codes[i]);
    }
  });
  std::copy(recon.begin(), recon.end(), out);
}

// ---------------------------------------------------------------------------
// True multidimensional interpolation for 3D fields (SZ3's dimension-by-
// dimension scheme): each level halves the anchor grid along z, y, and x in
// turn; midpoints are predicted by cubic/linear interpolation of decoded
// anchors along the dimension being refined. This is what gives SZ3 its
// ratio advantage over 1D predictors on volumetric data (paper Section VI).
// ---------------------------------------------------------------------------

struct Grid3 {
  std::size_t nz, ny, nx;
  std::size_t idx(std::size_t z, std::size_t y, std::size_t x) const {
    return (z * ny + y) * nx + x;
  }
};

/// Visit every (index, stride, axis) in the multidimensional refinement
/// order. axis: 0 = anchor (stride meaningless), 1 = z, 2 = y, 3 = x.
template <typename F>
void interp3d_traverse(const Grid3& g, F&& visit) {
  std::size_t top = 1;
  while (top * 2 < std::max({g.nz, g.ny, g.nx})) top *= 2;
  std::size_t s0 = top * 2;  // anchor stride
  // Anchors: the coarsest grid, raster order.
  for (std::size_t z = 0; z < g.nz; z += s0)
    for (std::size_t y = 0; y < g.ny; y += s0)
      for (std::size_t x = 0; x < g.nx; x += s0) visit(z, y, x, s0, 0);
  for (std::size_t s = top; s >= 1; s /= 2) {
    // Refine along z: odd multiples of s on the (2s x 2s) y/x grid.
    for (std::size_t z = s; z < g.nz; z += 2 * s)
      for (std::size_t y = 0; y < g.ny; y += 2 * s)
        for (std::size_t x = 0; x < g.nx; x += 2 * s) visit(z, y, x, s, 1);
    // Refine along y: all z multiples of s, odd y multiples of s.
    for (std::size_t z = 0; z < g.nz; z += s)
      for (std::size_t y = s; y < g.ny; y += 2 * s)
        for (std::size_t x = 0; x < g.nx; x += 2 * s) visit(z, y, x, s, 2);
    // Refine along x: all z,y multiples of s, odd x multiples of s.
    for (std::size_t z = 0; z < g.nz; z += s)
      for (std::size_t y = 0; y < g.ny; y += s)
        for (std::size_t x = s; x < g.nx; x += 2 * s) visit(z, y, x, s, 3);
    if (s == 1) break;
  }
}

/// Cubic/linear/previous prediction along one axis of the decoded volume.
template <typename T>
T interp3d_predict(const std::vector<T>& recon, const Grid3& g, std::size_t z,
                   std::size_t y, std::size_t x, std::size_t s, int axis) {
  if (axis == 0) return T(0);
  std::size_t pos[3] = {z, y, x};
  std::size_t extent[3] = {g.nz, g.ny, g.nx};
  int a = axis - 1;
  auto at = [&](std::size_t c) {
    std::size_t p[3] = {pos[0], pos[1], pos[2]};
    p[a] = c;
    return recon[g.idx(p[0], p[1], p[2])];
  };
  std::size_t c = pos[a], n = extent[a];
  bool has_right = c + s < n;
  if (has_right && c >= 3 * s && c + 3 * s < n) {
    double v0 = at(c - 3 * s), v1 = at(c - s), v2 = at(c + s), v3 = at(c + 3 * s);
    return static_cast<T>((-v0 + 9.0 * v1 + 9.0 * v2 - v3) / 16.0);
  }
  if (has_right)
    return static_cast<T>((static_cast<double>(at(c - s)) + at(c + s)) * 0.5);
  return at(c - s);
}

template <typename T>
SzPayload interp3d_encode(const T* d, const Grid3& g, double abs_eps) {
  const std::size_t n = g.nz * g.ny * g.nx;
  SzQuantizer<T> q(abs_eps);
  SzPayload p;
  p.codes.resize(n);
  std::vector<T> outliers;
  std::vector<T> recon(n, T(0));
  interp3d_traverse(g, [&](std::size_t z, std::size_t y, std::size_t x, std::size_t s,
                           int axis) {
    std::size_t i = g.idx(z, y, x);
    T pred = interp3d_predict(recon, g, z, y, x, s, axis);
    p.codes[i] = q.quantize(pred, d[i], recon[i], outliers);
  });
  for (T o : outliers) append_scalar(p.outlier_bytes, o);
  return p;
}

template <typename T>
void interp3d_decode(const SzPayload& p, const Grid3& g, double abs_eps, T* out) {
  const std::size_t n = g.nz * g.ny * g.nx;
  if (p.codes.size() != n) throw CompressionError("sz3: code count mismatch");
  SzQuantizer<T> q(abs_eps);
  std::vector<T> recon(n, T(0));
  std::span<const u8> ob(p.outlier_bytes);
  std::size_t oi = 0;
  interp3d_traverse(g, [&](std::size_t z, std::size_t y, std::size_t x, std::size_t s,
                           int axis) {
    std::size_t i = g.idx(z, y, x);
    if (p.codes[i] == 0) {
      recon[i] = take_scalar<T>(ob, oi++);
    } else {
      recon[i] = q.reconstruct(interp3d_predict(recon, g, z, y, x, s, axis), p.codes[i]);
    }
  });
  std::copy(recon.begin(), recon.end(), out);
}

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb, bool parallel) {
  auto d = in.as<T>();
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  h.pad = parallel ? 1 : 0;
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  if (eb == EbType::REL) throw CompressionError("SZ3 does not support REL bounds");
  double abs_eps = eb == EbType::NOA ? noa_to_abs(d, eps) : eps;
  h.derived = abs_eps;

  Bytes out;
  write_bheader(h, out);
  if (!parallel) {
    // Serial SZ3 uses the full multidimensional interpolation on 3D fields —
    // the "well-compressing transformations that are not parallelism
    // friendly" the paper attributes to it; 1D data falls back to the
    // 1D multilevel predictor.
    SzPayload p = in.is_3d()
                      ? interp3d_encode(d.data(), Grid3{in.dims[0], in.dims[1], in.dims[2]},
                                        abs_eps)
                      : interp_encode(d.data(), d.size(), abs_eps);
    Bytes payload = sz_pack(p);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }
  // OMP variant: independent blocks, each with its own interpolation model
  // and entropy tables (this is what costs compression ratio).
  const std::size_t nblocks = (d.size() + kOmpBlock - 1) / kOmpBlock;
  std::vector<Bytes> payloads(nblocks);
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks); ++b) {
    std::size_t beg = static_cast<std::size_t>(b) * kOmpBlock;
    std::size_t len = std::min(kOmpBlock, d.size() - beg);
    payloads[b] = sz_pack(interp_encode(d.data() + beg, len, abs_eps));
  }
  append_scalar<u64>(out, nblocks);
  for (const Bytes& p : payloads) append_scalar<u64>(out, p.size());
  for (const Bytes& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  std::vector<u8> out(h.count * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());
  std::size_t pos = sizeof(BaselineHeader);
  if (h.pad == 0) {
    SzPayload p = sz_unpack(in.data() + pos, in.size() - pos);
    bool is3d = h.dims[0] > 1 && h.dims[1] > 1 && h.dims[2] > 1;
    if (is3d)
      interp3d_decode(p, Grid3{h.dims[0], h.dims[1], h.dims[2]}, h.derived, values);
    else
      interp_decode(p, h.count, h.derived, values);
    return out;
  }
  if (pos + 8 > in.size()) throw CompressionError("sz3: truncated block table");
  u64 nblocks;
  std::memcpy(&nblocks, in.data() + pos, 8);
  pos += 8;
  if (nblocks > (in.size() - pos) / 8) throw CompressionError("sz3: truncated block table");
  std::vector<u64> sizes(nblocks);
  std::memcpy(sizes.data(), in.data() + pos, nblocks * 8);
  pos += nblocks * 8;
  std::vector<u64> offsets(nblocks, 0);
  for (std::size_t b = 1; b < nblocks; ++b) offsets[b] = offsets[b - 1] + sizes[b - 1];
  // Exceptions must not escape the parallel region (that would terminate);
  // capture the first one and rethrow after the join.
  std::exception_ptr err;
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks); ++b) {
    try {
      std::size_t beg = static_cast<std::size_t>(b) * kOmpBlock;
      std::size_t len = std::min(kOmpBlock, static_cast<std::size_t>(h.count) - beg);
      std::size_t off = pos + offsets[b];
      if (off + sizes[b] > in.size()) throw CompressionError("sz3: truncated block");
      SzPayload p = sz_unpack(in.data() + off, sizes[b]);
      interp_decode(p, len, h.derived, values + beg);
    } catch (...) {
#pragma omp critical
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
  return out;
}

}  // namespace

Bytes Sz3Compressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb, parallel_);
  return compress_typed<double>(in, eps, eb, parallel_);
}

std::vector<u8> Sz3Compressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
