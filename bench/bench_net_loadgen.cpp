// bench_net_loadgen — PFPN/1 load generator and round-trip checker.
//
// Spins up an in-process net::Server (or targets an external one via
// --host H:P), then hammers it with N concurrent clients issuing a mixed
// COMPRESS/DECOMPRESS workload across every dtype x {ABS,REL,NOA}
// combination. Every response is checked for byte-identity against the
// local pfpl::compress / pfpl::decompress result, so the bench doubles as
// the acceptance test for "the wire adds nothing and loses nothing".
//
//   bench_net_loadgen                          # 8 clients x 16 requests
//   bench_net_loadgen --clients 16 --requests 64 --values 65536
//   bench_net_loadgen --host 127.0.0.1:19777   # external server
//   bench_net_loadgen --update-baseline --baseline BENCH_net_baseline.json
//
// Cluster mode (src/cluster): boot N in-process pfpld nodes sharing a
// consistent-hash shard map, drive them through ClusterClient with a unique
// payload per request (so keys spread over the ring), and check three
// things on top of byte-identity: per-node load balance within
// --balance-tol of 1/N, zero error-bound violations on every decompressed
// payload, and — with --kill-node — zero client-visible errors while one
// node is stopped mid-load (failovers must be > 0).
//
//   bench_net_loadgen --nodes 3
//   bench_net_loadgen --nodes 3 --kill-node
//   bench_net_loadgen --shard-map map.pfsm     # external, pre-booted cluster
//
// Harness flags (--json/--baseline/--update-baseline/--gate) apply; the
// baseline rows carry throughput, and the "_us" histogram quantiles
// (net.client.request_us, net.request_us, ...) ride along as advisory
// metrics via the harness's automatic histogram capture. Exact (unbucketed)
// client-observed p50/p95/p99 over every round trip are printed to stderr
// and recorded under adv/net_loadgen/client_p* — advisory too, so they warn
// on regression but never fail the gate.
//
// Exit codes: 0 ok, 1 protocol error or byte mismatch, 3 failed --gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/shard_map.hpp"
#include "core/pfpl.hpp"
#include "harness.hpp"
#include "metrics/error_stats.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "store/store.hpp"

using namespace repro;

namespace {

struct LoadCfg {
  unsigned clients = 8;
  unsigned requests = 16;       ///< per client
  std::size_t values = 16384;   ///< scalars per request
  std::string host;             ///< empty = in-process server
  double dup_ratio = 0.0;       ///< fraction of requests resending one payload
  unsigned cache_mb = 0;        ///< give the in-process server a chunk store
  // Cluster mode.
  unsigned nodes = 0;           ///< --nodes N: boot an in-process N-node cluster
  std::string shard_map;        ///< --shard-map FILE: external, pre-booted cluster
  bool kill_node = false;       ///< stop one node at half load; expect failover
  double balance_tol = 0.20;    ///< per-node share must be within ±tol of 1/N
};

LoadCfg parse_load_flags(int argc, char** argv) {
  LoadCfg cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--clients") cfg.clients = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--requests") cfg.requests = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--values") cfg.values = std::strtoull(next(), nullptr, 10);
    else if (a == "--host") cfg.host = next();
    else if (a == "--dup-ratio") cfg.dup_ratio = std::atof(next());
    else if (a == "--cache-mb") cfg.cache_mb = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--nodes") cfg.nodes = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--shard-map") cfg.shard_map = next();
    else if (a == "--kill-node") cfg.kill_node = true;
    else if (a == "--balance-tol") cfg.balance_tol = std::atof(next());
  }
  if (cfg.clients == 0) cfg.clients = 1;
  if (cfg.requests == 0) cfg.requests = 1;
  cfg.dup_ratio = std::min(1.0, std::max(0.0, cfg.dup_ratio));
  return cfg;
}

/// Deterministic per-client test signal (smooth + a little structure so the
/// compressor has something to chew on).
template <class T>
std::vector<T> make_signal(std::size_t n, unsigned seed) {
  std::vector<T> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) * 0.001 + seed * 0.37;
    v[i] = static_cast<T>(std::sin(x) * 100.0 + std::cos(3.0 * x) + seed);
  }
  return v;
}

struct WorkerResult {
  u64 requests = 0;
  u64 errors = 0;       ///< protocol errors + byte mismatches
  u64 raw_bytes = 0;    ///< uncompressed bytes moved through COMPRESS
  u64 comp_bytes = 0;   ///< compressed bytes produced
  double compress_s = 0;
  double decompress_s = 0;
  u64 reconnects = 0;
  /// Client-observed per-request round-trip latencies (µs, both ops) — merged
  /// across workers for the exact p50/p95/p99 summary and the advisory gate.
  std::vector<double> latencies_us;
  // Cluster mode only.
  u64 bound_violations = 0;  ///< decompressed values outside the error bound
  u64 failovers = 0;
  u64 retries = 0;
  u64 map_refreshes = 0;
  std::map<std::string, u64> node_requests;  ///< answered requests per node id
};

/// One client's workload: rotate through dtype x eb combinations, compress
/// remotely, check against the local stream, decompress remotely, check
/// against the local reconstruction.
WorkerResult run_client(const LoadCfg& cfg, const std::string& host, u16 port,
                        unsigned id) {
  using clock = std::chrono::steady_clock;
  WorkerResult r;
  net::Client::Options copts;
  copts.host = host;
  copts.port = port;
  net::Client client(copts);

  const std::vector<float> f32 = make_signal<float>(cfg.values, id);
  const std::vector<double> f64 = make_signal<double>(cfg.values, id);
  // The canonical duplicate request: every client resends this exact
  // (payload, dtype, eb, eps) combination for its --dup-ratio fraction, so
  // a server-side chunk store sees one content key across the whole fleet.
  const std::vector<float> dup_payload = make_signal<float>(cfg.values, /*seed=*/0);

  static constexpr EbType kEbs[] = {EbType::ABS, EbType::REL, EbType::NOA};
  static constexpr double kEps[] = {1e-2, 1e-3, 1e-4};

  for (unsigned q = 0; q < cfg.requests; ++q) {
    // Deterministic, interleaved dup/unique choice (multiplicative hash so
    // the duplicates spread across the run instead of front-loading).
    const bool dup = static_cast<double>((id * 7919u + q * 104729u) % 1000) <
                     cfg.dup_ratio * 1000.0;
    const DType dtype = dup ? DType::F32 : (((id + q) % 2) ? DType::F64 : DType::F32);
    const EbType eb = dup ? EbType::ABS : kEbs[(id + q) % 3];
    const double eps = dup ? 1e-3 : kEps[q % 3];
    const std::vector<float>& f32_src = dup ? dup_payload : f32;
    const void* raw = dtype == DType::F32 ? static_cast<const void*>(f32_src.data())
                                          : static_cast<const void*>(f64.data());
    const std::size_t raw_n = cfg.values * dtype_size(dtype);
    try {
      pfpl::Params params;
      params.eb = eb;
      params.eps = eps;
      const Field field = dtype == DType::F32 ? Field(f32_src.data(), f32_src.size())
                                              : Field(f64.data(), f64.size());
      const Bytes local = pfpl::compress(field, params);

      auto t0 = clock::now();
      const Bytes remote = client.compress(raw, raw_n, dtype, eb, eps);
      const double comp_s = std::chrono::duration<double>(clock::now() - t0).count();
      r.compress_s += comp_s;
      r.latencies_us.push_back(comp_s * 1e6);
      ++r.requests;
      r.raw_bytes += raw_n;
      r.comp_bytes += remote.size();
      if (remote != local) {
        std::fprintf(stderr,
                     "loadgen: client %u req %u: remote COMPRESS differs from "
                     "local pfpl::compress (%zu vs %zu bytes)\n",
                     id, q, remote.size(), local.size());
        ++r.errors;
        continue;
      }

      t0 = clock::now();
      const std::vector<u8> back = client.decompress(remote);
      const double decomp_s = std::chrono::duration<double>(clock::now() - t0).count();
      r.decompress_s += decomp_s;
      r.latencies_us.push_back(decomp_s * 1e6);
      ++r.requests;
      const std::vector<u8> local_back = pfpl::decompress(local);
      if (back != local_back) {
        std::fprintf(stderr,
                     "loadgen: client %u req %u: remote DECOMPRESS differs from "
                     "local pfpl::decompress\n",
                     id, q);
        ++r.errors;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: client %u req %u: %s\n", id, q, e.what());
      ++r.errors;
    }
  }
  r.reconnects = client.reconnects();
  return r;
}

/// One cluster worker: every request carries a *unique* deterministic
/// payload (seeded by client id and request index) so the content keys
/// spread across the ring and per-node balance is measurable. On top of the
/// byte-identity checks the single-node path does, every decompressed
/// payload is audited against the original values under its error bound.
WorkerResult run_cluster_worker(const LoadCfg& cfg, const cluster::ShardMap& map,
                                unsigned id, std::atomic<u64>& completed) {
  using clock = std::chrono::steady_clock;
  WorkerResult r;
  cluster::ClusterClient::Options co;
  co.map = map;
  cluster::ClusterClient client(std::move(co));

  static constexpr EbType kEbs[] = {EbType::ABS, EbType::REL, EbType::NOA};
  static constexpr double kEps[] = {1e-2, 1e-3, 1e-4};

  for (unsigned q = 0; q < cfg.requests; ++q) {
    const unsigned seed = id * 8191u + q * 131u + 1u;
    const DType dtype = ((id + q) % 2) ? DType::F64 : DType::F32;
    const EbType eb = kEbs[(id + q) % 3];
    const double eps = kEps[q % 3];
    const std::vector<float> f32 =
        dtype == DType::F32 ? make_signal<float>(cfg.values, seed) : std::vector<float>();
    const std::vector<double> f64 =
        dtype == DType::F64 ? make_signal<double>(cfg.values, seed) : std::vector<double>();
    const void* raw = dtype == DType::F32 ? static_cast<const void*>(f32.data())
                                          : static_cast<const void*>(f64.data());
    const std::size_t raw_n = cfg.values * dtype_size(dtype);
    try {
      pfpl::Params params;
      params.eb = eb;
      params.eps = eps;
      const Field field = dtype == DType::F32 ? Field(f32.data(), f32.size())
                                              : Field(f64.data(), f64.size());
      const Bytes local = pfpl::compress(field, params);

      auto t0 = clock::now();
      const Bytes remote = client.compress(raw, raw_n, dtype, eb, eps);
      const double comp_s = std::chrono::duration<double>(clock::now() - t0).count();
      r.compress_s += comp_s;
      r.latencies_us.push_back(comp_s * 1e6);
      ++r.requests;
      r.raw_bytes += raw_n;
      r.comp_bytes += remote.size();
      if (remote != local) {
        std::fprintf(stderr,
                     "loadgen: cluster client %u req %u: remote COMPRESS differs "
                     "from local pfpl::compress (%zu vs %zu bytes)\n",
                     id, q, remote.size(), local.size());
        ++r.errors;
        ++completed;
        continue;
      }

      t0 = clock::now();
      const std::vector<u8> back = client.decompress(remote);
      const double decomp_s = std::chrono::duration<double>(clock::now() - t0).count();
      r.decompress_s += decomp_s;
      r.latencies_us.push_back(decomp_s * 1e6);
      ++r.requests;
      const std::vector<u8> local_back = pfpl::decompress(local);
      if (back != local_back) {
        std::fprintf(stderr,
                     "loadgen: cluster client %u req %u: remote DECOMPRESS "
                     "differs from local pfpl::decompress\n",
                     id, q);
        ++r.errors;
      }
      // Guaranteed-error-bound audit: the paper's contract must survive the
      // wire and the routing layer, not just the local codec.
      if (dtype == DType::F32) {
        std::span<const float> o(f32.data(), f32.size());
        std::span<const float> b(reinterpret_cast<const float*>(back.data()),
                                 back.size() / sizeof(float));
        r.bound_violations += metrics::count_violations(o, b, eps, eb);
      } else {
        std::span<const double> o(f64.data(), f64.size());
        std::span<const double> b(reinterpret_cast<const double*>(back.data()),
                                  back.size() / sizeof(double));
        r.bound_violations += metrics::count_violations(o, b, eps, eb);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: cluster client %u req %u: %s\n", id, q,
                   e.what());
      ++r.errors;
    }
    ++completed;
  }
  const cluster::ClusterClient::Stats& cs = client.stats();
  r.failovers = cs.failovers;
  r.retries = cs.retries;
  r.map_refreshes = cs.map_refreshes;
  r.node_requests = cs.node_requests;
  return r;
}

/// Cluster-mode driver: boot the nodes (or adopt an external map), fan the
/// workers out over ClusterClient, then enforce balance / failover /
/// bound-audit acceptance on top of the usual throughput row.
int run_cluster_main(const LoadCfg& cfg) {
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<std::thread> server_threads;
  cluster::ShardMap map;
  if (!cfg.shard_map.empty()) {
    map = cluster::ShardMap::load_file(cfg.shard_map);
  } else {
    const unsigned n = std::max(cfg.nodes, 2u);
    std::vector<cluster::NodeInfo> nodes;
    for (unsigned i = 0; i < n; ++i) {
      net::Server::Options sopts;
      if (cfg.cache_mb) {
        store::ChunkStore::Options so;
        so.cache.byte_budget = static_cast<std::size_t>(cfg.cache_mb) << 20;
        sopts.store = std::make_shared<store::ChunkStore>(so);
      }
      servers.push_back(std::make_unique<net::Server>(sopts));
      nodes.push_back({"n" + std::to_string(i), "127.0.0.1", servers.back()->port()});
    }
    map = cluster::ShardMap("loadgen", std::move(nodes));
    for (std::size_t i = 0; i < servers.size(); ++i)
      servers[i]->set_cluster(map, "n" + std::to_string(i));
    for (auto& s : servers)
      server_threads.emplace_back([srv = s.get()] { srv->run(); });
  }
  std::fprintf(stderr,
               "loadgen: cluster '%s': %u clients x %u requests x %zu values over "
               "%zu node(s), replicas=%u%s%s\n",
               map.cluster_id().c_str(), cfg.clients, cfg.requests, cfg.values,
               map.size(), static_cast<unsigned>(map.replicas()),
               servers.empty() ? " (external)" : " (in-process)",
               cfg.kill_node ? ", killing one node at half load" : "");

  std::atomic<u64> completed{0};
  std::thread killer;
  bool killed = false;
  if (cfg.kill_node && !servers.empty()) {
    killed = true;
    killer = std::thread([&] {
      const u64 half =
          std::max<u64>(1, static_cast<u64>(cfg.clients) * cfg.requests / 2);
      while (completed.load() < half)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::fprintf(stderr, "loadgen: stopping node n0 mid-load\n");
      servers[0]->request_stop();
    });
  }

  std::vector<WorkerResult> results(cfg.clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (unsigned c = 0; c < cfg.clients; ++c)
      threads.emplace_back(
          [&, c] { results[c] = run_cluster_worker(cfg, map, c, completed); });
    for (auto& t : threads) t.join();
  }
  if (killer.joinable()) killer.join();
  for (auto& s : servers) s->request_stop();
  for (auto& t : server_threads) t.join();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.requests += r.requests;
    total.errors += r.errors;
    total.raw_bytes += r.raw_bytes;
    total.comp_bytes += r.comp_bytes;
    total.compress_s += r.compress_s;
    total.decompress_s += r.decompress_s;
    total.bound_violations += r.bound_violations;
    total.failovers += r.failovers;
    total.retries += r.retries;
    total.map_refreshes += r.map_refreshes;
    for (const auto& [id, n] : r.node_requests) total.node_requests[id] += n;
    total.latencies_us.insert(total.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
  }

  double p50 = 0, p95 = 0, p99 = 0;
  if (!total.latencies_us.empty()) {
    std::sort(total.latencies_us.begin(), total.latencies_us.end());
    auto at_q = [&](double q) {
      const std::size_t n = total.latencies_us.size();
      std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
      if (i >= n) i = n - 1;
      return total.latencies_us[i];
    };
    p50 = at_q(0.50);
    p95 = at_q(0.95);
    p99 = at_q(0.99);
    std::fprintf(stderr,
                 "loadgen: cluster latency p50=%.0fus p95=%.0fus p99=%.0fus "
                 "(%zu samples)\n",
                 p50, p95, p99, total.latencies_us.size());
    bench::record_advisory_us("net_loadgen/cluster_p50", {p50});
    bench::record_advisory_us("net_loadgen/cluster_p95", {p95});
    bench::record_advisory_us("net_loadgen/cluster_p99", {p99});
  }

  // Per-node balance. With a healthy cluster every key is answered by its
  // primary, so the shares measure the consistent-hash ring directly; after
  // a kill the survivors absorb the dead node's arc and the check is
  // meaningless, so it only runs on clean runs.
  u64 answered = 0;
  for (const auto& [id, n] : total.node_requests) answered += n;
  bool balance_ok = true;
  for (const auto& [id, n] : total.node_requests) {
    const double share =
        answered ? static_cast<double>(n) / static_cast<double>(answered) : 0.0;
    const double ideal = 1.0 / static_cast<double>(map.size());
    const double rel = share / ideal - 1.0;
    std::fprintf(stderr, "loadgen: node %-6s answered %6llu (share %.3f, %+.1f%% of 1/N)\n",
                 id.c_str(), static_cast<unsigned long long>(n), share, rel * 100.0);
    if (!killed && std::abs(rel) > cfg.balance_tol) balance_ok = false;
  }
  std::fprintf(stderr,
               "loadgen: cluster: %llu requests, %llu errors, %llu bound "
               "violations, %llu failovers, %llu retries, %llu map refreshes\n",
               static_cast<unsigned long long>(total.requests),
               static_cast<unsigned long long>(total.errors),
               static_cast<unsigned long long>(total.bound_violations),
               static_cast<unsigned long long>(total.failovers),
               static_cast<unsigned long long>(total.retries),
               static_cast<unsigned long long>(total.map_refreshes));

  const double mb = 1024.0 * 1024.0;
  bench::Row row;
  row.compressor = "PFPN_cluster";
  row.eb = 0;
  row.ratio = total.comp_bytes
                  ? static_cast<double>(total.raw_bytes) / total.comp_bytes
                  : 0.0;
  row.comp_mbps = total.compress_s > 0 ? total.raw_bytes / mb / total.compress_s : 0.0;
  row.decomp_mbps =
      total.decompress_s > 0 ? total.raw_bytes / mb / total.decompress_s : 0.0;
  row.violations = static_cast<std::size_t>(total.errors + total.bound_violations);
  row.has_psnr = false;
  bench::print_rows("net_cluster", {row});

  const int gate_rc = bench::finish();
  if (total.errors || total.bound_violations) return 1;
  if (!balance_ok) {
    std::fprintf(stderr,
                 "loadgen: FAIL: per-node share outside ±%.0f%% of 1/N\n",
                 cfg.balance_tol * 100.0);
    return 1;
  }
  if (killed && total.failovers == 0) {
    std::fprintf(stderr,
                 "loadgen: FAIL: --kill-node run finished without a single "
                 "failover (the kill never bit)\n");
    return 1;
  }
  return gate_rc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig base;
  bench::SweepConfig sweep = bench::parse_args(argc, argv, base);
  (void)sweep;
  const LoadCfg cfg = parse_load_flags(argc, argv);
  // The whole point is the latency histograms; record them even without
  // --json/--baseline.
  obs::set_enabled(true);

  if (cfg.nodes >= 2 || !cfg.shard_map.empty()) return run_cluster_main(cfg);

  std::unique_ptr<net::Server> server;
  std::thread server_thread;
  std::string host = "127.0.0.1";
  u16 port = 0;
  if (cfg.host.empty()) {
    net::Server::Options sopts;
    if (cfg.cache_mb) {
      store::ChunkStore::Options so;
      so.cache.byte_budget = static_cast<std::size_t>(cfg.cache_mb) << 20;
      sopts.store = std::make_shared<store::ChunkStore>(so);
    }
    server = std::make_unique<net::Server>(sopts);
    port = server->port();
    server_thread = std::thread([&] { server->run(); });
  } else {
    net::split_host_port(cfg.host, host, port);
  }
  std::string cache_part;
  if (cfg.cache_mb) cache_part = ", cache " + std::to_string(cfg.cache_mb) + "MB";
  std::fprintf(stderr,
               "loadgen: %u clients x %u requests x %zu values "
               "(dup-ratio %.2f%s) -> %s:%u%s\n",
               cfg.clients, cfg.requests, cfg.values, cfg.dup_ratio,
               cache_part.c_str(), host.c_str(), static_cast<unsigned>(port),
               server ? " (in-process server)" : "");

  std::vector<WorkerResult> results(cfg.clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (unsigned c = 0; c < cfg.clients; ++c)
      threads.emplace_back(
          [&, c] { results[c] = run_client(cfg, host, port, c); });
    for (auto& t : threads) t.join();
  }

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.requests += r.requests;
    total.errors += r.errors;
    total.raw_bytes += r.raw_bytes;
    total.comp_bytes += r.comp_bytes;
    total.compress_s += r.compress_s;
    total.decompress_s += r.decompress_s;
    total.reconnects += r.reconnects;
    total.latencies_us.insert(total.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
  }

  // Exact client-observed quantiles over every round trip (compress and
  // decompress alike) — unlike the hist/* capture these are not bucketed.
  double p50 = 0, p95 = 0, p99 = 0;
  if (!total.latencies_us.empty()) {
    std::sort(total.latencies_us.begin(), total.latencies_us.end());
    auto at_q = [&](double q) {
      const std::size_t n = total.latencies_us.size();
      std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
      if (i >= n) i = n - 1;
      return total.latencies_us[i];
    };
    p50 = at_q(0.50);
    p95 = at_q(0.95);
    p99 = at_q(0.99);
    std::fprintf(stderr, "loadgen: client latency p50=%.0fus p95=%.0fus p99=%.0fus "
                         "(%zu samples)\n",
                 p50, p95, p99, total.latencies_us.size());
    // Advisory: a latency regression warns in the gate table but never fails
    // the run (loopback latencies on shared CI machines are too noisy to
    // block on).
    bench::record_advisory_us("net_loadgen/client_p50", {p50});
    bench::record_advisory_us("net_loadgen/client_p95", {p95});
    bench::record_advisory_us("net_loadgen/client_p99", {p99});
  }

  if (server) {
    server->request_stop();
    server_thread.join();
    obs::RunReport::global().add_section("net", server->stats_json());
    const net::Server::Stats st = server->stats();
    std::fprintf(stderr,
                 "loadgen: server: %llu conns, %llu frames rx, %llu errors, "
                 "peak inflight %llu bytes\n",
                 static_cast<unsigned long long>(st.connections_accepted),
                 static_cast<unsigned long long>(st.frames_rx),
                 static_cast<unsigned long long>(st.errors),
                 static_cast<unsigned long long>(st.peak_inflight_bytes));
  }

  const double mb = 1024.0 * 1024.0;
  bench::Row row;
  row.compressor = server ? "PFPN_loopback" : "PFPN_remote";
  row.eb = 0;
  row.ratio = total.comp_bytes
                  ? static_cast<double>(total.raw_bytes) / total.comp_bytes
                  : 0.0;
  // Wire throughput: uncompressed MB moved per second of client-observed
  // request latency, summed across clients (concurrency makes this an
  // aggregate service rate, not a per-connection rate).
  row.comp_mbps = total.compress_s > 0 ? total.raw_bytes / mb / total.compress_s : 0.0;
  row.decomp_mbps =
      total.decompress_s > 0 ? total.raw_bytes / mb / total.decompress_s : 0.0;
  row.violations = static_cast<std::size_t>(total.errors);
  bench::print_rows("net_loadgen", {row});

  std::fprintf(stderr,
               "loadgen: %llu requests, %llu errors, %llu reconnects, "
               "compress %.1f MB/s, decompress %.1f MB/s\n",
               static_cast<unsigned long long>(total.requests),
               static_cast<unsigned long long>(total.errors),
               static_cast<unsigned long long>(total.reconnects), row.comp_mbps,
               row.decomp_mbps);

  const int gate_rc = bench::finish();
  if (total.errors) return 1;
  return gate_rc;
}
