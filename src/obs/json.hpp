// Minimal dependency-free JSON writer + parser for the observability layer.
//
// The writer streams into a std::string (no DOM) and is what every obs
// artifact — Chrome traces, metric dumps, RunReports, bench --json rows —
// is serialized with. The parser is a small recursive-descent reader used
// by tests to round-trip those artifacts (and by tooling that wants to
// re-ingest a RunReport); it accepts strict JSON only, with a depth limit
// so corrupt input cannot blow the stack.
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace repro::obs {

/// Escape a string for inclusion in a JSON document (quotes not included).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON writer: begin/end object/array scopes, key/value pairs.
/// Commas are inserted automatically; the caller is responsible for
/// balancing scopes (asserted in end()).
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const std::string& k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    just_keyed_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no Inf/NaN
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(unsigned long long v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(long long v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(unsigned long v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }

  /// Splice a pre-rendered JSON fragment (must itself be valid JSON).
  JsonWriter& raw(const std::string& fragment) {
    comma();
    out_ += fragment;
    return *this;
  }

  template <typename K, typename V>
  JsonWriter& kv(const K& k, const V& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
    return *this;
  }
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      need_comma_ = true;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

/// Parsed JSON value (null / bool / number / string / array / object).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool has(const std::string& k) const { return obj.count(k) != 0; }
  const JsonValue& at(const std::string& k) const { return obj.at(k); }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                             why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_lit(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    char c = peek();
    JsonValue v;
    if (c == '{') {
      v.type = JsonValue::Type::Object;
      expect('{');
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string k = string_body();
        skip_ws();
        expect(':');
        v.obj[k] = value(depth + 1);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::Array;
      expect('[');
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.arr.push_back(value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::String;
      v.str = string_body();
      return v;
    }
    if (consume_lit("true")) {
      v.type = JsonValue::Type::Bool;
      v.b = true;
      return v;
    }
    if (consume_lit("false")) {
      v.type = JsonValue::Type::Bool;
      v.b = false;
      return v;
    }
    if (consume_lit("null")) return v;
    // Number.
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    try {
      v.num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("invalid number");
    }
    v.type = JsonValue::Type::Number;
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Obs artifacts only ever emit \u00XX control escapes; encode the
          // code point as UTF-8 (BMP only, no surrogate-pair handling).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a strict-JSON document. Throws std::runtime_error on malformed input.
inline JsonValue parse_json(const std::string& s) { return detail::JsonParser(s).parse(); }

}  // namespace repro::obs
