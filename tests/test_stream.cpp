// Tests for the streaming PFPL interface: incremental encode must be
// byte-identical to the one-shot API, and the pull-based decoder must
// reproduce values exactly under arbitrary read granularities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/pfpl.hpp"
#include "core/stream.hpp"
#include "data/rng.hpp"

using namespace repro;
using pfpl::StreamDecoder;
using pfpl::StreamEncoder;

namespace {

std::vector<float> wave(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(std::sin(acc) + acc);
  }
  return v;
}

}  // namespace

TEST(Stream, EncoderMatchesOneShotByteForByte) {
  auto v = wave(50000, 1);
  StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::ABS});
  // Append in awkward pieces.
  std::size_t i = 0;
  data::Rng rng(2);
  while (i < v.size()) {
    std::size_t take = std::min<std::size_t>(1 + rng.next_u64() % 7000, v.size() - i);
    enc.append(std::span<const float>(v.data() + i, take));
    i += take;
  }
  Bytes streamed = enc.finish();
  Bytes oneshot = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  EXPECT_EQ(streamed, oneshot);
}

TEST(Stream, RelAndNoaMatchOneShot) {
  auto v = wave(20000, 3);
  {
    StreamEncoder enc(DType::F32, {.eps = 1e-2, .eb = EbType::REL});
    enc.append(std::span<const float>(v));
    EXPECT_EQ(enc.finish(), pfpl::compress(Field(v.data(), v.size()), {1e-2, EbType::REL}));
  }
  {
    // NOA: feed the true range so the derived bound matches the one-shot.
    float mn = v[0], mx = v[0];
    for (float x : v) {
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    StreamEncoder enc(DType::F32, {.eps = 1e-2,
                                   .eb = EbType::NOA,
                                   .noa_range = static_cast<double>(mx) - mn});
    enc.append(std::span<const float>(v));
    EXPECT_EQ(enc.finish(), pfpl::compress(Field(v.data(), v.size()), {1e-2, EbType::NOA}));
  }
}

TEST(Stream, NoaWithoutRangeThrows) {
  EXPECT_THROW(StreamEncoder(DType::F32, {.eps = 1e-2, .eb = EbType::NOA}),
               CompressionError);
}

TEST(Stream, NoaErrorPathFullCoverage) {
  // The missing-range rejection must hold for both dtypes ...
  EXPECT_THROW(StreamEncoder(DType::F64, {.eps = 1e-2, .eb = EbType::NOA}),
               CompressionError);
  // ... and supplying a range does not bypass bound validation: a negative
  // or non-finite derived bound is rejected by the quantizer.
  EXPECT_THROW(StreamEncoder(DType::F32,
                             {.eps = -1.0, .eb = EbType::NOA, .noa_range = 2.0}),
               CompressionError);
  EXPECT_THROW(
      StreamEncoder(DType::F64,
                    {.eps = std::numeric_limits<double>::infinity(),
                     .eb = EbType::NOA,
                     .noa_range = 2.0}),
      CompressionError);
  // A valid range constructs fine and zero values stay within bound.
  StreamEncoder enc(DType::F32, {.eps = 1e-2, .eb = EbType::NOA, .noa_range = 4.0});
  std::vector<float> zeros(10, 0.0f);
  enc.append(std::span<const float>(zeros));
  Bytes c = enc.finish();
  auto back = pfpl::decompress_as<float>(c);
  EXPECT_EQ(back, zeros);
}

TEST(Stream, DecoderReadsArbitraryGranularities) {
  auto v = wave(30000, 4);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  auto want = pfpl::decompress_as<float>(c);

  StreamDecoder dec(c);
  EXPECT_EQ(dec.header().value_count, v.size());
  std::vector<float> got;
  std::vector<float> buf(977);  // deliberately not chunk-aligned
  for (;;) {
    std::size_t n = dec.read(std::span<float>(buf));
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_EQ(got, want);
}

TEST(Stream, DecoderSingleValueReads) {
  auto v = wave(5000, 5);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  auto want = pfpl::decompress_as<float>(c);
  StreamDecoder dec(c);
  for (std::size_t i = 0; i < v.size(); ++i) {
    float x;
    ASSERT_EQ(dec.read(std::span<float>(&x, 1)), 1u);
    ASSERT_EQ(x, want[i]) << i;
  }
  float x;
  EXPECT_EQ(dec.read(std::span<float>(&x, 1)), 0u);
}

TEST(Stream, DoublePrecisionRoundtrip) {
  data::Rng rng(6);
  std::vector<double> v(10000);
  double acc = 0;
  for (auto& x : v) {
    acc += rng.gaussian();
    x = acc;
  }
  StreamEncoder enc(DType::F64, {.eps = 1e-4, .eb = EbType::ABS});
  enc.append(std::span<const double>(v.data(), 3000));
  enc.append(std::span<const double>(v.data() + 3000, 7000));
  Bytes c = enc.finish();
  EXPECT_EQ(c, pfpl::compress(Field(v.data(), v.size()), {1e-4, EbType::ABS}));

  StreamDecoder dec(c);
  std::vector<double> got(v.size());
  EXPECT_EQ(dec.read(std::span<double>(got)), v.size());
  EXPECT_EQ(got, pfpl::decompress_as<double>(c));
}

TEST(Stream, EmptyStream) {
  StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::ABS});
  Bytes c = enc.finish();
  StreamDecoder dec(c);
  EXPECT_EQ(dec.remaining(), 0u);
  float x;
  EXPECT_EQ(dec.read(std::span<float>(&x, 1)), 0u);
}

TEST(Stream, CompressedSizeGrowsMonotonically) {
  auto v = wave(40000, 7);
  StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::ABS});
  std::size_t last = 0;
  for (std::size_t i = 0; i < v.size(); i += 8192) {
    enc.append(std::span<const float>(v.data() + i, std::min<std::size_t>(8192, v.size() - i)));
    EXPECT_GE(enc.compressed_size_so_far(), last);
    last = enc.compressed_size_so_far();
  }
  EXPECT_GT(last, 0u);
}

TEST(Stream, CorruptStreamsThrowNotCrash) {
  auto v = wave(30000, 9);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  data::Rng rng(10);
  // Truncations.
  for (int t = 0; t < 100; ++t) {
    Bytes cut(c.begin(), c.begin() + rng.next_u64() % c.size());
    try {
      StreamDecoder dec(cut);
      std::vector<float> buf(1024);
      while (dec.read(std::span<float>(buf)) > 0) {
      }
    } catch (const CompressionError&) {
    }
  }
  // Bit flips.
  for (int t = 0; t < 200; ++t) {
    Bytes bad = c;
    bad[rng.next_u64() % bad.size()] ^= static_cast<u8>(1u << (rng.next_u64() % 8));
    try {
      StreamDecoder dec(bad);
      std::vector<float> buf(4096);
      while (dec.read(std::span<float>(buf)) > 0) {
      }
    } catch (const CompressionError&) {
    }
  }
}

TEST(Stream, DtypeMismatchThrows) {
  StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::ABS});
  std::vector<double> d(10, 1.0);
  EXPECT_THROW(enc.append(std::span<const double>(d)), CompressionError);
  std::vector<float> f(10, 1.0f);
  enc.append(std::span<const float>(f));
  Bytes c = enc.finish();
  StreamDecoder dec(c);
  std::vector<double> out(10);
  EXPECT_THROW(dec.read(std::span<double>(out)), CompressionError);
}

TEST(Stream, StreamedOutputDecodableByEveryExecutor) {
  auto v = wave(20000, 8);
  StreamEncoder enc(DType::F32, {.eps = 1e-3, .eb = EbType::REL});
  enc.append(std::span<const float>(v));
  Bytes c = enc.finish();
  auto serial = pfpl::decompress_as<float>(c, pfpl::Executor::Serial);
  auto omp = pfpl::decompress_as<float>(c, pfpl::Executor::OpenMP);
  auto gpu = pfpl::decompress_as<float>(c, pfpl::Executor::GpuSim);
  EXPECT_EQ(serial, omp);
  EXPECT_EQ(serial, gpu);
}
