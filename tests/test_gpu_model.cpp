// Tests for the Section V-F GPU performance model.
#include <gtest/gtest.h>

#include "sim/gpu_model.hpp"

using namespace repro::sim;

TEST(GpuModel, FiveGpusOfTheStudy) {
  auto gpus = paper_gpus();
  ASSERT_EQ(gpus.size(), 5u);
  // Table I cross-check: 4090 has 128 SMs @128 cores, A100 108 SMs @64.
  const GpuSpec* g4090 = nullptr;
  const GpuSpec* a100 = nullptr;
  for (const auto& g : gpus) {
    if (g.name == "RTX 4090") g4090 = &g;
    if (g.name == "A100 40GB") a100 = &g;
  }
  ASSERT_NE(g4090, nullptr);
  ASSERT_NE(a100, nullptr);
  EXPECT_EQ(g4090->sms, 128);
  EXPECT_EQ(g4090->cuda_cores_per_sm, 128);
  EXPECT_EQ(a100->sms, 108);
  EXPECT_EQ(a100->cuda_cores_per_sm, 64);
}

TEST(GpuModel, NeverMemoryBoundAtPfplIntensity) {
  // Paper: "PFPL is not main-memory bound ... only 15% of the available
  // DRAM throughput".
  for (const auto& p : predict()) EXPECT_FALSE(p.memory_bound) << p.spec.name;
}

TEST(GpuModel, MemoryBoundWhenIntensityIsHigh) {
  // Sanity: the roofline does bind for a hypothetical byte-hungry kernel.
  bool any_bound = false;
  for (const auto& p : predict(2048, /*bytes_per_op=*/64.0)) any_bound |= p.memory_bound;
  EXPECT_TRUE(any_bound);
}

TEST(GpuModel, QualitativeOrderingMatchesPaper) {
  auto preds = predict();
  auto rel = [&](const std::string& name) {
    for (const auto& p : preds)
      if (p.spec.name == name) return p.predicted_rel;
    ADD_FAILURE() << "missing " << name;
    return 0.0;
  };
  // 4090 fastest; beats the A100 despite lower memory bandwidth.
  EXPECT_DOUBLE_EQ(rel("RTX 4090"), 1.0);
  EXPECT_GT(rel("RTX 4090"), rel("A100 40GB"));
  // 2070 Super lands near the 3-year-older TITAN Xp, below the 3080 Ti.
  EXPECT_NEAR(rel("RTX 2070 Super"), rel("TITAN Xp"), 0.15);
  EXPECT_LT(rel("RTX 2070 Super"), rel("RTX 3080 Ti"));
  // Everything is normalized into (0, 1].
  for (const auto& p : preds) {
    EXPECT_GT(p.predicted_rel, 0.0);
    EXPECT_LE(p.predicted_rel, 1.0);
  }
}
