#include "lossless/huffman.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "lossless/bitio.hpp"

namespace repro::lossless {
namespace {

/// Compute Huffman code lengths from frequencies (two-queue method after
/// sorting); lengths are capped at kHuffMaxBits by halving frequencies and
/// rebuilding, which converges quickly and loses a negligible fraction of
/// optimality.
std::vector<u8> code_lengths(std::vector<u64> freq) {
  const std::size_t n = freq.size();
  std::vector<u8> len(n, 0);
  for (;;) {
    struct Node {
      u64 f;
      i32 left, right, sym;  // sym >= 0 for leaves
    };
    std::vector<Node> nodes;
    std::vector<i32> live;
    for (std::size_t s = 0; s < n; ++s)
      if (freq[s] > 0) {
        nodes.push_back({freq[s], -1, -1, static_cast<i32>(s)});
        live.push_back(static_cast<i32>(nodes.size() - 1));
      }
    std::fill(len.begin(), len.end(), u8{0});
    if (live.empty()) return len;
    if (live.size() == 1) {
      len[static_cast<std::size_t>(nodes[live[0]].sym)] = 1;
      return len;
    }
    auto cmp = [&](i32 a, i32 b) { return nodes[a].f > nodes[b].f; };
    std::priority_queue<i32, std::vector<i32>, decltype(cmp)> pq(cmp, live);
    while (pq.size() > 1) {
      i32 a = pq.top();
      pq.pop();
      i32 b = pq.top();
      pq.pop();
      nodes.push_back({nodes[a].f + nodes[b].f, a, b, -1});
      pq.push(static_cast<i32>(nodes.size() - 1));
    }
    // Depth-first depth assignment.
    struct Item {
      i32 node;
      u8 depth;
    };
    std::vector<Item> stack{{pq.top(), 0}};
    u8 max_len = 0;
    while (!stack.empty()) {
      Item it = stack.back();
      stack.pop_back();
      const Node& nd = nodes[static_cast<std::size_t>(it.node)];
      if (nd.sym >= 0) {
        len[static_cast<std::size_t>(nd.sym)] = it.depth;
        max_len = std::max(max_len, it.depth);
      } else {
        stack.push_back({nd.left, static_cast<u8>(it.depth + 1)});
        stack.push_back({nd.right, static_cast<u8>(it.depth + 1)});
      }
    }
    if (max_len <= kHuffMaxBits) return len;
    for (u64& f : freq)
      if (f > 1) f = (f + 1) / 2;
  }
}

struct CanonicalCode {
  std::vector<u32> code;  // per symbol
  std::vector<u8> len;    // per symbol
};

/// Assign canonical codes in (length, symbol) order.
CanonicalCode canonicalize(const std::vector<u8>& len) {
  CanonicalCode cc;
  cc.len = len;
  cc.code.assign(len.size(), 0);
  std::vector<u32> count(kHuffMaxBits + 1, 0);
  for (u8 l : len)
    if (l) ++count[l];
  std::vector<u32> next(kHuffMaxBits + 2, 0);
  u32 code = 0;
  for (unsigned l = 1; l <= kHuffMaxBits; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t s = 0; s < len.size(); ++s)
    if (len[s]) cc.code[s] = next[len[s]]++;
  return cc;
}

}  // namespace

Bytes huffman_encode(std::span<const u16> syms) {
  u32 max_sym = 0;
  for (u16 s : syms) max_sym = std::max<u32>(max_sym, s);
  std::vector<u64> freq(syms.empty() ? 1 : max_sym + 1, 0);
  for (u16 s : syms) ++freq[s];
  std::vector<u8> len = code_lengths(freq);
  CanonicalCode cc = canonicalize(len);

  Bytes out;
  u64 count = syms.size();
  u32 alphabet = static_cast<u32>(freq.size());
  out.insert(out.end(), reinterpret_cast<u8*>(&count), reinterpret_cast<u8*>(&count) + 8);
  out.insert(out.end(), reinterpret_cast<u8*>(&alphabet),
             reinterpret_cast<u8*>(&alphabet) + 4);
  // Table: (symbol u16, len u8) for present symbols.
  u32 present = 0;
  for (u8 l : len) present += l > 0;
  out.insert(out.end(), reinterpret_cast<u8*>(&present), reinterpret_cast<u8*>(&present) + 4);
  for (u32 s = 0; s < alphabet; ++s)
    if (len[s]) {
      u16 s16 = static_cast<u16>(s);
      out.push_back(static_cast<u8>(s16 & 0xFF));
      out.push_back(static_cast<u8>(s16 >> 8));
      out.push_back(len[s]);
    }
  BitWriter bw(out);
  for (u16 s : syms) {
    // Canonical codes are emitted MSB-first so decode can walk lengths.
    u32 c = cc.code[s];
    for (int b = cc.len[s] - 1; b >= 0; --b) bw.put_bit((c >> b) & 1u);
  }
  bw.flush();
  return out;
}

std::vector<u16> huffman_decode(const u8* data, std::size_t size, std::size_t* consumed) {
  if (size < 16) throw CompressionError("huffman: truncated header");
  u64 count;
  u32 alphabet, present;
  std::memcpy(&count, data, 8);
  std::memcpy(&alphabet, data + 8, 4);
  std::memcpy(&present, data + 12, 4);
  std::size_t pos = 16;
  if (size < pos + static_cast<std::size_t>(present) * 3)
    throw CompressionError("huffman: truncated table");
  std::vector<u8> len(alphabet, 0);
  for (u32 i = 0; i < present; ++i) {
    u16 sym = static_cast<u16>(data[pos] | (data[pos + 1] << 8));
    u8 l = data[pos + 2];
    pos += 3;
    if (sym >= alphabet || l > kHuffMaxBits) throw CompressionError("huffman: corrupt table");
    len[sym] = l;
  }
  CanonicalCode cc = canonicalize(len);
  // Build (first_code, first_index) per length plus a (length,symbol)-sorted
  // symbol list for canonical decoding.
  std::vector<u32> first_code(kHuffMaxBits + 2, 0), first_idx(kHuffMaxBits + 2, 0);
  std::vector<u16> sorted;
  for (unsigned l = 1; l <= kHuffMaxBits; ++l)
    for (u32 s = 0; s < alphabet; ++s)
      if (len[s] == l) sorted.push_back(static_cast<u16>(s));
  {
    u32 code = 0, idx = 0;
    std::vector<u32> cnt(kHuffMaxBits + 1, 0);
    for (u8 l : len)
      if (l) ++cnt[l];
    for (unsigned l = 1; l <= kHuffMaxBits; ++l) {
      code = (code + (l > 1 ? cnt[l - 1] : 0)) << 1;
      first_code[l] = code;
      first_idx[l] = idx;
      idx += cnt[l];
    }
  }
  // Every symbol costs at least one bit; a larger count is corruption and
  // must not drive the allocation below.
  if (count > (size - pos) * 8 + 7) throw CompressionError("huffman: implausible count");
  BitReader br(data + pos, size - pos);
  std::vector<u16> out;
  out.reserve(count);
  std::vector<u32> cnt(kHuffMaxBits + 1, 0);
  for (u8 l : len)
    if (l) ++cnt[l];
  for (u64 i = 0; i < count; ++i) {
    u32 code = 0;
    unsigned l = 0;
    for (;;) {
      code = (code << 1) | static_cast<u32>(br.get_bit());
      ++l;
      if (l > kHuffMaxBits) throw CompressionError("huffman: invalid code");
      if (cnt[l] && code - first_code[l] < cnt[l]) {
        out.push_back(sorted[first_idx[l] + (code - first_code[l])]);
        break;
      }
    }
    if (br.truncated()) throw CompressionError("huffman: truncated stream");
  }
  if (consumed) *consumed = pos + br.bytes_consumed();
  return out;
}

}  // namespace repro::lossless
