// End-to-end PFPL tests: full compress/decompress round-trips on synthetic
// SDRBench-like data, bound verification via the external metrics judge, and
// container-format behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/pfpl.hpp"
#include "data/rng.hpp"
#include "fpmath/traits.hpp"
#include "data/synthetic.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;
using pfpl::Executor;
using pfpl::Params;

namespace {

template <typename T>
void roundtrip_and_verify(const std::vector<T>& data, double eps, EbType eb,
                          Executor exec = Executor::Serial) {
  Bytes c = pfpl::compress(Field(data.data(), data.size()), Params{eps, eb, exec});
  std::vector<T> back = pfpl::decompress_as<T>(c, exec);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(metrics::count_violations(std::span<const T>(data), std::span<const T>(back),
                                      eps, eb),
            0u);
}

std::vector<float> smooth_signal(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 0.01 * rng.gaussian();
    v[i] = static_cast<float>(std::sin(i * 0.001) + acc);
  }
  return v;
}

}  // namespace

TEST(PfplRoundtrip, EmptyInput) {
  std::vector<float> v;
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, EbType::ABS});
  EXPECT_TRUE(pfpl::decompress_as<float>(c).empty());
}

TEST(PfplRoundtrip, SingleValue) {
  std::vector<float> v{3.14159f};
  roundtrip_and_verify(v, 1e-3, EbType::ABS);
  roundtrip_and_verify(v, 1e-3, EbType::REL);
  roundtrip_and_verify(v, 1e-3, EbType::NOA);
}

TEST(PfplRoundtrip, SubChunkSizes) {
  for (std::size_t n : {1u, 31u, 32u, 33u, 100u, 4095u, 4096u, 4097u, 10000u}) {
    auto v = smooth_signal(n, n);
    roundtrip_and_verify(v, 1e-3, EbType::ABS);
  }
}

TEST(PfplRoundtrip, MultiChunkAllBoundTypes) {
  auto v = smooth_signal(100000, 5);
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA})
    for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) roundtrip_and_verify(v, eps, eb);
}

TEST(PfplRoundtrip, DoublePrecision) {
  data::Rng rng(6);
  std::vector<double> v(50000);
  double acc = 0;
  for (auto& x : v) {
    acc += rng.gaussian();
    x = acc;
  }
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA})
    roundtrip_and_verify(v, 1e-3, eb);
}

TEST(PfplRoundtrip, ConstantData) {
  std::vector<float> v(20000, 42.0f);
  roundtrip_and_verify(v, 1e-3, EbType::ABS);
  roundtrip_and_verify(v, 1e-3, EbType::REL);
  // NOA with zero range: bound is 0, must reconstruct exactly.
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, EbType::NOA});
  auto back = pfpl::decompress_as<float>(c);
  EXPECT_EQ(back, v);
}

TEST(PfplRoundtrip, SpecialValuesInline) {
  auto v = smooth_signal(10000, 7);
  v[5] = std::numeric_limits<float>::quiet_NaN();
  v[100] = std::numeric_limits<float>::infinity();
  v[4096] = -std::numeric_limits<float>::infinity();
  v[9999] = std::numeric_limits<float>::denorm_min();
  for (EbType eb : {EbType::ABS, EbType::REL}) {
    Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, eb});
    auto back = pfpl::decompress_as<float>(c);
    EXPECT_TRUE(std::isnan(back[5]));
    EXPECT_EQ(back[100], v[100]);
    EXPECT_EQ(back[4096], v[4096]);
    EXPECT_EQ(metrics::count_violations(std::span<const float>(v),
                                        std::span<const float>(back), 1e-3, eb),
              0u);
  }
}

TEST(PfplRoundtrip, IncompressibleDataUsesRawChunks) {
  // Random bit patterns (filtered to finite values) barely quantize; the
  // stream must stay close to the input size thanks to the raw-chunk cap.
  data::Rng rng(8);
  std::vector<float> v(65536);
  for (auto& x : v) {
    u32 b = static_cast<u32>(rng.next_u64());
    float f = fpmath::from_bits<float>(b);
    x = std::isfinite(f) ? f : 1.0f;
  }
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-10, EbType::REL});
  EXPECT_LT(c.size(), v.size() * sizeof(float) * 11 / 10 + 1024);
  auto back = pfpl::decompress_as<float>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-10, EbType::REL),
            0u);
}

TEST(PfplRoundtrip, SmoothDataCompressesWell) {
  auto v = smooth_signal(1 << 20, 9);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-2, EbType::ABS});
  double ratio = static_cast<double>(v.size() * 4) / static_cast<double>(c.size());
  EXPECT_GT(ratio, 4.0);  // smooth data must actually compress
}

TEST(PfplRoundtrip, HeaderRoundtrips) {
  auto v = smooth_signal(1000, 10);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, EbType::NOA});
  pfpl::Header h = pfpl::peek_header(c);
  EXPECT_EQ(h.dtype, DType::F32);
  EXPECT_EQ(h.eb_type, EbType::NOA);
  EXPECT_EQ(h.value_count, v.size());
  EXPECT_DOUBLE_EQ(h.eps, 1e-3);
  EXPECT_GT(h.recon_param, 0.0);  // eps * range
}

TEST(PfplRoundtrip, CorruptStreamsThrow) {
  auto v = smooth_signal(10000, 11);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, EbType::ABS});
  Bytes bad = c;
  bad[0] ^= 0xFF;  // magic
  EXPECT_THROW(pfpl::decompress(bad), CompressionError);
  Bytes trunc(c.begin(), c.begin() + c.size() / 2);
  EXPECT_THROW(pfpl::decompress(trunc), CompressionError);
  Bytes tiny(c.begin(), c.begin() + 10);
  EXPECT_THROW(pfpl::decompress(tiny), CompressionError);
}

TEST(PfplRoundtrip, AllSyntheticSuitesAllBounds) {
  // The headline guarantee on every suite regime (small files for speed).
  auto suites = data::generate_all(1 << 14, 1);
  for (const auto& s : suites) {
    for (const auto& f : s.files) {
      for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
        for (double eps : {1e-2, 1e-4}) {
          Bytes c = pfpl::compress(f.field(), Params{eps, eb});
          if (f.dtype == DType::F32) {
            auto back = pfpl::decompress_as<float>(c);
            EXPECT_EQ(metrics::count_violations(std::span<const float>(f.f32),
                                                std::span<const float>(back), eps, eb),
                      0u)
                << s.spec.name << "/" << f.name << " " << to_string(eb) << " " << eps;
          } else {
            auto back = pfpl::decompress_as<double>(c);
            EXPECT_EQ(metrics::count_violations(std::span<const double>(f.f64),
                                                std::span<const double>(back), eps, eb),
                      0u)
                << s.spec.name << "/" << f.name << " " << to_string(eb) << " " << eps;
          }
        }
      }
    }
  }
}

// Parameterized executor sweep: every executor must satisfy the bound and
// interoperate with every other executor's streams.
class ExecutorSweep : public ::testing::TestWithParam<Executor> {};

TEST_P(ExecutorSweep, RoundtripAllBounds) {
  auto v = smooth_signal(50000, 12);
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA})
    roundtrip_and_verify(v, 1e-3, eb, GetParam());
}

TEST_P(ExecutorSweep, CrossExecutorDecode) {
  auto v = smooth_signal(50000, 13);
  Bytes c = pfpl::compress(Field(v.data(), v.size()),
                           Params{1e-3, EbType::ABS, GetParam()});
  auto serial = pfpl::decompress_as<float>(c, Executor::Serial);
  auto omp = pfpl::decompress_as<float>(c, Executor::OpenMP);
  auto gpu = pfpl::decompress_as<float>(c, Executor::GpuSim);
  EXPECT_EQ(serial, omp);
  EXPECT_EQ(serial, gpu);
}

INSTANTIATE_TEST_SUITE_P(Executors, ExecutorSweep,
                         ::testing::Values(Executor::Serial, Executor::OpenMP,
                                           Executor::GpuSim));
