// FlightRecorder — a black-box ring of periodic metric snapshots.
//
// A lock-light sampler thread wakes every `interval_ms`, snapshots the full
// MetricsRegistry (plus an optional caller-provided "extra" fragment — the
// server contributes its always-live stats + slow-request ring) into a
// fixed-depth in-memory ring, refreshes the pre-rendered crash-report body
// (obs/crash.hpp), and runs the watchdog stall check (obs/watchdog.hpp).
// The ring is exposed live as `/history` on the metrics HTTP listener and
// via the PFPN METRICS "history" selector, and post-mortem inside crash
// reports — so a pfpld that dies under load leaves its last N seconds of
// metric movement behind instead of nothing.
//
// Zero-footprint discipline: nothing here runs unless configure()+start()
// are called (the `serve --flight-ms/--stall-ms/--crash-dir` flags). An
// unstarted recorder is an untouched object; history_json() on it returns a
// valid document with an empty snapshot list.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/types.hpp"

namespace repro::obs {

class FlightRecorder {
 public:
  struct Options {
    int interval_ms = 1000;  ///< snapshot cadence
    int depth = 32;          ///< ring capacity (oldest snapshot evicted)
    u64 stall_ms = 0;        ///< watchdog threshold; 0 = no stall checks
    std::string crash_dir;   ///< non-empty: refresh crash body + stall dumps
    /// Pre-rendered JSON object attached to every snapshot under "extra"
    /// (and to the crash body). Called on the sampler thread.
    std::function<std::string()> extra;
  };

  static FlightRecorder& global();

  /// Apply options. Must be stopped; arms the watchdog when stall_ms > 0.
  void configure(Options o);
  const Options& options() const { return opts_; }

  /// Start the sampler thread (no-op when already running).
  void start();
  /// Stop and join the sampler thread (no-op when not running).
  void stop();
  bool running() const;

  /// Take one snapshot synchronously: sample the registry, refresh the
  /// crash body, run the watchdog check. The sampler thread calls this on
  /// cadence; tests and on-demand dumps call it directly.
  void sample_now();

  /// The ring as one JSON document ({"schema":"pfpl-flight/1", ...}).
  std::string history_json() const;
  std::size_t snapshot_count() const;

  /// Test hook: drop all snapshots (does not touch options or the thread).
  void clear();

 private:
  FlightRecorder() = default;

  struct Snapshot {
    u64 seq = 0;
    u64 wall_ms = 0;  ///< system_clock ms since epoch (operator-correlatable)
    std::string metrics;  ///< MetricsRegistry::json() at sample time
    std::string extra;    ///< opts.extra() at sample time ("" = none)
  };

  void run_loop();
  /// Render the crash-report body (without closing brace) from the last few
  /// snapshots + the trace tail. Caller must hold m_.
  std::string render_crash_body_locked() const;
  void append_snapshots_locked(std::string& out, std::size_t max_snapshots) const;
  void write_stall_dump(const std::string& stalls_json);

  mutable std::mutex m_;
  std::condition_variable cv_;
  Options opts_;
  std::deque<Snapshot> ring_;
  u64 seq_ = 0;
  u64 stall_dumps_ = 0;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace repro::obs
