// Service metrics for the batch-compression service.
//
// One SvcStats is filled per BatchCompressor::run() and printed as a single
// summary line by the CLI — the shape a scrape-and-alert pipeline wants:
// counts, bytes, scheduler health (queue depth, steals), and per-stage wall
// time so a regression in planning vs. encoding vs. assembly is attributable
// at a glance. Beyond the one-liner, every run also publishes into the
// process-wide obs::MetricsRegistry (cumulative across runs) and can render
// itself as a JSON fragment for the RunReport.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::svc {

struct SvcStats {
  u64 jobs = 0;            ///< jobs submitted to run()
  u64 jobs_failed = 0;     ///< jobs that ended with an error
  u64 chunks = 0;          ///< chunk tasks executed
  u64 bytes_in = 0;        ///< raw scalar bytes across all jobs
  u64 bytes_out = 0;       ///< compressed stream bytes across all jobs
  u64 tasks_stolen = 0;    ///< pool tasks taken by work stealing
  u64 peak_queue_depth = 0;
  u64 jobs_audited = 0;       ///< jobs re-verified by the error-bound auditor
  u64 audit_violations = 0;   ///< bound violations the audit hook caught
  u64 jobs_reused = 0;        ///< jobs answered from the chunk store
  unsigned threads = 0;
  double plan_ms = 0;      ///< header planning (incl. NOA range reduction)
  double encode_ms = 0;    ///< submit-to-last-chunk wall time
  double assemble_ms = 0;  ///< stream assembly + checksums
  double wall_ms = 0;      ///< total run() wall time

  double ratio() const {
    return bytes_out ? static_cast<double>(bytes_in) / static_cast<double>(bytes_out) : 0.0;
  }
  /// Aggregate compression throughput in GB/s (input bytes over total wall).
  double gbps() const {
    return wall_ms > 0 ? static_cast<double>(bytes_in) / 1e6 / wall_ms : 0.0;
  }

  /// One-line summary, e.g.
  /// svc: jobs=8 chunks=1024 in=64.0MB out=12.3MB ratio=5.2 1.8GB/s
  ///      threads=4 stolen=37 depth=512 plan/encode/assemble=0.2/30.1/4.0ms
  std::string summary() const {
    // Two-step format: materialize the optional " failed=N" part as a named
    // std::string BEFORE the snprintf call. (A previous version called
    // .c_str() on the concatenation temporary inside the argument list —
    // legal only because the temporary lives to the end of the full
    // expression, and one refactor away from a dangling pointer.)
    std::string failed_part;
    if (jobs_failed) failed_part = " failed=" + std::to_string(jobs_failed);
    if (jobs_audited)
      failed_part += " audited=" + std::to_string(jobs_audited) +
                     " audit_viol=" + std::to_string(audit_violations);
    if (jobs_reused) failed_part += " reused=" + std::to_string(jobs_reused);
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "svc: jobs=%llu%s chunks=%llu in=%.1fMB out=%.1fMB ratio=%.2f "
                  "%.2fGB/s threads=%u stolen=%llu depth=%llu "
                  "plan/encode/assemble=%.1f/%.1f/%.1fms",
                  static_cast<unsigned long long>(jobs), failed_part.c_str(),
                  static_cast<unsigned long long>(chunks), bytes_in / 1e6, bytes_out / 1e6,
                  ratio(), gbps(), threads, static_cast<unsigned long long>(tasks_stolen),
                  static_cast<unsigned long long>(peak_queue_depth), plan_ms, encode_ms,
                  assemble_ms);
    return buf;
  }

  /// JSON object with every field plus the derived ratio/GB/s — the fragment
  /// the CLI folds into the RunReport's "svc" section.
  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("jobs", static_cast<unsigned long long>(jobs));
    w.kv("jobs_failed", static_cast<unsigned long long>(jobs_failed));
    w.kv("chunks", static_cast<unsigned long long>(chunks));
    w.kv("bytes_in", static_cast<unsigned long long>(bytes_in));
    w.kv("bytes_out", static_cast<unsigned long long>(bytes_out));
    w.kv("tasks_stolen", static_cast<unsigned long long>(tasks_stolen));
    w.kv("peak_queue_depth", static_cast<unsigned long long>(peak_queue_depth));
    w.kv("jobs_audited", static_cast<unsigned long long>(jobs_audited));
    w.kv("audit_violations", static_cast<unsigned long long>(audit_violations));
    w.kv("jobs_reused", static_cast<unsigned long long>(jobs_reused));
    w.kv("threads", threads);
    w.kv("plan_ms", plan_ms);
    w.kv("encode_ms", encode_ms);
    w.kv("assemble_ms", assemble_ms);
    w.kv("wall_ms", wall_ms);
    w.kv("ratio", ratio());
    w.kv("gbps", gbps());
    w.end_object();
    return w.take();
  }

  /// Publish this run into the registry: counters accumulate across runs,
  /// stage wall times land in latency histograms. No-op while obs is
  /// disabled (the registry gates every update).
  void publish(obs::MetricsRegistry& r) const {
    r.counter("svc.jobs").add(jobs);
    r.counter("svc.jobs_failed").add(jobs_failed);
    r.counter("svc.chunks").add(chunks);
    r.counter("svc.bytes_in").add(bytes_in);
    r.counter("svc.bytes_out").add(bytes_out);
    r.counter("svc.jobs_audited").add(jobs_audited);
    r.counter("svc.audit_violations").add(audit_violations);
    r.counter("svc.jobs_reused").add(jobs_reused);
    r.gauge("svc.peak_queue_depth").set(static_cast<long long>(peak_queue_depth));
    r.histogram("svc.plan_us").record(static_cast<u64>(plan_ms * 1e3));
    r.histogram("svc.encode_us").record(static_cast<u64>(encode_ms * 1e3));
    r.histogram("svc.assemble_us").record(static_cast<u64>(assemble_ms * 1e3));
    r.histogram("svc.run_wall_us").record(static_cast<u64>(wall_ms * 1e3));
  }
};

}  // namespace repro::svc
