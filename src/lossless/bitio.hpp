// Bit-granularity I/O over byte buffers (LSB-first), used by the Huffman
// coder and the ZFP-like bit-plane coder.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace repro::lossless {

class BitWriter {
 public:
  explicit BitWriter(std::vector<u8>& out) : out_(out) {}

  /// Append the low `n` bits of `bits` (n <= 64).
  void put(u64 bits, unsigned n) {
    acc_ |= (n < 64 ? (bits & ((u64{1} << n) - 1)) : bits) << fill_;
    fill_ += n;
    while (fill_ >= 8) {
      out_.push_back(static_cast<u8>(acc_));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  void put_bit(bool b) { put(b ? 1u : 0u, 1); }

  /// Flush the partial byte (zero-padded). Must be called exactly once.
  void flush() {
    if (fill_ > 0) {
      out_.push_back(static_cast<u8>(acc_));
      acc_ = 0;
      fill_ = 0;
    }
  }

 private:
  std::vector<u8>& out_;
  u64 acc_ = 0;
  unsigned fill_ = 0;
};

class BitReader {
 public:
  BitReader(const u8* data, std::size_t size) : data_(data), size_(size) {}

  /// Read `n` bits (n <= 57 per call to keep the refill simple).
  u64 get(unsigned n) {
    while (fill_ < n) {
      u64 byte = pos_ < size_ ? data_[pos_] : 0;
      if (pos_ >= size_) truncated_ = true;
      ++pos_;
      acc_ |= byte << fill_;
      fill_ += 8;
    }
    u64 v = n < 64 ? (acc_ & ((u64{1} << n) - 1)) : acc_;
    acc_ >>= n;
    fill_ -= n;
    return v;
  }

  bool get_bit() { return get(1) != 0; }

  /// True if any read ran past the end of the buffer.
  bool truncated() const { return truncated_; }

  /// Bytes consumed so far (rounded up to whole bytes actually touched).
  std::size_t bytes_consumed() const { return pos_ - fill_ / 8; }

 private:
  const u8* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  u64 acc_ = 0;
  unsigned fill_ = 0;
  bool truncated_ = false;
};

}  // namespace repro::lossless
