#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace repro::obs {

Histogram::Histogram(std::vector<u64> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("obs::Histogram: bounds must be strictly increasing");
  for (auto& s : shards_) {
    // std::atomic is not movable, so size the bucket vector in place.
    std::vector<std::atomic<u64>> b(bounds_.size() + 1);
    s.buckets.swap(b);
  }
}

std::vector<u64> Histogram::default_latency_bounds_us() {
  // 1us, 4us, 16us, ... ~16.8s: 13 exponential buckets cover everything from
  // a single chunk encode to a full batch run.
  std::vector<u64> b;
  for (u64 v = 1; v <= (u64{1} << 24); v <<= 2) b.push_back(v);
  return b;
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const u64 c = count();
  if (c == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double lo = static_cast<double>(min());
  const double hi = static_cast<double>(max());
  // Rank of the target sample, 1-based, clamped into [1, c].
  u64 target = static_cast<u64>(q * static_cast<double>(c));
  if (target < 1) target = 1;
  if (target > c) target = c;
  const std::vector<u64> counts = bucket_counts();
  u64 cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] < target) {
      cum += counts[i];
      continue;
    }
    // Target sample lives in bucket i: interpolate between the bucket's
    // bounds, clamped to the observed range (the first/last occupied bucket
    // is typically only partially covered by real samples).
    double b_lo = i == 0 ? lo : static_cast<double>(bounds_[i - 1]);
    double b_hi = i < bounds_.size() ? static_cast<double>(bounds_[i]) : hi;
    b_lo = std::max(b_lo, lo);
    b_hi = std::min(std::max(b_hi, b_lo), hi);
    const double frac =
        static_cast<double>(target - cum) / static_cast<double>(counts[i]);
    return b_lo + frac * (b_hi - b_lo);
  }
  return hi;  // unreachable when counts are consistent with count()
}

u64 Histogram::count() const {
  u64 t = 0;
  for (const auto& s : shards_) t += s.count.load(std::memory_order_relaxed);
  return t;
}

u64 Histogram::sum() const {
  u64 t = 0;
  for (const auto& s : shards_) t += s.sum.load(std::memory_order_relaxed);
  return t;
}

u64 Histogram::min() const {
  u64 t = UINT64_MAX;
  for (const auto& s : shards_) t = std::min(t, s.min.load(std::memory_order_relaxed));
  return t;
}

u64 Histogram::max() const {
  u64 t = 0;
  for (const auto& s : shards_) t = std::max(t, s.max.load(std::memory_order_relaxed));
  return t;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: outlives all users
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<u64> bounds) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_us();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::text() const {
  std::lock_guard<std::mutex> lk(m_);
  std::string out;
  for (const auto& [name, c] : counters_)
    out += name + " counter " + std::to_string(c->value()) + "\n";
  for (const auto& [name, g] : gauges_)
    out += name + " gauge " + std::to_string(g->value()) + " peak=" +
           std::to_string(g->peak()) + "\n";
  for (const auto& [name, h] : histograms_) {
    u64 c = h->count();
    out += name + " histogram count=" + std::to_string(c) + " sum=" +
           std::to_string(h->sum());
    if (c)
      out += " min=" + std::to_string(h->min()) + " max=" + std::to_string(h->max()) +
             " mean=" + std::to_string(h->mean()) + " p50=" + std::to_string(h->p50()) +
             " p95=" + std::to_string(h->p95()) + " p99=" + std::to_string(h->p99());
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lk(m_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_)
    w.kv(name, static_cast<unsigned long long>(c->value()));
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).begin_object();
    w.kv("value", static_cast<long long>(g->value()));
    w.kv("peak", static_cast<long long>(g->peak()));
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", static_cast<unsigned long long>(h->count()));
    w.kv("sum", static_cast<unsigned long long>(h->sum()));
    if (h->count()) {
      w.kv("min", static_cast<unsigned long long>(h->min()));
      w.kv("max", static_cast<unsigned long long>(h->max()));
      w.kv("mean", h->mean());
      w.kv("p50", h->p50());
      w.kv("p95", h->p95());
      w.kv("p99", h->p99());
    }
    w.key("bounds").begin_array();
    for (u64 b : h->bounds()) w.value(static_cast<unsigned long long>(b));
    w.end_array();
    w.key("buckets").begin_array();
    for (u64 b : h->bucket_counts()) w.value(static_cast<unsigned long long>(b));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace repro::obs
