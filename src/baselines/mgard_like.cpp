#include "baselines/mgard_like.hpp"

#include <cmath>

#include "baselines/sz_common.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x4452474Du;  // "MGRD"

/// Hierarchical traversal identical in structure to dyadic multigrid
/// refactoring: anchors at coarse grid points, corrections for midpoints,
/// level by level from coarse to fine.
template <typename F>
void hierarchy_traverse(std::size_t n, F&& visit) {
  if (n == 0) return;
  visit(std::size_t{0}, std::size_t{0});
  if (n == 1) return;
  std::size_t top = 1;
  while (top * 2 < n) top *= 2;
  for (std::size_t s = top;; s /= 2) {
    for (std::size_t i = s; i < n; i += 2 * s) visit(i, s);
    if (s == 1) break;
  }
}

template <typename T, typename Src>
T interp_from(const Src& src, std::size_t n, std::size_t i, std::size_t s) {
  if (s == 0) return T(0);
  if (i + s < n)
    return static_cast<T>((static_cast<double>(src[i - s]) + static_cast<double>(src[i + s])) *
                          0.5);
  return src[i - s];
}

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb) {
  auto d = in.as<T>();
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  if (eb == EbType::REL) throw CompressionError("MGARD does not support REL bounds");
  double abs_eps = eb == EbType::NOA ? noa_to_abs(d, eps) : eps;
  h.derived = abs_eps;

  // THE FLAW (deliberate, see header): corrections are computed against the
  // original data, so quantization error compounds through the hierarchy on
  // decode instead of being absorbed level by level.
  // Quantize corrections at a fraction of the bound (MGARD's level-norm
  // budgeting); accumulation across levels can still exceed eps — hence '○'.
  const std::size_t n = d.size();
  SzQuantizer<T> q(abs_eps * 0.25);
  SzPayload p;
  p.codes.resize(n);
  std::vector<T> outliers;
  hierarchy_traverse(n, [&](std::size_t i, std::size_t s) {
    T pred = interp_from<T>(d, n, i, s);  // original, not reconstructed
    T recon_unused;
    p.codes[i] = q.quantize(pred, d[i], recon_unused, outliers);
  });
  for (T o : outliers) append_scalar(p.outlier_bytes, o);
  Bytes out;
  write_bheader(h, out);
  Bytes payload = sz_pack(p);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  SzPayload p = sz_unpack(in.data() + sizeof(BaselineHeader), in.size() - sizeof(BaselineHeader));
  const std::size_t n = h.count;
  if (p.codes.size() != n) throw CompressionError("mgard: code count mismatch");
  SzQuantizer<T> q(h.derived * 0.25);
  std::vector<T> recon(n, T(0));
  std::span<const u8> ob(p.outlier_bytes);
  std::size_t oi = 0;
  hierarchy_traverse(n, [&](std::size_t i, std::size_t s) {
    if (p.codes[i] == 0) {
      recon[i] = take_scalar<T>(ob, oi++);
    } else {
      recon[i] = q.reconstruct(interp_from<T>(recon, n, i, s), p.codes[i]);
    }
  });
  std::vector<u8> out(n * sizeof(T));
  std::memcpy(out.data(), recon.data(), out.size());
  return out;
}

}  // namespace

Bytes MgardLikeCompressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb);
  return compress_typed<double>(in, eps, eb);
}

std::vector<u8> MgardLikeCompressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
