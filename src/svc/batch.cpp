#include "svc/batch.hpp"

#include <algorithm>
#include <future>

#include "common/timer.hpp"
#include "core/chunked.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "svc/byte_budget.hpp"
#include "svc/thread_pool.hpp"

namespace repro::svc {

BatchCompressor::BatchCompressor() : BatchCompressor(Options{}) {}

BatchCompressor::BatchCompressor(const Options& opts)
    : pool_(std::make_unique<ThreadPool>(opts.threads, opts.queue_capacity)),
      max_inflight_bytes_(opts.max_inflight_bytes),
      audit_(opts.audit),
      store_(opts.store) {}

BatchCompressor::~BatchCompressor() = default;

unsigned BatchCompressor::threads() const { return pool_->worker_count(); }

std::vector<JobResult> BatchCompressor::run(const std::vector<Job>& jobs) {
  OBS_SPAN("svc.batch_run");
  Timer wall;
  stats_ = SvcStats{};
  stats_.jobs = jobs.size();
  stats_.threads = pool_->worker_count();
  const ThreadPool::Counters before = pool_->counters();

  std::vector<JobResult> results(jobs.size());

  // Phase 1 — plan every job's header up front (sequential; NOA jobs run
  // their global range reduction here). A job that fails to plan is marked
  // failed and gets no chunk tasks.
  Timer plan_t;
  struct Plan {
    pfpl::Header header;
    std::vector<Bytes> payloads;
    std::vector<u32> sizes;
    std::vector<std::future<u32>> futures;
  };
  std::vector<Plan> plans(jobs.size());
  std::vector<common::Hash128> keys(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[j].name = jobs[j].name;
    results[j].raw_bytes = jobs[j].field.byte_size();
    stats_.bytes_in += results[j].raw_bytes;
    try {
      obs::ScopedSpan span(obs::enabled() ? "svc.plan:" + jobs[j].name : std::string());
      if (store_) {
        // Stored result? Skip planning and encoding — the compressor is
        // deterministic, so the stored stream IS this job's output.
        keys[j] = store::compress_key(jobs[j].field.data, jobs[j].field.byte_size(),
                                      jobs[j].field.dtype, jobs[j].params.eb,
                                      jobs[j].params.eps);
        if (store_->get(keys[j], results[j].stream)) {
          results[j].reused = true;
          results[j].header = pfpl::peek_header(results[j].stream);
          stats_.bytes_out += results[j].stream.size();
          ++stats_.jobs_reused;
          continue;
        }
      }
      plans[j].header = pfpl::plan_header(jobs[j].field, jobs[j].params);
      plans[j].payloads.resize(plans[j].header.chunk_count);
      plans[j].sizes.assign(plans[j].header.chunk_count, 0);
      plans[j].futures.reserve(plans[j].header.chunk_count);
      results[j].header = plans[j].header;
    } catch (const std::exception& e) {
      results[j].failed = true;
      results[j].error = e.what();
      ++stats_.jobs_failed;
    }
  }
  stats_.plan_ms = plan_t.seconds() * 1e3;

  // Phase 2 — fan every chunk of every job across the pool. Admission is
  // throttled by the in-flight byte budget; each task writes its payload
  // into its own pre-allocated slot, which is what makes the assembled
  // stream independent of execution order.
  Timer encode_t;
  ByteBudget budget(max_inflight_bytes_);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (results[j].failed || results[j].reused) continue;
    obs::ScopedSpan span(obs::enabled() ? "svc.submit:" + jobs[j].name : std::string());
    Plan& plan = plans[j];
    const Field& field = jobs[j].field;
    const pfpl::Executor exec = jobs[j].params.exec;
    const std::size_t chunk_bytes =
        pfpl::chunk_values(field.dtype) * dtype_size(field.dtype);
    for (std::size_t c = 0; c < plan.header.chunk_count; ++c) {
      budget.acquire(chunk_bytes);
      Bytes* slot = &plan.payloads[c];
      const pfpl::Header* h = &plan.header;
      plan.futures.push_back(pool_->submit([&field, h, c, exec, slot, &budget,
                                            chunk_bytes]() -> u32 {
        struct Release {
          ByteBudget* b;
          std::size_t n;
          ~Release() { b->release(n); }
        } release{&budget, chunk_bytes};
        return pfpl::encode_chunk(field, *h, c, exec, *slot);
      }));
      ++stats_.chunks;
    }
  }
  // Harvest chunk results in slot order (the futures also propagate any
  // encode-side exception to the owning job).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (results[j].failed || results[j].reused) continue;
    try {
      for (std::size_t c = 0; c < plans[j].futures.size(); ++c)
        plans[j].sizes[c] = plans[j].futures[c].get();
    } catch (const std::exception& e) {
      // Drain the job's remaining futures so no task outlives its slots.
      for (auto& f : plans[j].futures)
        if (f.valid()) f.wait();
      results[j].failed = true;
      results[j].error = e.what();
      ++stats_.jobs_failed;
    }
  }
  stats_.encode_ms = encode_t.seconds() * 1e3;

  // Phase 3 — assemble each job's stream in job order; byte-identical to
  // one-shot pfpl::compress by construction.
  Timer assemble_t;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (results[j].failed || results[j].reused) continue;
    obs::ScopedSpan span(obs::enabled() ? "svc.assemble:" + jobs[j].name : std::string());
    results[j].stream = pfpl::assemble_stream(plans[j].header, plans[j].sizes,
                                              plans[j].payloads, jobs[j].params.exec);
    stats_.bytes_out += results[j].stream.size();
    if (store_)
      store_->put(keys[j], results[j].stream,
                  store::ChunkMeta{jobs[j].field.dtype, jobs[j].params.eb,
                                   jobs[j].params.eps, results[j].raw_bytes});
  }
  stats_.assemble_ms = assemble_t.seconds() * 1e3;

  // Phase 4 (optional) — audit: decompress each successful stream and
  // re-verify every value against the job's bound with the shared auditor.
  // A violation marks the result (and the svc.audit_violations counter) but
  // is never thrown — the caller decides whether a tainted batch is fatal.
  if (audit_) {
    OBS_SPAN("svc.audit");
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (results[j].failed) continue;
      const std::vector<u8> raw = pfpl::decompress(results[j].stream, jobs[j].params.exec);
      const obs::AuditCase ac = obs::ErrorBoundAuditor::verify_field(
          jobs[j].field, raw, jobs[j].params.eb, jobs[j].params.eps, "svc",
          jobs[j].name, /*seed=*/0, results[j].stream.size());
      results[j].audited = true;
      results[j].audit_violations = ac.violations;
      ++stats_.jobs_audited;
      stats_.audit_violations += ac.violations;
    }
  }

  // Future harvest proves every chunk *value* arrived, but a worker can still
  // be inside its post-task bookkeeping; drain() waits out that tail so the
  // counter snapshot below is exact (executed == submitted for this run).
  pool_->drain();
  const ThreadPool::Counters after = pool_->counters();
  stats_.tasks_stolen = after.stolen - before.stolen;
  stats_.peak_queue_depth = after.peak_pending;
  stats_.wall_ms = wall.seconds() * 1e3;
  stats_.publish(obs::MetricsRegistry::global());
  return results;
}

}  // namespace repro::svc
