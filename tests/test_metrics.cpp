// Tests for the metrics module — the external judge every guarantee test
// relies on, so its own semantics must be pinned down precisely.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/error_stats.hpp"

using namespace repro;
using namespace repro::metrics;

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
const float kNan = std::numeric_limits<float>::quiet_NaN();
}  // namespace

TEST(Stats, PerfectReconstruction) {
  std::vector<float> v{1.0f, 2.0f, 3.0f, -1.0f};
  auto s = compute_stats(std::span<const float>(v), std::span<const float>(v));
  EXPECT_EQ(s.max_abs, 0.0);
  EXPECT_EQ(s.max_rel, 0.0);
  EXPECT_EQ(s.mse, 0.0);
  EXPECT_EQ(s.psnr, kPsnrCapDb);  // finite cap, not +inf: JSON-safe
  EXPECT_EQ(s.value_range, 4.0);
  EXPECT_FALSE(s.zero_range);
  EXPECT_EQ(s.sign_flips, 0u);
  EXPECT_EQ(s.nonfinite_mismatches, 0u);
}

TEST(Stats, ZeroRangeFieldReportsFinitePsnr) {
  // A constant field has no range, so range-based PSNR is undefined; the old
  // behavior reported +inf even with MSE > 0, masking real error. Now the
  // degenerate case is explicit (zero_range) and PSNR stays finite.
  std::vector<float> o{2.5f, 2.5f, 2.5f, 2.5f};
  std::vector<float> bad{2.5f, 3.5f, 2.5f, 2.5f};
  auto s = compute_stats(std::span<const float>(o), std::span<const float>(bad));
  EXPECT_TRUE(s.zero_range);
  EXPECT_GT(s.mse, 0.0);
  EXPECT_EQ(s.psnr, 0.0);
  EXPECT_TRUE(std::isfinite(s.psnr));

  // Constant field reconstructed exactly: still finite, reports the cap.
  auto s2 = compute_stats(std::span<const float>(o), std::span<const float>(o));
  EXPECT_TRUE(s2.zero_range);
  EXPECT_EQ(s2.psnr, kPsnrCapDb);
}

TEST(Stats, KnownErrors) {
  std::vector<float> o{0.0f, 1.0f, 2.0f};
  std::vector<float> r{0.1f, 0.8f, 2.0f};
  auto s = compute_stats(std::span<const float>(o), std::span<const float>(r));
  EXPECT_NEAR(s.max_abs, 0.2, 1e-7);
  EXPECT_NEAR(s.max_rel, 0.2, 1e-6);  // at o=1.0
  EXPECT_NEAR(s.mse, (0.01 + 0.04 + 0.0) / 3, 1e-7);
}

TEST(Stats, PsnrFormula) {
  // PSNR = 20 log10(range) - 10 log10(MSE).
  std::vector<float> o(1000), r(1000);
  for (int i = 0; i < 1000; ++i) {
    o[i] = static_cast<float>(i % 100);  // range 99
    r[i] = o[i] + 0.5f;
  }
  auto s = compute_stats(std::span<const float>(o), std::span<const float>(r));
  EXPECT_NEAR(s.psnr, 20 * std::log10(99.0) - 10 * std::log10(0.25), 1e-6);
}

TEST(Stats, NonFiniteHandling) {
  std::vector<float> o{kNan, kInf, -kInf, 1.0f};
  std::vector<float> r{kNan, kInf, -kInf, 1.0f};
  auto s = compute_stats(std::span<const float>(o), std::span<const float>(r));
  EXPECT_EQ(s.nonfinite_mismatches, 0u);
  std::vector<float> bad{1.0f, kInf, kInf, kNan};
  auto s2 = compute_stats(std::span<const float>(o), std::span<const float>(bad));
  EXPECT_EQ(s2.nonfinite_mismatches, 3u);  // NaN->1.0, -inf->+inf, 1.0->NaN
}

TEST(Stats, SignFlipsCounted) {
  std::vector<float> o{1.0f, -2.0f, 3.0f};
  std::vector<float> r{-1.0f, -2.0f, 3.0f};
  auto s = compute_stats(std::span<const float>(o), std::span<const float>(r));
  EXPECT_EQ(s.sign_flips, 1u);
}

TEST(Violations, AbsBoundary) {
  std::vector<double> o{1.0};
  std::vector<double> ok{1.0 + 1e-3};
  std::vector<double> bad{1.0 + 1e-3 + 1e-9};
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(ok), 1e-3,
                             EbType::ABS),
            0u);
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(bad), 1e-3,
                             EbType::ABS),
            1u);
}

TEST(Violations, RelSemantics) {
  std::vector<double> o{10.0, -10.0, 0.0};
  // In-bound: within a factor (1+eps) either way, same sign; zero -> zero.
  std::vector<double> ok{10.0 * 1.0009, -10.0 / 1.0009, 0.0};
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(ok), 1e-3,
                             EbType::REL),
            0u);
  // Sign flip violates even when magnitude is fine.
  std::vector<double> flip{-10.0, -10.0, 0.0};
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(flip), 1e-3,
                             EbType::REL),
            1u);
  // Zero must reconstruct to zero.
  std::vector<double> z{10.0, -10.0, 1e-30};
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(z), 1e-3,
                             EbType::REL),
            1u);
  // Magnitude out of band.
  std::vector<double> far{10.2, -10.0, 0.0};
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(far), 1e-3,
                             EbType::REL),
            1u);
}

TEST(Violations, NoaUsesRange) {
  std::vector<double> o{0.0, 100.0};        // range 100
  std::vector<double> r{0.09, 100.0};       // err 0.09 <= 1e-3 * 100
  std::vector<double> bad{0.11, 100.0};     // err 0.11 > 0.1
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(r), 1e-3,
                             EbType::NOA),
            0u);
  EXPECT_EQ(count_violations(std::span<const double>(o), std::span<const double>(bad), 1e-3,
                             EbType::NOA),
            1u);
}

TEST(Violations, NanMustMapToNan) {
  std::vector<float> o{kNan};
  std::vector<float> num{1.0f};
  std::vector<float> nan2{kNan};
  EXPECT_EQ(count_violations(std::span<const float>(o), std::span<const float>(num), 1e-3,
                             EbType::ABS),
            1u);
  EXPECT_EQ(count_violations(std::span<const float>(o), std::span<const float>(nan2), 1e-3,
                             EbType::ABS),
            0u);
}

TEST(Violations, InfMustMapToSameInf) {
  std::vector<float> o{kInf, -kInf};
  std::vector<float> same{kInf, -kInf};
  std::vector<float> flipped{-kInf, kInf};
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    EXPECT_EQ(count_violations(std::span<const float>(o), std::span<const float>(same), 1e-3, eb),
              0u);
    EXPECT_EQ(
        count_violations(std::span<const float>(o), std::span<const float>(flipped), 1e-3, eb),
        2u);
  }
}

TEST(Ratio, Basics) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
}

TEST(Geomean, Properties) {
  std::vector<double> xs{1.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-12);
  std::vector<double> with_zero{0.0, 4.0};  // non-positive entries skipped
  EXPECT_NEAR(geomean(with_zero), 4.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}
