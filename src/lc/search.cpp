#include "lc/search.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::lc {

Candidate evaluate(const Pipeline& p, const std::vector<std::vector<u8>>& chunks) {
  Candidate c;
  c.pipeline = p;
  c.name = p.name();
  // One span per component combination: a trace of the search shows exactly
  // which stage sequences the enumeration spent its time on.
  obs::ScopedSpan span(obs::enabled() ? "lc.evaluate:" + c.name : std::string());
  std::size_t in_bytes = 0, out_bytes = 0;
  Timer t;
  std::vector<std::vector<u8>> encoded;
  encoded.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    encoded.push_back(p.encode(chunk));
    in_bytes += chunk.size();
    out_bytes += encoded.back().size();
  }
  double secs = t.seconds();
  c.ratio = out_bytes ? static_cast<double>(in_bytes) / static_cast<double>(out_bytes) : 0;
  c.enc_mbps = throughput_mbps(in_bytes, secs);
  {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& evaluated = reg.counter("lc.candidates_evaluated");
    static obs::Histogram& encode_us = reg.histogram("lc.candidate_encode_us");
    evaluated.add(1);
    encode_us.record(static_cast<u64>(secs * 1e6));
  }
  c.roundtrip = true;
  try {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      std::vector<u8> back = p.decode(encoded[i], chunks[i].size());
      if (back != chunks[i]) {
        c.roundtrip = false;
        break;
      }
    }
  } catch (const CompressionError&) {
    c.roundtrip = false;
  }
  return c;
}

std::vector<Candidate> search(const std::vector<std::vector<u8>>& chunks,
                              const SearchConfig& cfg) {
  OBS_SPAN("lc.search");
  std::vector<StagePtr> lib = component_library(cfg.word_bits);
  std::vector<Candidate> results;

  // Iterative deepening over stage sequences (with-repetition enumeration,
  // optionally pruning immediate repeats — a repeated permutation stage is
  // either a no-op or equivalent to a single application).
  std::vector<std::size_t> idx;
  auto emit = [&]() {
    std::vector<StagePtr> stages;
    stages.reserve(idx.size());
    for (std::size_t i : idx) stages.push_back(lib[i]);
    Candidate c = evaluate(Pipeline(std::move(stages)), chunks);
    if (c.roundtrip) results.push_back(std::move(c));
  };
  // Depth-first enumeration up to max_stages.
  std::vector<std::size_t> stack;
  auto rec = [&](auto&& self, int depth) -> void {
    if (depth > 0) emit();
    if (depth == cfg.max_stages) return;
    for (std::size_t i = 0; i < lib.size(); ++i) {
      if (cfg.skip_repeats && !idx.empty() && idx.back() == i) continue;
      idx.push_back(i);
      self(self, depth + 1);
      idx.pop_back();
    }
  };
  rec(rec, 0);

  std::sort(results.begin(), results.end(),
            [](const Candidate& a, const Candidate& b) { return a.ratio > b.ratio; });
  return results;
}

}  // namespace repro::lc
