// Metrics exposition — render the MetricsRegistry for external scrapers.
//
// Two formats:
//   * Prometheus text exposition format 0.0.4 (`prometheus_text()`): one
//     family per metric, names sanitized into the `pfpl_` namespace
//     ("net.request_us" -> "pfpl_net_request_us"), counters suffixed
//     `_total`, gauges as-is plus a `_peak` companion family, histograms as
//     cumulative `_bucket{le="..."}` series with `+Inf`, `_sum`, `_count`.
//   * JSON (`metrics_json_doc()`): the registry's native JSON dump wrapped in
//     a `pfpl-metrics/1` schema envelope with room for server-supplied extra
//     sections (slow requests, live stats).
//
// Both renderers read the registry's merged snapshots; they take no global
// locks beyond the registry's own registration mutex and are safe to call
// while worker threads are recording. With observability disabled the output
// is still a well-formed document — values simply stay at zero.
#pragma once

#include <string>

namespace repro::obs {

class MetricsRegistry;

/// Sanitized Prometheus family name: lowercase [a-z0-9_] with a `pfpl_`
/// prefix; every other character becomes '_' ("net.request_us" ->
/// "pfpl_net_request_us").
std::string prometheus_family(const std::string& name);

/// Render `reg` (default: the global registry) in Prometheus text format.
/// Non-const because name lookup is get-or-create; only names already in the
/// registry are looked up, so nothing is created.
std::string prometheus_text();
std::string prometheus_text(MetricsRegistry& reg);

/// JSON document {"schema":"pfpl-metrics/1","metrics":<registry json>,...}.
/// `extra_sections`, when non-empty, must be a comma-joined sequence of
/// `"key":value` JSON fragments spliced into the top-level object (the
/// server uses this for its live stats and slow-request ring).
std::string metrics_json_doc(const std::string& extra_sections = "");
std::string metrics_json_doc(const MetricsRegistry& reg,
                             const std::string& extra_sections);

}  // namespace repro::obs
