// Event-loop readiness backend: epoll(7) where available, poll(2) fallback.
//
// The server's loop is structured as "declare the full interest set every
// round, then wait" — simple to reason about, and exactly what poll(2) wants.
// epoll is stateful, so this adapter keeps the declarative surface and turns
// it into incremental epoll_ctl calls: set(fd, ...) caches the last-armed
// (events, tag) per fd and only issues EPOLL_CTL_ADD/MOD when something
// changed. A loop round over N mostly-idle connections therefore costs zero
// syscalls beyond the single epoll_wait — the property that lets one node
// hold thousands of sockets — while the poll backend rebuilds its pollfd
// array per round, exactly like the pre-epoll server did.
//
// Events use poll(2) semantics everywhere (POLLIN/POLLOUT in, POLLIN/POLLOUT/
// POLLERR/POLLHUP/POLLNVAL out); the epoll backend translates. An fd armed
// with events == 0 still reports error/hangup, matching poll(2).
//
// Single-threaded, like the loop that owns it. Call remove(fd) before
// closing an fd: close() silently drops an fd from an epoll set, which would
// leave a stale cache entry that breaks a later set() on a recycled fd.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace repro::net {

class Poller {
 public:
  struct Event {
    u64 tag = 0;        ///< the tag passed to set()
    short revents = 0;  ///< poll(2)-style readiness bits
  };

  /// `prefer_epoll` requests the epoll backend; builds/platforms without
  /// epoll silently fall back to poll(2). epoll() reports the choice.
  explicit Poller(bool prefer_epoll);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool epoll() const { return epfd_ >= 0; }

  /// Declare interest for this round: POLLIN/POLLOUT bits in `events` (0 is
  /// valid — error/hangup only). `tag` is echoed back in Event::tag and may
  /// change between rounds for the same fd.
  void set(int fd, short events, u64 tag);

  /// Forget an fd. Must be called before the fd is closed (epoll backend).
  /// Unknown fds are ignored.
  void remove(int fd);

  /// Wait up to `timeout_ms` and fill `out` with every fd that has nonzero
  /// readiness. Returns out.size(); EINTR yields an empty result, any other
  /// failure throws NetError.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  struct Interest {
    short events = 0;
    u64 tag = 0;
  };

  int epfd_ = -1;  ///< -1 = poll(2) backend
  std::unordered_map<int, Interest> interest_;
};

}  // namespace repro::net
