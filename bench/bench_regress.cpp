// bench_regress — the repo's perf-regression driver.
//
// Runs the tier-1 figure sweeps (ABS / REL / NOA, f32 + f64, PFPL only) in
// one process at a laptop-scale protocol, then either writes the results as
// a baseline (`--update-baseline [--baseline FILE]`, default
// BENCH_baseline.json) or compares them against a committed baseline
// (`--baseline FILE [--gate PCT]`, exit 3 on a failed gate). Each sweep
// measures compress and decompress in a single pass, so the Fig6/Fig7-style
// compress/decompress figure pairs collapse into one Regress_* figure per
// (eb, dtype).
//
//   bench_regress --update-baseline            # refresh BENCH_baseline.json
//   bench_regress --runs 3 --baseline BENCH_baseline.json --gate 25
//
// All common harness flags apply (--runs/--target/--files/--json/--trace).
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig base;
  // Small deterministic protocol: 1 file per suite, 16K values, 2 bounds —
  // big enough for stable medians, small enough for a CI smoke job. Ratios
  // and violation counts are exactly reproducible (seeded generators);
  // throughput carries the noise the gate's MAD allowance absorbs.
  base.target_values = 1 << 14;
  base.max_files = 1;
  base.runs = 5;
  base.bounds = {1e-2, 1e-3};
  base.only_compressors = {"PFPL_Serial"};
  bench::SweepConfig cfg = bench::parse_args(argc, argv, base);

  const struct {
    EbType eb;
    const char* name;
  } kEbs[] = {{EbType::ABS, "ABS"}, {EbType::REL, "REL"}, {EbType::NOA, "NOA"}};
  for (const auto& e : kEbs) {
    for (DType dtype : {DType::F32, DType::F64}) {
      cfg.eb = e.eb;
      cfg.dtype = dtype;
      bench::print_rows(std::string("Regress_") + e.name + "_" + to_string(dtype),
                        bench::run_sweep(cfg));
    }
  }
  return bench::finish();
}
