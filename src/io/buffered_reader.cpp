#include "io/buffered_reader.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace repro::io {

DoubleBufferedReader::DoubleBufferedReader(const std::string& path,
                                           std::size_t buffer_bytes)
    : path_(path), buffer_bytes_(std::max<std::size_t>(1, buffer_bytes)) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (!file_)
    throw CompressionError(path_ + ": open: " + std::strerror(errno));
  for (Slot& s : slots_) s.buf.resize(buffer_bytes_);
  thread_ = std::thread([this] { prefetch_loop(); });
}

DoubleBufferedReader::~DoubleBufferedReader() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (file_) std::fclose(file_);
}

void DoubleBufferedReader::prefetch_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return stop_ || !slots_[fill_idx_].filled; });
    if (stop_ || eof_queued_) return;
    Slot& s = slots_[fill_idx_];
    lk.unlock();

    // Fill outside the lock (the consumer owns the *other* slot). Loop over
    // fread so a short read mid-file can never end a buffer early — only a
    // true EOF makes the final buffer short.
    std::size_t got = 0;
    bool eof = false;
    std::exception_ptr err;
    while (got < s.buf.size()) {
      const std::size_t n = std::fread(s.buf.data() + got, 1, s.buf.size() - got, file_);
      got += n;
      if (n == 0) {
        if (std::ferror(file_)) {
          err = std::make_exception_ptr(
              CompressionError(path_ + ": read: " + std::strerror(errno)));
        }
        eof = true;
        break;
      }
    }

    lk.lock();
    s.len = got;
    s.last = eof;
    s.filled = true;
    if (err) {
      error_ = err;
      eof_queued_ = true;
    } else if (eof) {
      eof_queued_ = true;
    } else {
      fill_idx_ ^= 1u;
    }
    lk.unlock();
    cv_.notify_all();
    if (eof || err) return;
  }
}

std::span<const u8> DoubleBufferedReader::next() {
  std::unique_lock<std::mutex> lk(m_);
  // The span handed out by the previous call expires now: release that slot
  // for refill. Releasing is deferred to here — not done at hand-out time —
  // so the producer can never scribble over a buffer the caller still reads.
  if (handed_out_ >= 0) {
    slots_[handed_out_].filled = false;
    handed_out_ = -1;
    cv_.notify_all();
  }
  Slot& s = slots_[consume_idx_];
  cv_.wait(lk, [&] { return s.filled || eof_queued_; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
  if (!s.filled) return {};  // producer ended without filling this slot: EOF
  if (s.last && s.len == 0) {
    // Zero-length file (or size an exact multiple of the buffer): the final
    // fill found nothing — report EOF rather than an empty "chunk".
    s.filled = false;
    return {};
  }
  bytes_read_ += s.len;
  handed_out_ = static_cast<int>(consume_idx_);
  const std::span<const u8> out(s.buf.data(), s.len);
  consume_idx_ ^= 1u;
  return out;
}

}  // namespace repro::io
