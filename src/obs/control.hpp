// Global observability switch.
//
// All obs recording — metric updates, span capture — is gated on one atomic
// flag. The disabled fast path is a single relaxed load and a predictable
// branch: no locks, no clock reads, no allocation, which is what lets the
// hot encode loops keep their instrumentation compiled in at all times
// (pay-for-what-you-use; the CLI/bench flags flip the switch on).
#pragma once

#include <atomic>

namespace repro::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace repro::obs
