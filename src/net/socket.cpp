#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace repro::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Resolve host to an IPv4 sockaddr_in (numeric literal or getaddrinfo).
sockaddr_in resolve(const std::string& host, u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(h.c_str(), nullptr, &hints, &res);
  if (rc != 0 || !res)
    throw NetError("net: cannot resolve host '" + h + "': " + gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

/// Poll one fd for `events`; returns false on timeout. Throws on poll error.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("net: poll");
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void split_host_port(const std::string& spec, std::string& host, u16& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos)
    throw NetError("net: expected host:port, got '" + spec + "'");
  host = spec.substr(0, colon);
  const std::string p = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long v = std::strtoul(p.c_str(), &end, 10);
  if (p.empty() || *end != '\0' || v == 0 || v > 65535)
    throw NetError("net: invalid port '" + p + "'");
  port = static_cast<u16>(v);
}

Socket tcp_listen(const std::string& host, u16 port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("net: socket");
  const int one = 1;
  setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(host, port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("net: bind " + host + ":" + std::to_string(port));
  if (::listen(s.fd(), backlog) != 0) throw_errno("net: listen");
  set_nonblocking(s.fd(), true);
  return s;
}

u16 local_port(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("net: getsockname");
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, u16 port, int timeout_ms) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("net: socket");
  sockaddr_in addr = resolve(host, port);
  // Non-blocking connect + poll: a blocking connect honors only the system's
  // multi-minute timeout, useless for a client with a request deadline.
  set_nonblocking(s.fd(), true);
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS)
      throw_errno("net: connect " + host + ":" + std::to_string(port));
    if (!wait_fd(s.fd(), POLLOUT, timeout_ms))
      throw NetError("net: connect " + host + ":" + std::to_string(port) + ": timeout");
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0)
      throw NetError("net: connect " + host + ":" + std::to_string(port) + ": " +
                     std::strerror(err ? err : errno));
  }
  set_nonblocking(s.fd(), false);
  const int one = 1;
  setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

void set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("net: fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) < 0)
    throw_errno("net: fcntl(F_SETFL)");
}

void send_all(int fd, const void* data, std::size_t n, int timeout_ms) {
  const u8* p = static_cast<const u8*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, timeout_ms)) throw NetError("net: send timeout");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("net: send");
  }
}

void recv_all(int fd, void* data, std::size_t n, int timeout_ms) {
  u8* p = static_cast<u8*>(data);
  std::size_t got = 0;
  while (got < n) {
    if (!wait_fd(fd, POLLIN, timeout_ms)) throw NetError("net: recv timeout");
    const ssize_t rc = ::recv(fd, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) throw NetError("net: connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("net: recv");
  }
}

}  // namespace repro::net
