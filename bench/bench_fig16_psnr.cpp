// Figure 16 reproduction: compression ratio vs. PSNR for the three
// error-bound types on single-precision data (16a = ABS, 16b = REL,
// 16c = NOA). Suites per chart match the corresponding result sections.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig base = bench::parse_args(argc, argv, {});
  base.dtype = DType::F32;

  // "The inputs used for producing each PSNR chart match those of the
  // respective result sections above" — so ABS/NOA use SZ3, not SZ2.
  bench::SweepConfig abs = base;
  abs.eb = EbType::ABS;
  abs.exclude_non_3d = true;
  abs.exclude_compressors = {"SZ2_Serial"};
  bench::print_rows("Fig16a_PSNR_ABS_f32", bench::run_sweep(abs));

  bench::SweepConfig rel = base;
  rel.eb = EbType::REL;
  bench::print_rows("Fig16b_PSNR_REL_f32", bench::run_sweep(rel));

  bench::SweepConfig noa = base;
  noa.eb = EbType::NOA;
  noa.exclude_non_3d = true;
  noa.exclude_compressors = {"SZ2_Serial"};
  bench::print_rows("Fig16c_PSNR_NOA_f32", bench::run_sweep(noa));
  return bench::finish();
}
