// Metrics for one IngestPipeline::run() — the per-stage decomposition that
// makes "which stage is the bottleneck" attributable at a glance. Stage
// times are SUMS of per-item stage durations: on the serial path they add up
// to the wall time; on the pipelined path the wall tracks the slowest stage
// (the whole point of the overlap), so stage_ms / wall_ms reads as that
// stage's utilization.
#pragma once

#include <string>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::ingest {

struct IngestStats {
  u64 files = 0;            ///< items submitted to run()
  u64 files_failed = 0;     ///< items that ended with an error
  u64 files_cancelled = 0;  ///< items dropped by first-error cancellation
  u64 files_reused = 0;     ///< items answered by the store's dedup probe
  u64 chunks = 0;           ///< encode-stage chunk tasks executed
  u64 bytes_in = 0;         ///< raw bytes across all items
  u64 bytes_out = 0;        ///< compressed stream bytes across all items
  u64 probe_hits = 0;       ///< dedup-probe store hits
  u64 probe_misses = 0;
  u64 append_batches = 0;   ///< group commits issued by the append stage
  u64 appended = 0;         ///< chunks newly written to the persistent tier
  u64 audited = 0;
  u64 audit_violations = 0;
  u64 peak_queue_bytes = 0;  ///< max over the three inter-stage queues
  u64 peak_queue_items = 0;
  unsigned threads = 0;      ///< encode pool worker count
  double read_ms = 0;        ///< per-stage per-item sums (see header comment)
  double hash_ms = 0;
  double encode_ms = 0;
  double append_ms = 0;
  double wall_ms = 0;

  double ratio() const {
    return bytes_out ? static_cast<double>(bytes_in) / static_cast<double>(bytes_out)
                     : 0.0;
  }
  double mbps() const {
    return wall_ms > 0 ? static_cast<double>(bytes_in) / 1e3 / wall_ms : 0.0;
  }

  /// One line for the CLI, e.g.
  /// ingest: files=8 reused=3 in=64.0MB out=12.3MB ratio=5.2 210.0MB/s
  ///         stages r/h/e/a=12/3/880/40ms wall=900ms batches=2
  std::string summary() const {
    std::string extra;
    if (files_failed) extra += " failed=" + std::to_string(files_failed);
    if (files_cancelled) extra += " cancelled=" + std::to_string(files_cancelled);
    if (audited)
      extra += " audited=" + std::to_string(audited) +
               " audit_viol=" + std::to_string(audit_violations);
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "ingest: files=%llu reused=%llu%s in=%.1fMB out=%.1fMB ratio=%.2f "
                  "%.1fMB/s threads=%u stages r/h/e/a=%.0f/%.0f/%.0f/%.0fms "
                  "wall=%.0fms batches=%llu",
                  static_cast<unsigned long long>(files),
                  static_cast<unsigned long long>(files_reused), extra.c_str(),
                  bytes_in / 1e6, bytes_out / 1e6, ratio(), mbps(), threads, read_ms,
                  hash_ms, encode_ms, append_ms, wall_ms,
                  static_cast<unsigned long long>(append_batches));
    return buf;
  }

  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("files", static_cast<unsigned long long>(files));
    w.kv("files_failed", static_cast<unsigned long long>(files_failed));
    w.kv("files_cancelled", static_cast<unsigned long long>(files_cancelled));
    w.kv("files_reused", static_cast<unsigned long long>(files_reused));
    w.kv("chunks", static_cast<unsigned long long>(chunks));
    w.kv("bytes_in", static_cast<unsigned long long>(bytes_in));
    w.kv("bytes_out", static_cast<unsigned long long>(bytes_out));
    w.kv("probe_hits", static_cast<unsigned long long>(probe_hits));
    w.kv("probe_misses", static_cast<unsigned long long>(probe_misses));
    w.kv("append_batches", static_cast<unsigned long long>(append_batches));
    w.kv("appended", static_cast<unsigned long long>(appended));
    w.kv("audited", static_cast<unsigned long long>(audited));
    w.kv("audit_violations", static_cast<unsigned long long>(audit_violations));
    w.kv("peak_queue_bytes", static_cast<unsigned long long>(peak_queue_bytes));
    w.kv("peak_queue_items", static_cast<unsigned long long>(peak_queue_items));
    w.kv("threads", threads);
    w.kv("read_ms", read_ms);
    w.kv("hash_ms", hash_ms);
    w.kv("encode_ms", encode_ms);
    w.kv("append_ms", append_ms);
    w.kv("wall_ms", wall_ms);
    w.kv("ratio", ratio());
    w.kv("mbps", mbps());
    w.end_object();
    return w.take();
  }

  /// Publish into the process registry (cumulative across runs; no-op while
  /// obs is disabled — the registry gates every update).
  void publish(obs::MetricsRegistry& r) const {
    r.counter("ingest.files").add(files);
    r.counter("ingest.files_failed").add(files_failed);
    r.counter("ingest.files_cancelled").add(files_cancelled);
    r.counter("ingest.files_reused").add(files_reused);
    r.counter("ingest.chunks").add(chunks);
    r.counter("ingest.bytes_in").add(bytes_in);
    r.counter("ingest.bytes_out").add(bytes_out);
    r.counter("ingest.append_batches").add(append_batches);
    r.counter("ingest.appended").add(appended);
    r.gauge("ingest.peak_queue_bytes").set(static_cast<long long>(peak_queue_bytes));
    r.histogram("ingest.run_wall_us").record(static_cast<u64>(wall_ms * 1e3));
  }
};

}  // namespace repro::ingest
