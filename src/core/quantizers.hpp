// PFPL lossy quantizers with guaranteed error bounds (paper Section III-A/B).
//
// Each quantizer maps one scalar to one word of the same width. The word is
// either
//   * a bin number, stored inside a reserved region of the IEEE bit-pattern
//     space (positive denormals for ABS/NOA, negative NaNs — emitted
//     bit-inverted — for REL), or
//   * the unmodified IEEE bit pattern of the value ("lossless inline"),
// so the output is a single self-describing stream: no separate outlier list,
// which keeps the transform embarrassingly parallel (Section III-E).
//
// THE GUARANTEE: after computing a candidate bin, the encoder immediately
// decodes it with the exact same arithmetic the decompressor will use and
// checks the reconstruction against the bound. Any value that fails — due to
// FP rounding, bin-range overflow, NaN/inf, or approximation error in the
// deterministic log/exp — is emitted losslessly. The bound therefore holds
// unconditionally, by construction.
#pragma once

#include <cmath>

#include "common/types.hpp"
#include "fpmath/det_math.hpp"
#include "fpmath/traits.hpp"

namespace repro::pfpl {

/// Verification precision: float data is checked in double (every float op
/// involved is exact in double); double data is checked in long double.
/// The test-suite verifier uses the same convention.
template <typename T>
using VerifyReal = std::conditional_t<std::is_same_v<T, float>, double, long double>;

// ---------------------------------------------------------------------------
// ABS quantizer (also used by NOA with the range-derived bound).
// ---------------------------------------------------------------------------

template <typename T>
class AbsQuantizer {
  using FT = fpmath::FloatTraits<T>;
  using Bits = typename FT::Bits;

 public:
  /// `eps` is the point-wise absolute bound. Values of eps below the smallest
  /// positive normal number put the quantizer in degenerate mode where only
  /// exact zeros are binned (paper: "the error bound cannot be less than the
  /// smallest positive non-denormal floating-point value"); everything else
  /// is stored losslessly, which still honours the bound.
  explicit AbsQuantizer(double eps)
      : eps_(eps),
        inv_(0.5 / eps),
        two_eps_(2.0 * eps),
        degenerate_(!(eps >= static_cast<double>(FT::min_normal))) {
    if (!(eps >= 0.0) || !std::isfinite(eps))
      throw CompressionError("ABS error bound must be finite and non-negative");
  }

  /// Largest usable |bin|: the magnitude-sign encoding (|bin|<<1 | sign) must
  /// stay inside the positive-denormal pattern range [0, 2^mantissa_bits).
  static constexpr i64 max_bin = (i64{1} << (FT::mantissa_bits - 1)) - 1;

  Bits encode(T v) const {
    Bits b = fpmath::to_bits(v);
    if (!fpmath::is_finite_bits<T>(b)) return b;  // NaN/inf: lossless inline
    if (degenerate_) return v == T(0) ? Bits{0} : b;
    double bd = fpmath::round_nearest_even(static_cast<double>(v) * inv_);
    if (bd < static_cast<double>(-max_bin) || bd > static_cast<double>(max_bin)) return b;
    i64 bin = static_cast<i64>(bd);
    T r = reconstruct(bin);
    // Immediate decode-verify (the error-bound guarantee).
    VerifyReal<T> err = static_cast<VerifyReal<T>>(v) - static_cast<VerifyReal<T>>(r);
    if (err < 0) err = -err;
    if (err <= static_cast<VerifyReal<T>>(eps_)) {
      Bits mag = static_cast<Bits>(bin < 0 ? -bin : bin);
      return static_cast<Bits>((mag << 1) | Bits{bin < 0});
    }
    return b;  // unquantizable: store the original bit pattern
  }

  T decode(Bits w) const {
    if (w < FT::denormal_limit) {
      i64 mag = static_cast<i64>(w >> 1);
      return reconstruct((w & 1) ? -mag : mag);
    }
    return fpmath::from_bits<T>(w);
  }

  /// True if a word holds a bin number rather than a raw pattern.
  static bool is_bin(Bits w) { return w < FT::denormal_limit; }

  double eps() const { return eps_; }

 private:
  T reconstruct(i64 bin) const {
    // The decoder performs this exact computation; verifying against it is
    // what makes the guarantee airtight.
    return static_cast<T>(static_cast<double>(bin) * two_eps_);
  }

  double eps_;
  double inv_;
  double two_eps_;
  bool degenerate_;
};

// ---------------------------------------------------------------------------
// REL quantizer: logarithmic-space binning (paper Section III-A).
// ---------------------------------------------------------------------------

template <typename T>
class RelQuantizer {
  using FT = fpmath::FloatTraits<T>;
  using Bits = typename FT::Bits;

 public:
  /// Bin u = 0 is reserved for exact zeros; bins are biased so the encoded
  /// magnitude-sign word fits strictly below 2^mantissa_bits - 1 (the last
  /// pattern is ~(-inf) and must stay distinguishable).
  static constexpr i64 bias = i64{1} << (FT::mantissa_bits - 2);
  static constexpr i64 u_max = 2 * bias - 2;

  /// `log1p_eps` is stored in the compressed header so that compressor and
  /// decompressor agree bit-for-bit even if built with different det_log1p
  /// versions; pass the header value when decoding.
  explicit RelQuantizer(double eps) : RelQuantizer(eps, fpmath::det_log1p(eps)) {}

  RelQuantizer(double eps, double log1p_eps)
      : eps_(eps), scale_(0.5 / log1p_eps), two_log_(2.0 * log1p_eps) {
    if (!(eps > 0.0) || !std::isfinite(eps))
      throw CompressionError("REL error bound must be finite and positive");
  }

  double log1p_eps() const { return two_log_ * 0.5; }

  Bits encode(T v) const {
    Bits b = fpmath::to_bits(v);
    if (fpmath::is_nan_bits<T>(b)) {
      // Free up the negative-NaN range: make every NaN positive, then store
      // it losslessly (payload preserved; only the sign is normalized).
      return static_cast<Bits>(~(b & ~FT::sign_mask));
    }
    if (fpmath::is_inf_bits<T>(b)) return static_cast<Bits>(~b);
    Bits sign = (b & FT::sign_mask) ? Bits{1} : Bits{0};
    if ((b & ~FT::sign_mask) == 0) return sign;  // ±0 -> reserved bin u=0
    double av = static_cast<double>(fpmath::from_bits<T>(b & ~FT::sign_mask));
    double bd = fpmath::round_nearest_even(fpmath::det_log(av) * scale_);
    if (bd < static_cast<double>(1 - bias) || bd > static_cast<double>(u_max - bias))
      return static_cast<Bits>(~b);
    i64 bin = static_cast<i64>(bd);
    T r = reconstruct_abs(bin);
    Bits rb = fpmath::to_bits(r);
    // Verify |v|/(1+eps) <= |r| <= |v|*(1+eps) in the higher verification
    // precision (same convention the test verifier uses); reject infinities
    // (an overflowed reconstruction could spuriously pass when v*(1+eps)
    // overflows too).
    using V = VerifyReal<T>;
    V vav = static_cast<V>(fpmath::from_bits<T>(b & ~FT::sign_mask));
    V vdr = static_cast<V>(r);
    V vop = V(1) + static_cast<V>(eps_);
    bool ok = fpmath::is_finite_bits<T>(rb) && vdr * vop >= vav && vdr <= vav * vop;
    if (!ok) return static_cast<Bits>(~b);
    Bits u = static_cast<Bits>(bin + bias);
    return static_cast<Bits>((u << 1) | sign);
  }

  T decode(Bits w) const {
    if (w < FT::denormal_limit - 1) {  // magnitude-sign bin word
      Bits sign = w & 1;
      i64 u = static_cast<i64>(w >> 1);
      T mag = (u == 0) ? T(0) : reconstruct_abs(u - bias);
      Bits mb = fpmath::to_bits(mag);
      return fpmath::from_bits<T>(static_cast<Bits>(mb | (sign ? FT::sign_mask : Bits{0})));
    }
    return fpmath::from_bits<T>(static_cast<Bits>(~w));
  }

  static bool is_bin(Bits w) { return w < FT::denormal_limit - 1; }

  double eps() const { return eps_; }

 private:
  T reconstruct_abs(i64 bin) const {
    return static_cast<T>(fpmath::det_exp(static_cast<double>(bin) * two_log_));
  }

  double eps_;
  double scale_;
  double two_log_;
};

}  // namespace repro::pfpl
