#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "metrics/error_stats.hpp"
#include "obs/baseline.hpp"
#include "obs/control.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace repro::bench {
namespace {

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

struct FileResult {
  double ratio = 0, comp_mbps = 0, decomp_mbps = 0, psnr = 0;
  std::size_t violations = 0;
  bool ok = false;
  std::vector<double> comp_run_mbps, decomp_run_mbps;  ///< per run, obs only
};

/// Test-only slowdown hook: PFPL_TEST_SLEEP_US injects a sleep into every
/// measured compress call, so the regression gate's fail path can be
/// exercised deterministically (see tests + ISSUE acceptance criteria).
/// Unset in any real benchmark run.
long injected_sleep_us() {
  static const long us = [] {
    const char* e = std::getenv("PFPL_TEST_SLEEP_US");
    return e ? std::atol(e) : 0L;
  }();
  return us;
}

/// Push per-run wall times (seconds) into the RunReport as milliseconds.
void report_runs(const std::string& label, const std::vector<double>& secs) {
  std::vector<double> ms(secs.size());
  for (std::size_t i = 0; i < secs.size(); ++i) ms[i] = secs[i] * 1e3;
  obs::RunReport::global().add_run_times(label, ms);
}

FileResult measure_file(const Compressor& c, const data::SyntheticFile& f, double eps,
                        EbType eb, int runs) {
  FileResult r;
  Field field = f.field();
  try {
    obs::ScopedSpan span(obs::enabled() ? "bench.measure:" + c.name() : std::string());
    // Per-run times feed the RunReport's variance series (only captured when
    // observability is on — an ordinary CSV run allocates nothing extra).
    std::vector<double> comp_runs, decomp_runs;
    std::vector<double>* cap = obs::enabled() ? &comp_runs : nullptr;
    Bytes stream;
    const long sleep_us = injected_sleep_us();
    double tc = median_runtime(
        [&] {
          if (sleep_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          stream = c.compress(field, eps, eb);
        },
        runs, cap);
    std::vector<u8> raw;
    double td = median_runtime([&] { raw = c.decompress(stream); }, runs,
                               cap ? &decomp_runs : nullptr);
    if (cap) {
      char eps_buf[32];
      std::snprintf(eps_buf, sizeof(eps_buf), "%g", eps);
      const std::string base = c.name() + "/" + f.name + "@" + eps_buf;
      report_runs(base + "/compress", comp_runs);
      report_runs(base + "/decompress", decomp_runs);
      for (double t : comp_runs)
        r.comp_run_mbps.push_back(throughput_mbps(field.byte_size(), t));
      for (double t : decomp_runs)
        r.decomp_run_mbps.push_back(throughput_mbps(field.byte_size(), t));
    }
    r.ratio = metrics::compression_ratio(field.byte_size(), stream.size());
    r.comp_mbps = throughput_mbps(field.byte_size(), tc);
    r.decomp_mbps = throughput_mbps(field.byte_size(), td);
    if (f.dtype == DType::F32) {
      std::vector<float> back(raw.size() / 4);
      std::memcpy(back.data(), raw.data(), raw.size());
      auto st = metrics::compute_stats(std::span<const float>(f.f32),
                                       std::span<const float>(back));
      r.psnr = st.psnr;
      r.violations = metrics::count_violations(std::span<const float>(f.f32),
                                               std::span<const float>(back), eps, eb);
    } else {
      std::vector<double> back(raw.size() / 8);
      std::memcpy(back.data(), raw.data(), raw.size());
      auto st = metrics::compute_stats(std::span<const double>(f.f64),
                                       std::span<const double>(back));
      r.psnr = st.psnr;
      r.violations = metrics::count_violations(std::span<const double>(f.f64),
                                               std::span<const double>(back), eps, eb);
    }
    r.ok = true;
  } catch (const CompressionError&) {
    r.ok = false;  // unsupported input shape etc.: skip, as the paper skips
  }
  return r;
}

/// Rows queued for the --json document, written once at process exit.
struct JsonSink {
  std::string path;
  std::string trace_path;
  std::vector<FigureRow> rows;
};

JsonSink& json_sink() {
  static JsonSink s;
  return s;
}

void flush_json_sink() {
  JsonSink& s = json_sink();
  if (!s.trace_path.empty()) {
    try {
      obs::TraceRecorder::global().write_chrome_json(s.trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
    }
  }
  if (s.path.empty()) return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("rows").raw(rows_json(s.rows));
  w.key("report").raw(obs::RunReport::global().json());
  w.end_object();
  std::string doc = w.take();
  std::FILE* f = std::fopen(s.path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench: cannot open json output '%s'\n", s.path.c_str());
    return;
  }
  if (std::fwrite(doc.data(), 1, doc.size(), f) != doc.size())
    std::fprintf(stderr, "bench: short write to '%s'\n", s.path.c_str());
  std::fclose(f);
}

void register_sink_flush() {
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(flush_json_sink);
  }
}

/// Baseline/gate state for the process: where the baseline lives, whether we
/// are writing or comparing, and every metric sample print_rows collected.
struct GateState {
  std::string baseline_path;
  bool update = false;
  double gate_pct = 0;
  std::map<std::string, std::vector<double>> samples;
  /// Advisory latency samples (µs) from record_advisory_us — summarized
  /// lower-is-better + advisory, so they warn but never fail the gate.
  std::map<std::string, std::vector<double>> advisory;
  /// Figures this process actually ran (first key segment) — the update path
  /// uses it to retire stale keys without clobbering other benches' figures.
  std::set<std::string> figures;

  bool active() const { return update || !baseline_path.empty(); }
};

GateState& gate_state() {
  static GateState g;
  return g;
}

void record_sample(const std::string& key, double v) { gate_state().samples[key].push_back(v); }

void record_samples(const std::string& key, const std::vector<double>& vs) {
  auto& dst = gate_state().samples[key];
  dst.insert(dst.end(), vs.begin(), vs.end());
}

}  // namespace

SweepConfig parse_args(int argc, char** argv, SweepConfig cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--target") cfg.target_values = std::strtoull(next(), nullptr, 10);
    else if (a == "--files") cfg.max_files = std::atoi(next());
    else if (a == "--runs") cfg.runs = std::atoi(next());
    else if (a == "--json") {
      cfg.json_path = next();
      set_json_output(cfg.json_path);
    } else if (a == "--trace") {
      json_sink().trace_path = next();
      obs::set_enabled(true);
      register_sink_flush();
    } else if (a == "--csv-header") {
      std::printf("%s\n", csv_header());
      std::exit(0);
    } else if (a == "--baseline") {
      cfg.baseline_path = next();
      gate_state().baseline_path = cfg.baseline_path;
      obs::set_enabled(true);  // per-run capture feeds the MAD summaries
    } else if (a == "--update-baseline") {
      cfg.update_baseline = true;
      gate_state().update = true;
      obs::set_enabled(true);
    } else if (a == "--gate") {
      cfg.gate_pct = std::atof(next());
      gate_state().gate_pct = cfg.gate_pct;
    } else if (a == "--full") {
      cfg.runs = 9;
      cfg.target_values = 1 << 20;
      cfg.max_files = 4;
    }
  }
  return cfg;
}

std::vector<Row> run_sweep(const SweepConfig& cfg) {
  // Generate matching suites once.
  std::vector<data::Suite> suites;
  for (const auto& spec : data::paper_suites()) {
    if (spec.dtype != cfg.dtype) continue;
    if (cfg.exclude_non_3d && (spec.kind == "exaalt" || spec.kind == "hacc")) continue;
    suites.push_back(data::generate(spec, cfg.target_values, cfg.max_files));
  }

  std::vector<Row> rows;
  for (const auto& comp : baselines::all_compressors()) {
    Features feat = comp->features();
    if (!feat.supports(cfg.eb)) continue;
    if (cfg.dtype == DType::F32 && !feat.f32) continue;
    if (cfg.dtype == DType::F64 && !feat.f64) continue;
    if (contains(cfg.exclude_compressors, comp->name())) continue;
    if (!cfg.only_compressors.empty() && !contains(cfg.only_compressors, comp->name()))
      continue;
    for (double eps : cfg.bounds) {
      const std::size_t runs = cfg.runs > 0 ? static_cast<std::size_t>(cfg.runs) : 1;
      std::vector<double> suite_ratio, suite_comp, suite_decomp, suite_psnr;
      // Per-run row samples: the same nested geomean the median columns use,
      // computed per run index r — [run][suite geomeans].
      std::vector<std::vector<double>> run_comp(runs), run_decomp(runs);
      std::size_t violations = 0;
      for (const auto& suite : suites) {
        std::vector<double> fr, fc, fd, fp;
        std::vector<std::vector<double>> frun_c(runs), frun_d(runs);
        for (const auto& file : suite.files) {
          FileResult r = measure_file(*comp, file, eps, cfg.eb, cfg.runs);
          if (!r.ok) continue;
          fr.push_back(r.ratio);
          fc.push_back(r.comp_mbps);
          fd.push_back(r.decomp_mbps);
          if (std::isfinite(r.psnr)) fp.push_back(r.psnr);
          violations += r.violations;
          if (r.comp_run_mbps.size() == runs && r.decomp_run_mbps.size() == runs) {
            for (std::size_t i = 0; i < runs; ++i) {
              frun_c[i].push_back(r.comp_run_mbps[i]);
              frun_d[i].push_back(r.decomp_run_mbps[i]);
            }
          }
        }
        if (fr.empty()) continue;
        suite_ratio.push_back(metrics::geomean(fr));
        suite_comp.push_back(metrics::geomean(fc));
        suite_decomp.push_back(metrics::geomean(fd));
        if (!fp.empty()) suite_psnr.push_back(metrics::geomean(fp));
        for (std::size_t i = 0; i < runs; ++i) {
          if (!frun_c[i].empty()) run_comp[i].push_back(metrics::geomean(frun_c[i]));
          if (!frun_d[i].empty()) run_decomp[i].push_back(metrics::geomean(frun_d[i]));
        }
      }
      if (suite_ratio.empty()) continue;
      Row row;
      row.compressor = comp->name();
      row.eb = eps;
      row.ratio = metrics::geomean(suite_ratio);
      row.comp_mbps = metrics::geomean(suite_comp);
      row.decomp_mbps = metrics::geomean(suite_decomp);
      row.psnr_db = metrics::geomean(suite_psnr);
      row.violations = violations;
      for (std::size_t i = 0; i < runs; ++i) {
        if (!run_comp[i].empty()) row.comp_run_mbps.push_back(metrics::geomean(run_comp[i]));
        if (!run_decomp[i].empty())
          row.decomp_run_mbps.push_back(metrics::geomean(run_decomp[i]));
      }
      rows.push_back(row);
    }
  }
  mark_pareto(rows);
  return rows;
}

void mark_pareto(std::vector<Row>& rows) {
  for (Row& r : rows) {
    bool dom_c = false, dom_d = false;
    for (const Row& o : rows) {
      if (&o == &r || o.eb != r.eb) continue;
      if (o.ratio >= r.ratio && o.comp_mbps >= r.comp_mbps &&
          (o.ratio > r.ratio || o.comp_mbps > r.comp_mbps))
        dom_c = true;
      if (o.ratio >= r.ratio && o.decomp_mbps >= r.decomp_mbps &&
          (o.ratio > r.ratio || o.decomp_mbps > r.decomp_mbps))
        dom_d = true;
    }
    r.pareto_compress = !dom_c;
    r.pareto_decompress = !dom_d;
  }
}

const char* csv_header() {
  return "figure,compressor,eb,ratio,comp_MBps,decomp_MBps,psnr_dB,violations,"
         "pareto_comp,pareto_decomp";
}

void print_rows(const std::string& figure, const std::vector<Row>& rows) {
  // Figure banners go to stderr: stdout stays pure CSV — one header, then
  // rows — so `bench > out.csv` ingests directly into cut/pandas even when
  // one binary prints several figures.
  std::fprintf(stderr, "# %s\n", figure.c_str());
  static bool header_printed = false;
  if (!header_printed) {
    header_printed = true;
    std::printf("%s\n", csv_header());
  }
  // Unmeasured cells print empty (not 0.00) so downstream pandas reads NaN
  // instead of a fake measurement.
  auto cell = [](bool has, const char* fmt, double v) {
    char buf[48];
    if (!has) return std::string();
    std::snprintf(buf, sizeof(buf), fmt, v);
    return std::string(buf);
  };
  for (const Row& r : rows)
    std::printf("%s,%s,%g,%s,%s,%s,%s,%s,%d,%d\n", figure.c_str(), r.compressor.c_str(),
                r.eb, cell(r.has_ratio, "%.3f", r.ratio).c_str(),
                cell(r.has_comp, "%.2f", r.comp_mbps).c_str(),
                cell(r.has_decomp, "%.2f", r.decomp_mbps).c_str(),
                cell(r.has_psnr, "%.2f", r.psnr_db).c_str(),
                cell(r.has_violations, "%.0f", static_cast<double>(r.violations)).c_str(),
                r.pareto_compress ? 1 : 0, r.pareto_decompress ? 1 : 0);
  std::fflush(stdout);
  JsonSink& sink = json_sink();
  if (!sink.path.empty())
    for (const Row& r : rows) sink.rows.emplace_back(figure, r);
  if (gate_state().active()) {
    // Accumulate baseline samples keyed "<figure>/<compressor>@<eps>/<metric>".
    // Metrics the row didn't measure are skipped entirely: a dead key in the
    // baseline would compare 0 against 0 forever and dilute the gate table.
    gate_state().figures.insert(figure);
    for (const Row& r : rows) {
      char eps_buf[32];
      std::snprintf(eps_buf, sizeof(eps_buf), "%g", r.eb);
      const std::string base = figure + "/" + r.compressor + "@" + eps_buf + "/";
      if (r.has_ratio) record_sample(base + "ratio", r.ratio);
      if (r.has_psnr) record_sample(base + "psnr_dB", r.psnr_db);
      if (r.has_violations)
        record_sample(base + "violations", static_cast<double>(r.violations));
      if (r.has_comp) {
        if (!r.comp_run_mbps.empty())
          record_samples(base + "comp_MBps", r.comp_run_mbps);
        else
          record_sample(base + "comp_MBps", r.comp_mbps);
      }
      if (r.has_decomp) {
        if (!r.decomp_run_mbps.empty())
          record_samples(base + "decomp_MBps", r.decomp_run_mbps);
        else
          record_sample(base + "decomp_MBps", r.decomp_mbps);
      }
    }
  }
}

std::string rows_json(const std::vector<FigureRow>& rows) {
  obs::JsonWriter w;
  w.begin_array();
  for (const auto& [figure, r] : rows) {
    w.begin_object();
    w.kv("figure", figure);
    w.kv("compressor", r.compressor);
    w.kv("eb", r.eb);
    w.kv("ratio", r.ratio);
    w.kv("comp_MBps", r.comp_mbps);
    w.kv("decomp_MBps", r.decomp_mbps);
    w.kv("psnr_dB", r.psnr_db);
    w.kv("violations", static_cast<unsigned long long>(r.violations));
    w.kv("pareto_comp", r.pareto_compress);
    w.kv("pareto_decomp", r.pareto_decompress);
    w.end_object();
  }
  w.end_array();
  return w.take();
}

void set_json_output(const std::string& path) {
  json_sink().path = path;
  obs::set_enabled(true);
  register_sink_flush();
}

void record_advisory_us(const std::string& key, const std::vector<double>& us) {
  if (!gate_state().active() || us.empty()) return;
  auto& dst = gate_state().advisory["adv/" + key];
  dst.insert(dst.end(), us.begin(), us.end());
}

namespace {

/// Direction of "better" for a row-metric key suffix.
obs::Better better_of(const std::string& key) {
  // Bound violations and latencies regress upward; everything else
  // (throughput, ratio, PSNR) regresses downward.
  if (key.size() >= 11 && key.compare(key.size() - 11, 11, "/violations") == 0)
    return obs::Better::Lower;
  return obs::Better::Higher;
}

std::string unit_of(const std::string& key) {
  auto ends_with = [&](const char* s) {
    const std::size_t n = std::strlen(s);
    return key.size() >= n && key.compare(key.size() - n, n, s) == 0;
  };
  if (ends_with("MBps")) return "MB/s";
  if (ends_with("ratio")) return "x";
  if (ends_with("psnr_dB")) return "dB";
  return "";
}

/// Current-run metric summaries: every row sample print_rows collected plus
/// p50/p95/p99 of the microsecond latency histograms (advisory — the coarse
/// exponential buckets make the estimates indicative, so they warn, never
/// fail).
std::map<std::string, obs::BaselineMetric> current_metrics() {
  std::map<std::string, obs::BaselineMetric> out;
  for (const auto& [key, samples] : gate_state().samples)
    out[key] = obs::summarize_samples(samples, better_of(key), unit_of(key));
  for (const auto& [key, samples] : gate_state().advisory)
    out[key] = obs::summarize_samples(samples, obs::Better::Lower, "us",
                                      /*advisory=*/true);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (const std::string& name : reg.histogram_names()) {
    if (name.size() < 3 || name.compare(name.size() - 3, 3, "_us") != 0) continue;
    obs::Histogram& h = reg.histogram(name);
    if (h.count() == 0) continue;
    const std::pair<const char*, double> quantiles[] = {
        {"p50", h.p50()}, {"p95", h.p95()}, {"p99", h.p99()}};
    for (const auto& [q, v] : quantiles)
      out["hist/" + name + "/" + q] =
          obs::summarize_samples({v}, obs::Better::Lower, "us", /*advisory=*/true);
  }
  return out;
}

}  // namespace

int finish() {
  GateState& g = gate_state();
  if (!g.active()) return 0;
  std::map<std::string, obs::BaselineMetric> current = current_metrics();

  if (g.update) {
    obs::BaselineDoc doc;
    const std::string path = g.baseline_path.empty() ? "BENCH_baseline.json" : g.baseline_path;
    doc.tag = "baseline";
    doc.meta["schema_note"] = "medians+MAD of bench rows; hist/* are latency quantiles";
    doc.meta["csv_header"] = csv_header();
    // The committed baseline is the union of several bench binaries'
    // figures, but BaselineStore::save rewrites the whole file — so merge:
    // keys from figures this process re-ran are replaced wholesale (stale
    // rows retire), every other bench's keys are carried forward, and the
    // current run wins on collision. hist/* and adv/* keys merge
    // current-wins the same way.
    try {
      obs::BaselineDoc old = obs::BaselineStore::load(path);
      for (const auto& [key, m] : old.metrics) {
        if (current.count(key)) continue;
        const std::string fig = key.substr(0, key.find('/'));
        if (g.figures.count(fig)) continue;  // re-run figure: key retired
        current[key] = m;
      }
    } catch (const std::exception&) {
      // No previous baseline (or unreadable): write the current run alone.
    }
    doc.metrics = std::move(current);
    try {
      obs::BaselineStore::save(path, doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "bench: wrote baseline '%s' (%zu metrics)\n", path.c_str(),
                 doc.metrics.size());
    return 0;
  }

  obs::BaselineDoc baseline;
  try {
    baseline = obs::BaselineStore::load(g.baseline_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench: %s\n", e.what());
    return 1;
  }
  obs::GateConfig cfg;
  if (g.gate_pct > 0) cfg.pct = g.gate_pct;
  obs::GateResult res = obs::RegressionGate(cfg).compare(baseline, current);
  // Verdict table to stderr (stdout stays pure CSV); JSON verdicts ride the
  // RunReport so a --json document carries them under "report"."sections".
  std::fprintf(stderr, "%s", res.table().c_str());
  obs::RunReport::global().add_section("gate", res.json());
  if (g.gate_pct <= 0) return 0;  // informational comparison only
  return res.exit_code();
}

}  // namespace repro::bench
