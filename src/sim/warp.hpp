// Warp-level primitives of the CUDA implementation, simulated in lockstep.
//
// The paper's GPU bit-shuffle "operate[s] at warp granularity, where each
// warp is independently responsible for a chunk of 32 or 64 values. They
// employ log2(wordsize) shuffling steps, which are implemented using warp
// shuffle instructions" (Section III-E). We model a warp as `wordbits` lanes
// executing in lockstep; `shfl_xor` is a plain array read of the partner
// lane. The point of this module is to run the *GPU algorithm* — the same
// butterfly exchange network the CUDA kernels use — and let the test suite
// assert that its output is bit-for-bit identical to the CPU pipeline.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace repro::sim {

/// Butterfly (masked-swap) bit transpose across one simulated warp.
/// `lane[i]` holds the register of lane i; all lanes advance together through
/// the log2(W) shuffle steps exactly as the SIMT code would.
template <typename U>
void warp_transpose_bits(U* lane) {
  constexpr u32 W = sizeof(U) * 8;
  U m = static_cast<U>((~U{0}) >> (W / 2));  // low-half mask
  for (u32 j = W / 2; j != 0; j >>= 1, m ^= static_cast<U>(m << j)) {
    std::array<U, W> next;
    for (u32 k = 0; k < W; ++k) {
      U mine = lane[k];
      U other = lane[k ^ j];  // __shfl_xor_sync(mask, mine, j)
      if ((k & j) == 0) {
        U t = static_cast<U>((mine ^ (other >> j)) & m);
        next[k] = mine ^ t;
      } else {
        U t = static_cast<U>((other ^ (mine >> j)) & m);
        next[k] = mine ^ static_cast<U>(t << j);
      }
    }
    for (u32 k = 0; k < W; ++k) lane[k] = next[k];
  }
}

}  // namespace repro::sim
