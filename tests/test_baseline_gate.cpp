// Baseline store + regression gate: summaries, verdict logic, document
// round-trips, and a golden parse-back of the committed BENCH_baseline.json.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "obs/baseline.hpp"
#include "obs/json.hpp"

using namespace repro;
using namespace repro::obs;

namespace {

/// Unique temp path per test (no collisions under ctest -j).
std::string tmp_path(const char* stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".json"))
      .string();
}

BaselineMetric metric(double median, double mad, u64 n = 3,
                      Better better = Better::Higher, bool advisory = false) {
  BaselineMetric m;
  m.median = median;
  m.mad = mad;
  m.n = n;
  m.better = better;
  m.advisory = advisory;
  return m;
}

const GateRow* find_row(const GateResult& res, const std::string& name) {
  for (const GateRow& r : res.rows)
    if (r.metric == name) return &r;
  return nullptr;
}

}  // namespace

TEST(Baseline, MedianAndMad) {
  EXPECT_EQ(median_of({}), 0.0);
  EXPECT_EQ(median_of({7.0}), 7.0);
  EXPECT_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);  // even count: midpoint
  EXPECT_EQ(mad_of({5.0}), 0.0);
  // {1,2,3,4,100}: median 3, |x-3| = {2,1,0,1,97}, MAD 1 — outlier-robust.
  EXPECT_EQ(mad_of({1.0, 2.0, 3.0, 4.0, 100.0}), 1.0);
}

TEST(Baseline, SummarizeDropsNonFiniteSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  BaselineMetric m = summarize_samples({10.0, nan, 12.0, inf, 11.0}, Better::Higher, "MB/s");
  EXPECT_EQ(m.n, 3u);
  EXPECT_EQ(m.median, 11.0);
  EXPECT_TRUE(std::isfinite(m.mad));
  EXPECT_EQ(m.unit, "MB/s");

  BaselineMetric empty = summarize_samples({nan, nan}, Better::Lower);
  EXPECT_EQ(empty.n, 0u);  // nothing valid measured -> gate will Skip
}

TEST(Baseline, DocJsonRoundTrip) {
  BaselineDoc doc;
  doc.tag = "test";
  doc.meta["host"] = "ci";
  doc.metrics["a/ratio"] = metric(5.25, 0.125, 3, Better::Higher);
  doc.metrics["a/violations"] = metric(0.0, 0.0, 1, Better::Lower);
  doc.metrics["hist/x/p99"] = metric(250.0, 10.0, 5, Better::Lower, /*advisory=*/true);

  BaselineDoc back = BaselineDoc::from_json(doc.json());
  EXPECT_EQ(back.tag, "test");
  EXPECT_EQ(back.meta.at("host"), "ci");
  ASSERT_EQ(back.metrics.size(), 3u);
  EXPECT_EQ(back.metrics.at("a/ratio").median, 5.25);
  EXPECT_EQ(back.metrics.at("a/ratio").mad, 0.125);
  EXPECT_EQ(back.metrics.at("a/ratio").better, Better::Higher);
  EXPECT_EQ(back.metrics.at("a/violations").better, Better::Lower);
  EXPECT_TRUE(back.metrics.at("hist/x/p99").advisory);
  EXPECT_FALSE(back.metrics.at("a/ratio").advisory);
}

TEST(Baseline, FromJsonRejectsBadDocuments) {
  EXPECT_THROW(BaselineDoc::from_json("not json"), CompressionError);
  EXPECT_THROW(BaselineDoc::from_json("{}"), CompressionError);  // no schema marker
  EXPECT_THROW(BaselineDoc::from_json(R"({"schema":"other/9","metrics":{}})"),
               CompressionError);
}

TEST(Baseline, StoreSaveLoadAndMissingFile) {
  const std::string path = tmp_path("pfpl_baseline_roundtrip");
  BaselineDoc doc;
  doc.metrics["m"] = metric(1.0, 0.0, 1);
  BaselineStore::save(path, doc);
  BaselineDoc back = BaselineStore::load(path);
  EXPECT_EQ(back.metrics.size(), 1u);
  std::filesystem::remove(path);

  EXPECT_THROW(BaselineStore::load(path), CompressionError);  // now missing

  // Empty file: present but unparseable.
  { std::ofstream(path).close(); }
  EXPECT_THROW(BaselineStore::load(path), CompressionError);
  std::filesystem::remove(path);
}

TEST(Gate, PassWarnFailBothDirections) {
  BaselineDoc base;
  base.metrics["thr"] = metric(100.0, 0.0, 3, Better::Higher);
  base.metrics["lat"] = metric(100.0, 0.0, 3, Better::Lower);
  GateConfig cfg;
  cfg.pct = 20.0;
  cfg.warn_fraction = 0.5;
  RegressionGate gate(cfg);

  auto run = [&](double thr, double lat) {
    std::map<std::string, BaselineMetric> cur;
    cur["thr"] = metric(thr, 0.0, 3, Better::Higher);
    cur["lat"] = metric(lat, 0.0, 3, Better::Lower);
    return gate.compare(base, cur);
  };

  // Small drift (5% < half the 20% allowance) passes; improvement passes.
  GateResult ok = run(95.0, 95.0);
  EXPECT_EQ(find_row(ok, "thr")->verdict, Verdict::Pass);
  EXPECT_EQ(find_row(ok, "lat")->verdict, Verdict::Pass);
  EXPECT_FALSE(ok.failed());
  EXPECT_EQ(ok.exit_code(), 0);

  // 15% degradation: beyond warn_fraction * 20% but under 20% -> Warn.
  // Higher-better degrades downward, lower-better degrades upward.
  GateResult warn = run(85.0, 115.0);
  EXPECT_EQ(find_row(warn, "thr")->verdict, Verdict::Warn);
  EXPECT_EQ(find_row(warn, "lat")->verdict, Verdict::Warn);
  EXPECT_FALSE(warn.failed());

  // 30% degradation on both -> Fail, exit 3. A 30% *improvement* on the
  // other axis must not fail (run each direction separately).
  GateResult fail_thr = run(70.0, 70.0);
  EXPECT_EQ(find_row(fail_thr, "thr")->verdict, Verdict::Fail);
  EXPECT_EQ(find_row(fail_thr, "lat")->verdict, Verdict::Pass);  // latency improved
  GateResult fail_lat = run(130.0, 130.0);
  EXPECT_EQ(find_row(fail_lat, "thr")->verdict, Verdict::Pass);  // throughput improved
  EXPECT_EQ(find_row(fail_lat, "lat")->verdict, Verdict::Fail);
  EXPECT_TRUE(fail_lat.failed());
  EXPECT_EQ(fail_lat.exit_code(), 3);
}

TEST(Gate, MadWidensTheAllowance) {
  // Noisy metric: relative MAD 10%, mad_k 4 -> 40% allowance beats pct=20.
  BaselineDoc base;
  base.metrics["noisy"] = metric(100.0, 10.0, 5, Better::Higher);
  base.metrics["quiet"] = metric(100.0, 0.0, 5, Better::Higher);
  GateConfig cfg;
  cfg.pct = 20.0;
  cfg.mad_k = 4.0;
  RegressionGate gate(cfg);

  std::map<std::string, BaselineMetric> cur;
  cur["noisy"] = metric(65.0, 10.0, 5, Better::Higher);  // -35%: inside 40%
  cur["quiet"] = metric(65.0, 0.0, 5, Better::Higher);   // -35%: beyond flat 20%
  GateResult res = gate.compare(base, cur);
  EXPECT_NE(find_row(res, "noisy")->verdict, Verdict::Fail);
  EXPECT_DOUBLE_EQ(find_row(res, "noisy")->allowed_pct, 40.0);
  EXPECT_EQ(find_row(res, "quiet")->verdict, Verdict::Fail);  // MAD=0 -> flat pct
  EXPECT_DOUBLE_EQ(find_row(res, "quiet")->allowed_pct, 20.0);
}

TEST(Gate, ZeroBaselineLowerBetterFailsOnAnyIncrease) {
  // The "zero bound violations" invariant: baseline 0, lower-better, any
  // increase fails regardless of pct (a percent of zero is meaningless).
  BaselineDoc base;
  base.metrics["violations"] = metric(0.0, 0.0, 1, Better::Lower);
  RegressionGate gate;  // default pct=25

  std::map<std::string, BaselineMetric> clean, dirty;
  clean["violations"] = metric(0.0, 0.0, 1, Better::Lower);
  dirty["violations"] = metric(1.0, 0.0, 1, Better::Lower);
  EXPECT_EQ(find_row(gate.compare(base, clean), "violations")->verdict, Verdict::Pass);
  GateResult res = gate.compare(base, dirty);
  EXPECT_EQ(find_row(res, "violations")->verdict, Verdict::Fail);
  EXPECT_EQ(res.exit_code(), 3);
}

TEST(Gate, AdvisoryMetricsWarnButNeverFail) {
  BaselineDoc base;
  base.metrics["hist/enc/p99"] = metric(100.0, 0.0, 1, Better::Lower, /*advisory=*/true);
  std::map<std::string, BaselineMetric> cur;
  cur["hist/enc/p99"] = metric(400.0, 0.0, 1, Better::Lower, /*advisory=*/true);
  GateResult res = RegressionGate().compare(base, cur);  // +300%, way past pct
  EXPECT_EQ(find_row(res, "hist/enc/p99")->verdict, Verdict::Warn);
  EXPECT_FALSE(res.failed());
}

TEST(Gate, NewMissingAndSkipVerdicts) {
  BaselineDoc base;
  base.metrics["gone"] = metric(1.0, 0.0, 3);
  base.metrics["nan"] = metric(1.0, 0.0, 3);
  base.metrics["unmeasured"] = metric(1.0, 0.0, 0);  // n == 0: nothing valid
  std::map<std::string, BaselineMetric> cur;
  cur["nan"] = metric(std::numeric_limits<double>::quiet_NaN(), 0.0, 3);
  cur["unmeasured"] = metric(1.0, 0.0, 3);
  cur["fresh"] = metric(2.0, 0.0, 3);
  GateResult res = RegressionGate().compare(base, cur);
  EXPECT_EQ(find_row(res, "gone")->verdict, Verdict::Missing);
  EXPECT_EQ(find_row(res, "nan")->verdict, Verdict::Skip);        // NaN current
  EXPECT_EQ(find_row(res, "unmeasured")->verdict, Verdict::Skip); // n==0 baseline
  EXPECT_EQ(find_row(res, "fresh")->verdict, Verdict::New);
  EXPECT_FALSE(res.failed());  // informational by default...

  GateConfig strict;
  strict.fail_on_new = true;
  strict.fail_on_missing = true;
  GateResult hard = RegressionGate(strict).compare(base, cur);
  EXPECT_EQ(find_row(hard, "gone")->verdict, Verdict::Fail);
  EXPECT_EQ(find_row(hard, "fresh")->verdict, Verdict::Fail);  // ...unless escalated
}

TEST(Gate, ResultJsonParsesAndTallies) {
  BaselineDoc base;
  base.metrics["a"] = metric(100.0, 0.0, 3);
  base.metrics["b"] = metric(100.0, 0.0, 3);
  std::map<std::string, BaselineMetric> cur;
  cur["a"] = metric(100.0, 0.0, 3);
  cur["b"] = metric(10.0, 0.0, 3);  // -90%: fail
  GateResult res = RegressionGate().compare(base, cur);
  EXPECT_EQ(res.passes, 1);
  EXPECT_EQ(res.fails, 1);

  JsonValue v = parse_json(res.json());
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.at("rows").is_array());
  EXPECT_EQ(v.at("rows").arr.size(), 2u);
  EXPECT_EQ(v.at("fails").num, 1.0);
  bool saw_fail = false;
  for (const JsonValue& row : v.at("rows").arr)
    if (row.at("verdict").str == "fail") saw_fail = true;
  EXPECT_TRUE(saw_fail);
  // Human table mentions every metric and the summary line.
  std::string table = res.table();
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("fail"), std::string::npos);
}

TEST(Gate, CommittedBaselineGolden) {
  // The committed BENCH_baseline.json must stay loadable with sane contents —
  // this is the file CI gates against.
  const std::string path = std::string(REPRO_SOURCE_DIR) + "/BENCH_baseline.json";
  BaselineDoc doc = BaselineStore::load(path);
  EXPECT_FALSE(doc.metrics.empty());
  bool saw_violations = false;
  for (const auto& [name, m] : doc.metrics) {
    EXPECT_TRUE(std::isfinite(m.median)) << name;
    EXPECT_TRUE(std::isfinite(m.mad)) << name;
    if (name.find("/violations") != std::string::npos) {
      saw_violations = true;
      EXPECT_EQ(m.median, 0.0) << name;  // zero-violations invariant
      EXPECT_EQ(m.better, Better::Lower) << name;
    }
  }
  EXPECT_TRUE(saw_violations);
  // Comparing the baseline against itself is all-Pass by construction.
  GateResult self = RegressionGate().compare(doc, doc.metrics);
  EXPECT_FALSE(self.failed());
  EXPECT_EQ(self.warns, 0);
}
