// Shared benchmark harness: reproduces the paper's measurement protocol
// (Section IV) — median-of-N runs of the compression/decompression functions
// only, geometric mean of per-suite geometric means, compressors excluded
// per-figure the way the paper excludes them, Pareto-front marking.
//
// Every figure bench prints CSV-style rows:
//   figure, compressor, device, eb, ratio, comp_MBps, decomp_MBps, psnr_db, violations
// which are the same series the paper plots.
#pragma once

#include <string>
#include <vector>

#include "common/compressor.hpp"
#include "data/synthetic.hpp"

namespace repro::bench {

struct SweepConfig {
  std::vector<double> bounds{1e-1, 1e-2, 1e-3, 1e-4};  // paper's 4 bounds
  EbType eb = EbType::ABS;
  DType dtype = DType::F32;
  bool exclude_non_3d = false;  ///< the paper's EXAALT/HACC exclusion
  std::vector<std::string> exclude_compressors;
  std::vector<std::string> only_compressors;  ///< empty = all supporting eb
  std::size_t target_values = 1 << 16;        ///< per generated file
  int max_files = 2;                          ///< per suite
  int runs = 3;  ///< medians over this many runs (paper: 9)
  std::string json_path;  ///< --json FILE: machine-readable rows + RunReport
  std::string baseline_path;     ///< --baseline FILE: compare against / write to
  bool update_baseline = false;  ///< --update-baseline: write instead of compare
  double gate_pct = 0;           ///< --gate PCT: enforce (exit 3 on fail)
};

/// Parse common CLI flags: --target N --files N --runs N --full (paper-scale
/// protocol: runs=9, larger inputs), --json FILE (write every row plus the
/// obs RunReport to FILE at process exit; also enables observability so
/// per-run times and stage metrics are captured), --csv-header (print the
/// CSV header line and exit — lets scripts fetch the schema without running
/// a sweep), --trace FILE (write a Chrome trace of the sweep at exit),
/// --baseline FILE / --update-baseline / --gate PCT (perf-regression gating,
/// evaluated by finish()).
SweepConfig parse_args(int argc, char** argv, SweepConfig base);

struct Row {
  std::string compressor;
  double eb = 0;
  double ratio = 0;        ///< geo-mean over suites of per-suite geo-means
  double comp_mbps = 0;    ///< uncompressed MB / s
  double decomp_mbps = 0;
  double psnr_db = 0;
  std::size_t violations = 0;  ///< total bound violations observed
  bool pareto_compress = false;
  bool pareto_decompress = false;
  /// Which columns this row actually measured. A throughput-only bench (the
  /// ingest/store/kernel rows) has no decompression pass, PSNR, or violation
  /// count — those cells print empty in the CSV and are never recorded as
  /// baseline samples, so the regression gate never "passes" on a metric
  /// that is structurally always zero.
  bool has_ratio = true, has_comp = true, has_decomp = true;
  bool has_psnr = true, has_violations = true;
  /// Per-run row-level throughput samples (same nested-geomean aggregation
  /// as the median columns, computed per run index). Only populated while
  /// observability is on — they feed the baseline's median/MAD summaries.
  std::vector<double> comp_run_mbps;
  std::vector<double> decomp_run_mbps;
};

/// Run the full sweep: every registered compressor that supports the
/// figure's bound type and dtype, over the matching suites, at each bound.
std::vector<Row> run_sweep(const SweepConfig& cfg);

/// Mark Pareto-optimal rows per bound (ratio vs. throughput, both
/// higher-is-better), mirroring the paper's light-blue Pareto fronts.
void mark_pareto(std::vector<Row>& rows);

/// The documented CSV schema (no trailing newline).
const char* csv_header();

/// Print the rows as CSV on stdout. The header line is emitted exactly once
/// per process (before the first row), and the figure banner goes to stderr,
/// so stdout is directly ingestible by cut/pandas across multi-figure
/// benches. When a --json sink is active the rows are also queued for it.
void print_rows(const std::string& figure, const std::vector<Row>& rows);

/// One figure's worth of rows in the JSON output.
using FigureRow = std::pair<std::string, Row>;  // (figure, row)

/// Render rows as a JSON array of objects (one per row, with a "figure"
/// field) — the same shape `--json` writes under the top-level "rows" key.
std::string rows_json(const std::vector<FigureRow>& rows);

/// Route subsequent print_rows() calls into a JSON document written to
/// `path` at process exit ({"rows":[...], "report": <obs RunReport>}).
/// Enables observability (obs::set_enabled) so the report has content.
void set_json_output(const std::string& path);

/// Record client-observed latency samples (microseconds) under "adv/<key>".
/// finish() summarizes them (median + MAD) into the baseline as ADVISORY
/// lower-is-better metrics: a regression prints a warning in the gate table
/// but never fails the run, and exact samples beat the coarse exponential
/// buckets the automatic hist/* capture works from. No-op unless
/// --baseline/--update-baseline is active (matches the row-sample
/// accumulation in print_rows).
void record_advisory_us(const std::string& key, const std::vector<double>& us);

/// Finalize the run for baseline/gate purposes; every bench main returns
/// finish() as its exit code. When `--update-baseline` was given, writes the
/// accumulated row metrics (plus latency-histogram quantiles) to the
/// baseline file and returns 0. When `--baseline FILE` was given, compares
/// the current run against it, prints the verdict table to stderr, folds the
/// JSON verdicts into the RunReport ("gate" section), and returns 3 if
/// `--gate PCT` was given and any metric failed. Without baseline flags it
/// is a no-op returning 0.
int finish();

}  // namespace repro::bench
