#include "net/frame.hpp"

#include <cstring>

#include "common/checksum.hpp"

namespace repro::net {
namespace {

// Little-endian wire primitives (byte-portable: no host-order assumptions).
template <typename T>
void put_le(u8* p, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

template <typename T>
T get_le(const u8* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(p[i]) << (8 * i);
  return v;
}

void put_f64(u8* p, double v) {
  u64 bits;
  std::memcpy(&bits, &v, 8);
  put_le<u64>(p, bits);
}

double get_f64(const u8* p) {
  u64 bits = get_le<u64>(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

// Wire layout of the 40-byte frame header (docs/FORMAT.md §PFPN):
//   0  u32 magic        4  u16 version    6  u8 op        7  u8 dtype
//   8  u16 status      10  u8 eb_type    11  u8 reserved
//  12  u32 payload_crc 16  f64 eps       24  u64 request_id
//  32  u64 payload_len
void encode_header(u8* p, const FrameHeader& h) {
  put_le<u32>(p + 0, kFrameMagic);
  put_le<u16>(p + 4, kProtocolVersion);
  p[6] = h.op;
  p[7] = h.dtype;
  put_le<u16>(p + 8, h.status);
  p[10] = h.eb_type;
  p[11] = 0;
  put_le<u32>(p + 12, h.payload_crc);
  put_f64(p + 16, h.eps);
  put_le<u64>(p + 24, h.request_id);
  put_le<u64>(p + 32, h.payload_len);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::Compress: return "COMPRESS";
    case Op::Decompress: return "DECOMPRESS";
    case Op::Stats: return "STATS";
    case Op::Ping: return "PING";
    case Op::Shutdown: return "SHUTDOWN";
    case Op::Metrics: return "METRICS";
    case Op::ShardMap: return "SHARDMAP";
    case Op::Health: return "HEALTH";
    case Op::StreamOpen: return "STREAM_OPEN";
    case Op::StreamFrame: return "STREAM_FRAME";
    case Op::StreamClose: return "STREAM_CLOSE";
  }
  return "?";
}

const char* to_string(Status st) {
  switch (st) {
    case Status::Ok: return "Ok";
    case Status::BadFrame: return "BadFrame";
    case Status::CrcMismatch: return "CrcMismatch";
    case Status::BadParams: return "BadParams";
    case Status::CompressFailed: return "CompressFailed";
    case Status::TooLarge: return "TooLarge";
    case Status::Draining: return "Draining";
    case Status::WrongShard: return "WrongShard";
    case Status::BadSession: return "BadSession";
    case Status::SessionLimit: return "SessionLimit";
  }
  return nullptr;
}

std::string status_name(u16 st) {
  if (const char* name = to_string(static_cast<Status>(st))) return name;
  return "Status" + std::to_string(st);
}

Bytes encode_frame(FrameHeader h, const void* payload, std::size_t n) {
  h.payload_len = n;
  h.payload_crc = common::crc32(payload, n);
  Bytes out(kFrameHeaderSize + n);
  encode_header(out.data(), h);
  if (n) std::memcpy(out.data() + kFrameHeaderSize, payload, n);
  return out;
}

Bytes encode_error_frame(u64 request_id, u8 request_op, Status st,
                         const std::string& message) {
  FrameHeader h;
  h.op = static_cast<u8>((request_op & ~kResponseBit) | kResponseBit);
  h.status = static_cast<u16>(st);
  h.request_id = request_id;
  return encode_frame(h, message.data(), message.size());
}

FrameHeader decode_frame_header(const u8* p) {
  if (get_le<u32>(p) != kFrameMagic)
    throw NetError("PFPN: bad frame magic");
  const u16 version = get_le<u16>(p + 4);
  if (version != kProtocolVersion)
    throw NetError("PFPN: unsupported protocol version " + std::to_string(version));
  FrameHeader h;
  h.op = p[6];
  h.dtype = p[7];
  h.status = get_le<u16>(p + 8);
  h.eb_type = p[10];
  h.payload_crc = get_le<u32>(p + 12);
  h.eps = get_f64(p + 16);
  h.request_id = get_le<u64>(p + 24);
  h.payload_len = get_le<u64>(p + 32);
  return h;
}

FrameParser::FrameParser(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameParser::feed(const void* data, std::size_t n) {
  // Compact the consumed prefix before growing — keeps the buffer bounded by
  // (one frame + one read) instead of the whole connection history.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const u8* p = static_cast<const u8*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

FrameParser::Result FrameParser::fail(Status st, std::string text, bool fatal) {
  err_status_ = st;
  err_text_ = std::move(text);
  if (fatal) fatal_ = true;
  return Result::Error;
}

FrameParser::Result FrameParser::next(Frame& out) {
  if (fatal_) return Result::Error;  // poisoned: framing can't be trusted
  if (!have_header_) {
    if (buf_.size() - pos_ < kFrameHeaderSize) return Result::NeedMore;
    const u8* p = buf_.data() + pos_;
    err_request_id_ = 0;
    err_op_ = 0;
    try {
      h_ = decode_frame_header(p);
    } catch (const NetError& e) {
      return fail(Status::BadFrame, e.what(), /*fatal=*/true);
    }
    err_request_id_ = h_.request_id;
    err_op_ = h_.op;
    if (h_.payload_len > max_payload_)
      return fail(Status::TooLarge,
                  "PFPN: declared payload of " + std::to_string(h_.payload_len) +
                      " bytes exceeds the " + std::to_string(max_payload_) + "-byte limit",
                  /*fatal=*/true);
    pos_ += kFrameHeaderSize;
    have_header_ = true;
  }
  if (buf_.size() - pos_ < h_.payload_len) return Result::NeedMore;
  const u8* payload = buf_.data() + pos_;
  const u32 crc = common::crc32(payload, static_cast<std::size_t>(h_.payload_len));
  pos_ += static_cast<std::size_t>(h_.payload_len);
  have_header_ = false;
  if (crc != h_.payload_crc) {
    // The declared length matched what arrived, so the stream is still
    // framed — discard this payload and keep the connection parseable.
    return fail(Status::CrcMismatch, "PFPN: payload CRC mismatch", /*fatal=*/false);
  }
  out.header = h_;
  out.payload.assign(payload, payload + h_.payload_len);
  return Result::Ready;
}

}  // namespace repro::net
