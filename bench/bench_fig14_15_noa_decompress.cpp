// Figures 14 & 15 reproduction: NOA error bounds — compression ratio vs.
// DECOMPRESSION throughput, single (Fig 14) and double (Fig 15) precision.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::NOA;
  cfg.exclude_non_3d = true;
  // The paper compares to SZ2 only in the REL section (V-C); SZ3 elsewhere.
  cfg.exclude_compressors = {"SZ2_Serial"};

  cfg.dtype = DType::F32;
  bench::print_rows("Fig14_NOA_decompress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  bench::print_rows("Fig15_NOA_decompress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
