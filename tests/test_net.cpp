// Tests for the PFPN/1 network subsystem (src/net): shared CRC-32, frame
// codec, incremental parser robustness against hostile bytes, ThreadPool
// drain semantics, and full loopback server/client integration — including
// byte-identity of remote round trips against the local compressor, typed
// error frames, backpressure caps, graceful drain, and client retry.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "core/pfpl.hpp"
#include "net/backoff.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/control.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "svc/thread_pool.hpp"

using namespace repro;

namespace {

std::vector<float> make_f32(std::size_t n, unsigned seed = 0) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(std::sin(i * 0.01 + seed) * 50.0 + seed);
  return v;
}

std::vector<double> make_f64(std::size_t n, unsigned seed = 0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::cos(i * 0.01 + seed) * 50.0 + seed;
  return v;
}

/// A server running on its own thread; joins + checks clean exit on scope
/// exit.
struct TestServer {
  explicit TestServer(net::Server::Options opts = {}) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  void stop() {
    server.request_stop();
    thread.join();
  }
  net::Client::Options client_options() const {
    net::Client::Options o;
    o.host = "127.0.0.1";
    o.port = server.port();
    return o;
  }
  net::Server server;
  std::thread thread;
};

/// Blocking raw-socket request: send pre-encoded wire bytes, read one
/// response frame. For tests that need to send what net::Client refuses to.
net::Frame raw_roundtrip(int fd, const Bytes& wire, int timeout_ms = 5000) {
  net::send_all(fd, wire.data(), wire.size(), timeout_ms);
  u8 hdr[net::kFrameHeaderSize];
  net::recv_all(fd, hdr, sizeof(hdr), timeout_ms);
  net::Frame f;
  f.header = net::decode_frame_header(hdr);
  f.payload.resize(static_cast<std::size_t>(f.header.payload_len));
  if (!f.payload.empty())
    net::recv_all(fd, f.payload.data(), f.payload.size(), timeout_ms);
  return f;
}

Bytes ping_frame(u64 id) {
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Ping);
  h.request_id = id;
  return net::encode_frame(h, nullptr, 0);
}

// ---------------------------------------------------------------------------
// Shared CRC-32 (satellite: extracted into src/common)

TEST(NetChecksum, Crc32CheckValue) {
  // The CRC-32/IEEE check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(common::crc32(s, 9), 0xCBF43926u);
}

TEST(NetChecksum, SvcAliasMatchesCommon) {
  const Bytes data = {0x00, 0xFF, 0x10, 0x20, 0x99};
  EXPECT_EQ(common::crc32(data.data(), data.size()),
            common::crc32(data.data(), data.size()));
  // Seeded continuation matches one-shot.
  u32 part = common::crc32(data.data(), 2);
  EXPECT_EQ(common::crc32(data.data() + 2, data.size() - 2, part),
            common::crc32(data.data(), data.size()));
}

// ---------------------------------------------------------------------------
// Frame codec + parser robustness

TEST(NetFrame, EncodeDecodeRoundTrip) {
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Compress);
  h.dtype = static_cast<u8>(DType::F64);
  h.eb_type = static_cast<u8>(EbType::REL);
  h.eps = 1.25e-3;
  h.request_id = 0xDEADBEEFCAFEBABEull;
  const Bytes payload = {1, 2, 3, 4, 5, 6, 7};
  const Bytes wire = net::encode_frame(h, payload);
  ASSERT_EQ(wire.size(), net::kFrameHeaderSize + payload.size());

  net::FrameParser p;
  p.feed(wire.data(), wire.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
  EXPECT_EQ(f.header.op, h.op);
  EXPECT_EQ(f.header.dtype, h.dtype);
  EXPECT_EQ(f.header.eb_type, h.eb_type);
  EXPECT_EQ(f.header.eps, h.eps);
  EXPECT_EQ(f.header.request_id, h.request_id);
  EXPECT_EQ(f.payload, payload);
  EXPECT_EQ(p.next(f), net::FrameParser::Result::NeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(NetFrame, ErrorFrameCodec) {
  const Bytes wire = net::encode_error_frame(
      42, static_cast<u8>(net::Op::Compress), net::Status::BadParams, "nope");
  net::FrameParser p;
  p.feed(wire.data(), wire.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
  EXPECT_TRUE(f.header.is_response());
  EXPECT_EQ(f.header.base_op(), static_cast<u8>(net::Op::Compress));
  EXPECT_EQ(f.header.status, static_cast<u16>(net::Status::BadParams));
  EXPECT_EQ(f.header.request_id, 42u);
  EXPECT_EQ(std::string(f.payload.begin(), f.payload.end()), "nope");
}

// The status names are part of the user-facing contract: `pfpl remote`
// reports server errors by CamelCase enumerator name, and unknown codes
// (from a newer peer) degrade to "Status<N>", never a bare number or "?".
TEST(NetFrame, StatusNamesAreTyped) {
  EXPECT_STREQ(net::to_string(net::Status::Ok), "Ok");
  EXPECT_STREQ(net::to_string(net::Status::BadFrame), "BadFrame");
  EXPECT_STREQ(net::to_string(net::Status::CrcMismatch), "CrcMismatch");
  EXPECT_STREQ(net::to_string(net::Status::BadParams), "BadParams");
  EXPECT_STREQ(net::to_string(net::Status::CompressFailed), "CompressFailed");
  EXPECT_STREQ(net::to_string(net::Status::TooLarge), "TooLarge");
  EXPECT_STREQ(net::to_string(net::Status::Draining), "Draining");
  EXPECT_EQ(net::status_name(2), "CrcMismatch");
  EXPECT_EQ(net::status_name(6), "Draining");
  EXPECT_EQ(net::status_name(999), "Status999");
}

TEST(NetFrame, ByteAtATimeFeed) {
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Ping);
  h.request_id = 7;
  const Bytes payload = {9, 8, 7};
  const Bytes wire = net::encode_frame(h, payload);

  net::FrameParser p;
  net::Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(&wire[i], 1);
    ASSERT_EQ(p.next(f), net::FrameParser::Result::NeedMore) << "at byte " << i;
  }
  p.feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
  EXPECT_EQ(f.payload, payload);
}

TEST(NetFrame, MultipleFramesOneFeed) {
  Bytes wire;
  for (u64 id = 1; id <= 3; ++id) {
    const Bytes one = ping_frame(id);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  net::FrameParser p;
  p.feed(wire.data(), wire.size());
  net::Frame f;
  for (u64 id = 1; id <= 3; ++id) {
    ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
    EXPECT_EQ(f.header.request_id, id);
  }
  EXPECT_EQ(p.next(f), net::FrameParser::Result::NeedMore);
}

TEST(NetFrame, TruncatedHeaderNeverReady) {
  const Bytes wire = ping_frame(1);
  net::FrameParser p;
  p.feed(wire.data(), net::kFrameHeaderSize - 1);
  net::Frame f;
  EXPECT_EQ(p.next(f), net::FrameParser::Result::NeedMore);
  EXPECT_FALSE(p.fatal());
}

TEST(NetFrame, BadMagicIsFatal) {
  Bytes wire = ping_frame(1);
  wire[0] ^= 0xFF;
  net::FrameParser p;
  p.feed(wire.data(), wire.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Error);
  EXPECT_TRUE(p.fatal());
  EXPECT_EQ(p.status(), net::Status::BadFrame);
  // Sticky: feeding more valid bytes cannot resurrect the stream.
  const Bytes good = ping_frame(2);
  p.feed(good.data(), good.size());
  EXPECT_EQ(p.next(f), net::FrameParser::Result::Error);
}

TEST(NetFrame, OversizedDeclaredLengthIsFatal) {
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Compress);
  h.request_id = 5;
  Bytes payload(64, 0xAB);
  Bytes wire = net::encode_frame(h, payload);
  // Rewrite payload_len (offset 32, u64 LE) to something absurd.
  const u64 huge = 1ull << 40;
  std::memcpy(&wire[32], &huge, 8);
  net::FrameParser p(1u << 20);  // 1 MiB cap
  p.feed(wire.data(), wire.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Error);
  EXPECT_TRUE(p.fatal());
  EXPECT_EQ(p.status(), net::Status::TooLarge);
  EXPECT_EQ(p.error_request_id(), 5u);
}

TEST(NetFrame, CrcMismatchIsRecoverable) {
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Ping);
  h.request_id = 9;
  Bytes payload = {1, 2, 3, 4};
  Bytes bad = net::encode_frame(h, payload);
  bad[net::kFrameHeaderSize] ^= 0xFF;  // flip a payload bit

  net::FrameParser p;
  p.feed(bad.data(), bad.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Error);
  EXPECT_FALSE(p.fatal());
  EXPECT_EQ(p.status(), net::Status::CrcMismatch);
  EXPECT_EQ(p.error_request_id(), 9u);

  // The frame boundary was trustworthy, so the next frame parses cleanly.
  const Bytes good = ping_frame(10);
  p.feed(good.data(), good.size());
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
  EXPECT_EQ(f.header.request_id, 10u);
}

TEST(NetFrame, GarbageMidStream) {
  const Bytes good = ping_frame(1);
  Bytes wire = good;
  Bytes garbage(200, 0xFF);
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  net::FrameParser p;
  p.feed(wire.data(), wire.size());
  net::Frame f;
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Ready);
  EXPECT_EQ(f.header.request_id, 1u);
  ASSERT_EQ(p.next(f), net::FrameParser::Result::Error);
  EXPECT_TRUE(p.fatal());
}

// ---------------------------------------------------------------------------
// ThreadPool::drain (satellite)

TEST(ThreadPoolDrain, CompletesQueuedWorkAndStaysUsable) {
  svc::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++done;
    });
  pool.drain();
  EXPECT_EQ(done.load(), 16);
  EXPECT_FALSE(pool.draining());
  // Pool accepts work again after the drain.
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolDrain, RejectsSubmissionsWhileDraining) {
  svc::ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  std::thread drainer([&] { pool.drain(); });
  // Wait until the drain flag is visibly up, then try to submit.
  while (!pool.draining()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_THROW(pool.submit([] {}), CompressionError);
  release = true;
  drainer.join();
  EXPECT_EQ(pool.counters().executed, 1u);
}

TEST(ThreadPoolDrain, IdlePoolDrainsImmediately) {
  svc::ThreadPool pool(2);
  pool.drain();  // must not hang
  pool.drain();  // and is repeatable
  auto fut = pool.submit([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

// ---------------------------------------------------------------------------
// Loopback integration

TEST(NetLoopback, PingStatsAndShutdownOps) {
  TestServer ts;
  net::Client client(ts.client_options());
  client.ping();
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("\"service\""), std::string::npos);
  EXPECT_NE(stats.find("\"frames_rx\""), std::string::npos);
  client.shutdown_server();  // response arrives before the server exits
  ts.thread.join();
  EXPECT_TRUE(ts.server.stats().draining);
}

TEST(NetLoopback, RoundTripAllDtypesAndBounds) {
  TestServer ts;
  net::Client client(ts.client_options());
  const std::vector<float> f32 = make_f32(2048);
  const std::vector<double> f64 = make_f64(2048);

  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    for (DType dtype : {DType::F32, DType::F64}) {
      const double eps = 1e-3;
      pfpl::Params params;
      params.eb = eb;
      params.eps = eps;
      const Field field = dtype == DType::F32 ? Field(f32.data(), f32.size())
                                              : Field(f64.data(), f64.size());
      const void* raw = dtype == DType::F32 ? static_cast<const void*>(f32.data())
                                            : static_cast<const void*>(f64.data());
      const std::size_t raw_n = 2048 * dtype_size(dtype);

      const Bytes local = pfpl::compress(field, params);
      const Bytes remote = client.compress(raw, raw_n, dtype, eb, eps);
      EXPECT_EQ(remote, local) << to_string(dtype) << "/" << to_string(eb);

      const std::vector<u8> back = client.decompress(remote);
      EXPECT_EQ(back, pfpl::decompress(local)) << to_string(dtype) << "/" << to_string(eb);
    }
  }
}

TEST(NetLoopback, RemoteErrorCarriesStatusName) {
  TestServer ts;
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(64);
  try {
    // eps < 0 passes frame validation but is rejected by the compressor,
    // producing a CompressFailed error frame with the compressor's text.
    client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, -1.0);
    FAIL() << "expected RemoteError";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.status(), static_cast<u16>(net::Status::CompressFailed));
    EXPECT_NE(std::string(e.what()).find("CompressFailed"), std::string::npos)
        << e.what();
    // Never the bare numeric or the old SCREAMING_SNAKE spelling.
    EXPECT_EQ(std::string(e.what()).find("COMPRESS_FAILED"), std::string::npos);
  }
}

TEST(NetLoopback, ServerAnswersFromChunkStore) {
  net::Server::Options opts;
  opts.store = std::make_shared<store::ChunkStore>(store::ChunkStore::Options{});
  TestServer ts(opts);
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(4096);
  pfpl::Params params;
  params.eps = 1e-3;
  const Bytes local = pfpl::compress(Field(data.data(), data.size()), params);

  const Bytes first = client.compress(data.data(), data.size() * 4, DType::F32,
                                      EbType::ABS, 1e-3);
  const Bytes second = client.compress(data.data(), data.size() * 4, DType::F32,
                                       EbType::ABS, 1e-3);
  EXPECT_EQ(first, local);
  EXPECT_EQ(second, local);  // the cached response is byte-identical

  // And the decompress path caches independently (domain-separated keys).
  const std::vector<u8> back1 = client.decompress(first);
  const std::vector<u8> back2 = client.decompress(first);
  EXPECT_EQ(back1, back2);
  EXPECT_EQ(back1.size(), data.size() * 4);

  ts.stop();
  const net::Server::Stats st = ts.server.stats();
  EXPECT_EQ(st.store_hits, 2u);    // second compress + second decompress
  EXPECT_EQ(st.store_misses, 2u);  // first compress + first decompress
}

TEST(NetLoopback, EightConcurrentClientsZeroErrors) {
  TestServer ts;
  std::atomic<u64> errors{0};
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < 8; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client(ts.client_options());
        const std::vector<float> data = make_f32(1024, c);
        pfpl::Params params;
        params.eb = EbType::ABS;
        params.eps = 1e-3;
        const Bytes local = pfpl::compress(Field(data.data(), data.size()), params);
        for (int q = 0; q < 8; ++q) {
          const Bytes remote = client.compress(data.data(), data.size() * 4,
                                               DType::F32, EbType::ABS, 1e-3);
          if (remote != local) ++errors;
          if (client.decompress(remote) != pfpl::decompress(local)) ++errors;
        }
      } catch (const std::exception&) {
        ++errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(ts.server.stats().errors, 0u);
}

TEST(NetLoopback, BadParamsTypedErrorKeepsConnection) {
  TestServer ts;
  net::Socket sock =
      net::tcp_connect("127.0.0.1", ts.server.port(), 5000);

  // dtype 7 does not exist -> typed BadParams error frame.
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Compress);
  h.dtype = 7;
  h.eps = 1e-3;
  h.request_id = 77;
  Bytes payload(64, 1);
  net::Frame err = raw_roundtrip(sock.fd(), net::encode_frame(h, payload));
  EXPECT_EQ(err.header.status, static_cast<u16>(net::Status::BadParams));
  EXPECT_EQ(err.header.request_id, 77u);

  // Recoverable: the same connection still answers a valid PING.
  net::Frame pong = raw_roundtrip(sock.fd(), ping_frame(78));
  EXPECT_EQ(pong.header.status, static_cast<u16>(net::Status::Ok));
  EXPECT_EQ(pong.header.request_id, 78u);
}

TEST(NetLoopback, CrcMismatchTypedErrorKeepsConnection) {
  TestServer ts;
  net::Socket sock = net::tcp_connect("127.0.0.1", ts.server.port(), 5000);
  Bytes wire = ping_frame(5);
  Bytes payload = {1, 2, 3, 4};
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Ping);
  h.request_id = 5;
  wire = net::encode_frame(h, payload);
  wire[net::kFrameHeaderSize] ^= 0xFF;
  net::Frame err = raw_roundtrip(sock.fd(), wire);
  EXPECT_EQ(err.header.status, static_cast<u16>(net::Status::CrcMismatch));

  net::Frame pong = raw_roundtrip(sock.fd(), ping_frame(6));
  EXPECT_EQ(pong.header.status, static_cast<u16>(net::Status::Ok));
}

TEST(NetLoopback, BadMagicErrorFrameThenClose) {
  TestServer ts;
  net::Socket sock = net::tcp_connect("127.0.0.1", ts.server.port(), 5000);
  Bytes wire = ping_frame(1);
  wire[0] ^= 0xFF;
  net::Frame err = raw_roundtrip(sock.fd(), wire);
  EXPECT_EQ(err.header.status, static_cast<u16>(net::Status::BadFrame));
  // The server closes a connection it cannot resynchronize: the next read
  // must hit EOF (recv_all throws).
  u8 byte;
  EXPECT_THROW(net::recv_all(sock.fd(), &byte, 1, 2000), net::NetError);
}

TEST(NetLoopback, BackpressureCapsInflightBytes) {
  net::Server::Options opts;
  opts.max_inflight_bytes = 64 * 1024;
  opts.threads = 1;
  TestServer ts(opts);
  ::setenv("PFPL_NET_TEST_SLOW_US", "20000", 1);  // 20 ms per request

  net::Socket sock = net::tcp_connect("127.0.0.1", ts.server.port(), 5000);
  const std::vector<float> data = make_f32(8192);  // 32 KiB per request
  Bytes wire;
  const unsigned kRequests = 8;
  for (unsigned q = 0; q < kRequests; ++q) {
    net::FrameHeader h;
    h.op = static_cast<u8>(net::Op::Compress);
    h.dtype = static_cast<u8>(DType::F32);
    h.eb_type = static_cast<u8>(EbType::ABS);
    h.eps = 1e-3;
    h.request_id = 100 + q;
    const Bytes one = net::encode_frame(h, data.data(), data.size() * 4);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  // Blast all 8 pipelined requests at once, then collect all 8 responses.
  // The pool's LIFO pop may reorder completions, so match by request id.
  net::send_all(sock.fd(), wire.data(), wire.size(), 10000);
  std::vector<bool> seen(kRequests, false);
  for (unsigned q = 0; q < kRequests; ++q) {
    u8 hdr[net::kFrameHeaderSize];
    net::recv_all(sock.fd(), hdr, sizeof(hdr), 30000);
    net::FrameHeader rh = net::decode_frame_header(hdr);
    EXPECT_EQ(rh.status, static_cast<u16>(net::Status::Ok));
    ASSERT_GE(rh.request_id, 100u);
    ASSERT_LT(rh.request_id, 100u + kRequests);
    EXPECT_FALSE(seen[rh.request_id - 100]) << "duplicate response";
    seen[rh.request_id - 100] = true;
    std::vector<u8> payload(static_cast<std::size_t>(rh.payload_len));
    if (!payload.empty())
      net::recv_all(sock.fd(), payload.data(), payload.size(), 30000);
  }
  ::unsetenv("PFPL_NET_TEST_SLOW_US");

  // 32 KiB requests against a 64 KiB budget: at most 2 admitted at once.
  EXPECT_LE(ts.server.stats().peak_inflight_bytes, opts.max_inflight_bytes);
  EXPECT_EQ(ts.server.stats().errors, 0u);
}

TEST(NetLoopback, OversizedSingleRequestAdmittedAlone) {
  net::Server::Options opts;
  opts.max_inflight_bytes = 1024;  // smaller than one request
  TestServer ts(opts);
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(4096);  // 16 KiB > budget
  pfpl::Params params;
  params.eb = EbType::ABS;
  params.eps = 1e-3;
  const Bytes local = pfpl::compress(Field(data.data(), data.size()), params);
  const Bytes remote =
      client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);
  EXPECT_EQ(remote, local);
}

TEST(NetLoopback, DrainFinishesInflightAndRejectsNew) {
  net::Server::Options opts;
  opts.threads = 1;
  TestServer ts(opts);
  ::setenv("PFPL_NET_TEST_SLOW_US", "150000", 1);  // 150 ms per request

  const std::vector<float> data = make_f32(1024);
  pfpl::Params params;
  params.eb = EbType::ABS;
  params.eps = 1e-3;
  const Bytes local = pfpl::compress(Field(data.data(), data.size()), params);

  // A raw connection with one slow COMPRESS in flight. The in-flight bytes
  // keep this connection alive across the drain (idle conns are reaped).
  net::Socket sock = net::tcp_connect("127.0.0.1", ts.server.port(), 5000);
  net::FrameHeader h;
  h.op = static_cast<u8>(net::Op::Compress);
  h.dtype = static_cast<u8>(DType::F32);
  h.eb_type = static_cast<u8>(EbType::ABS);
  h.eps = 1e-3;
  h.request_id = 1;
  const Bytes slow_req = net::encode_frame(h, data.data(), data.size() * 4);
  net::send_all(sock.fd(), slow_req.data(), slow_req.size(), 5000);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  // Drain begins while request 1 is still being compressed.
  net::Client ctl(ts.client_options());
  ctl.shutdown_server();
  EXPECT_TRUE(ts.server.stats().draining);

  // A NEW compress on the surviving connection is refused with the typed
  // Draining status, immediately — before the slow request finishes.
  h.request_id = 2;
  net::Frame refused = raw_roundtrip(sock.fd(), net::encode_frame(h, data.data(), 64));
  EXPECT_EQ(refused.header.status, static_cast<u16>(net::Status::Draining));
  EXPECT_EQ(refused.header.request_id, 2u);

  // The in-flight request still completes, byte-identical to local.
  u8 hdr[net::kFrameHeaderSize];
  net::recv_all(sock.fd(), hdr, sizeof(hdr), 10000);
  net::FrameHeader rh = net::decode_frame_header(hdr);
  EXPECT_EQ(rh.status, static_cast<u16>(net::Status::Ok));
  EXPECT_EQ(rh.request_id, 1u);
  Bytes remote(static_cast<std::size_t>(rh.payload_len));
  net::recv_all(sock.fd(), remote.data(), remote.size(), 10000);
  EXPECT_EQ(remote, local);

  ::unsetenv("PFPL_NET_TEST_SLOW_US");
  ts.thread.join();  // run() returns once the drain finishes
}

TEST(NetLoopback, ClientRetriesOnceAfterServerRestart) {
  net::Server::Options opts;
  auto ts1 = std::make_unique<TestServer>(opts);
  const u16 port = ts1->server.port();

  net::Client::Options copts;
  copts.host = "127.0.0.1";
  copts.port = port;
  net::Client client(copts);
  client.ping();
  EXPECT_EQ(client.reconnects(), 0u);

  // Kill the server; SO_REUSEADDR lets a fresh one take the same port.
  ts1.reset();
  opts.port = port;
  TestServer ts2(opts);

  // The old connection is dead; the client must reconnect + retry once.
  client.ping();
  EXPECT_EQ(client.reconnects(), 1u);
}

// ---------------------------------------------------------------------------
// Live introspection: request-scoped tracing, the METRICS op, the HTTP
// scrape listener, slow-request capture, and client request-id hygiene.

namespace {

/// Save/restore the global observability switch (same idiom as test_obs).
struct ObsGuard {
  explicit ObsGuard(bool on) : prev(obs::enabled()) { obs::set_enabled(on); }
  ~ObsGuard() { obs::set_enabled(prev); }
  bool prev;
};

/// Minimal HTTP/1.0-style GET against the server's metrics listener: one
/// request, read to EOF (the server answers Connection: close).
std::string http_get(u16 port, const std::string& path) {
  net::Socket sock = net::tcp_connect("127.0.0.1", port, 5000);
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  net::send_all(sock.fd(), req.data(), req.size(), 5000);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Parse a Prometheus text document: every "# TYPE" family must be unique
/// and every sample line's value must parse as a number. Returns the sample
/// value for `name` (exact match before the space), or -1 if absent.
double check_prom_text(const std::string& text, const std::string& name) {
  std::set<std::string> families;
  double found = -1;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string fam = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(families.insert(fam).second) << "duplicate family " << fam;
      continue;
    }
    if (line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      ADD_FAILURE() << "sample line without a value: " << line;
      continue;
    }
    double v = 0;
    try {
      v = std::stod(line.substr(sp + 1));
    } catch (const std::exception&) {
      ADD_FAILURE() << "sample value does not parse: " << line;
      continue;
    }
    if (line.compare(0, sp, name) == 0) found = v;
  }
  return found;
}

}  // namespace

// Acceptance criterion: a single request's timeline is reconstructible from
// the Chrome trace — net (loop thread), svc (pool worker), and core
// (compressor) spans all carry the client's request_id.
TEST(NetIntrospection, RequestScopedTraceSharesRequestId) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  u64 id = 0;
  {
    TestServer ts;
    net::Client client(ts.client_options());
    const std::vector<float> data = make_f32(2048);
    client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);
    id = client.last_request_id();
  }
  ASSERT_NE(id, 0u);

  // Read the ids back out of the Chrome JSON itself — the artifact an
  // operator loads — not out of internal recorder state. (Ids are compared
  // as doubles because that is what a JSON reader sees; both sides round
  // the same 64-bit integer the same way.)
  obs::JsonValue doc = obs::parse_json(rec.chrome_json());
  std::set<std::string> with_id;
  for (const obs::JsonValue& ev : doc.at("traceEvents").arr) {
    if (!ev.has("args") || !ev.at("args").has("request_id")) continue;
    if (ev.at("args").at("request_id").num == static_cast<double>(id))
      with_id.insert(ev.at("name").str);
  }
  EXPECT_TRUE(with_id.count("net.handle_frame")) << rec.text_tree();
  EXPECT_TRUE(with_id.count("net.work.compress")) << rec.text_tree();
  EXPECT_TRUE(with_id.count("svc.pool.task")) << rec.text_tree();
  EXPECT_TRUE(with_id.count("pfpl.compress")) << rec.text_tree();
  rec.clear();
}

// Acceptance criterion: `pfpl remote metrics` (the METRICS op) and the HTTP
// GET /metrics listener return consistent counters, in both formats.
TEST(NetIntrospection, MetricsOpJsonPromAndHttpConsistent) {
  ObsGuard guard(true);
  net::Server::Options opts;
  opts.metrics_port = 0;  // ephemeral HTTP listener on the same loop
  TestServer ts(opts);
  ASSERT_NE(ts.server.metrics_port(), 0);
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(1024);
  client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);

  obs::JsonValue doc = obs::parse_json(client.metrics(false));
  EXPECT_EQ(doc.at("schema").str, "pfpl-metrics/1");
  ASSERT_TRUE(doc.has("metrics"));
  ASSERT_TRUE(doc.has("stats"));
  ASSERT_TRUE(doc.has("slow_requests"));
  EXPECT_GE(doc.at("stats").at("requests_compress").num, 1.0);
  const double json_requests =
      doc.at("metrics").at("counters").at("net.requests").num;

  // net.requests counts only pooled ops, so scrapes between the reads can't
  // perturb the comparison.
  const double prom_requests =
      check_prom_text(client.metrics(true), "pfpl_net_requests_total");
  EXPECT_EQ(prom_requests, json_requests);

  const std::string http = http_get(ts.server.metrics_port(), "/metrics");
  EXPECT_NE(http.find("HTTP/1.1 200"), std::string::npos) << http.substr(0, 120);
  EXPECT_NE(http.find("text/plain; version=0.0.4"), std::string::npos);
  const std::size_t body_at = http.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const double http_requests =
      check_prom_text(http.substr(body_at + 4), "pfpl_net_requests_total");
  EXPECT_EQ(http_requests, json_requests);

  // The JSON variant and the stats page serve over HTTP too.
  const std::string hj = http_get(ts.server.metrics_port(), "/metrics.json");
  EXPECT_NE(hj.find("application/json"), std::string::npos);
  EXPECT_NE(hj.find("pfpl-metrics/1"), std::string::npos);
  EXPECT_NE(http_get(ts.server.metrics_port(), "/nope").find("404"),
            std::string::npos);

  ts.stop();
  EXPECT_GE(ts.server.stats().metrics_scrapes, 4u);  // 2 op + 2 HTTP /metrics*
}

// Satellite: scraping under concurrent traffic always yields a parseable
// document, and the counters in it never go backwards.
TEST(NetIntrospection, ConcurrentScrapesSeeMonotonicCounters) {
  ObsGuard guard(true);
  TestServer ts;
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    net::Client c(ts.client_options());
    const std::vector<float> data = make_f32(512);
    while (!stop.load(std::memory_order_relaxed))
      c.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-2);
  });
  net::Client scraper(ts.client_options());
  double last_frames = 0, last_requests = 0;
  for (int i = 0; i < 20; ++i) {
    obs::JsonValue doc = obs::parse_json(scraper.metrics(false));
    const double frames = doc.at("stats").at("frames_rx").num;
    const double requests = doc.at("stats").at("requests_compress").num;
    EXPECT_GE(frames, last_frames);
    EXPECT_GE(requests, last_requests);
    last_frames = frames;
    last_requests = requests;
  }
  stop.store(true);
  traffic.join();
  EXPECT_GT(last_frames, 0.0);
}

// Satellite: with observability disabled the scrape still serves a valid
// (possibly empty) document, the always-live stats block still moves, and
// the obs-gated histograms record nothing.
TEST(NetIntrospection, DisabledObservabilityScrapeValidAndRecordsNothing) {
  ObsGuard guard(false);
  obs::Histogram& request_us =
      obs::MetricsRegistry::global().histogram("net.request_us");
  const u64 before = request_us.count();
  TestServer ts;
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(1024);
  client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);

  obs::JsonValue doc = obs::parse_json(client.metrics(false));
  EXPECT_EQ(doc.at("schema").str, "pfpl-metrics/1");
  ASSERT_TRUE(doc.at("metrics").is_object());  // valid-but-idle registry dump
  EXPECT_GE(doc.at("stats").at("requests_compress").num, 1.0);
  check_prom_text(client.metrics(true), "");  // prom variant stays well-formed
  EXPECT_EQ(request_us.count(), before);  // zero recording while disabled
}

// Tentpole: requests over --slow-ms land in the slow ring with their
// request_id and per-stage micros, visible through STATS.
TEST(NetIntrospection, SlowRequestCaptureRingInStats) {
  net::Server::Options opts;
  opts.slow_ms = 1;
  ::setenv("PFPL_NET_TEST_SLOW_US", "5000", 1);
  TestServer ts(opts);
  net::Client client(ts.client_options());
  const std::vector<float> data = make_f32(1024);
  client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);
  const u64 id = client.last_request_id();
  ::unsetenv("PFPL_NET_TEST_SLOW_US");

  obs::JsonValue doc = obs::parse_json(client.stats());
  EXPECT_GE(doc.at("slow_requests_captured").num, 1.0);
  ASSERT_FALSE(doc.at("slow_requests").arr.empty());
  const obs::JsonValue& worst = doc.at("slow_requests").arr[0];
  EXPECT_EQ(worst.at("op").str, "COMPRESS");
  EXPECT_GE(worst.at("total_us").num, 5000.0);
  EXPECT_EQ(worst.at("request_id").num, static_cast<double>(id));
  EXPECT_GE(worst.at("work_us").num, 5000.0);  // the injected sleep is work
}

// Satellite: ids are unique per client instance (seeded counter), distinct
// across instances, and quoted in RemoteError text for correlation.
TEST(NetIntrospection, ClientRequestIdsUniqueAndQuotedInErrors) {
  TestServer ts;
  const std::vector<float> data = make_f32(64);
  auto fail_id = [&](net::Client& c) -> std::pair<u64, std::string> {
    try {
      // eps < 0 is rejected by the compressor: deterministic RemoteError.
      c.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, -1.0);
    } catch (const net::RemoteError& e) {
      return {c.last_request_id(), e.what()};
    }
    return {0, "no error raised"};
  };
  net::Client a(ts.client_options());
  net::Client b(ts.client_options());
  const auto [id_a, what_a] = fail_id(a);
  const auto [id_b, what_b] = fail_id(b);
  ASSERT_NE(id_a, 0u);
  ASSERT_NE(id_b, 0u);
  EXPECT_NE(id_a, id_b);  // per-instance seeding: disjoint ranges
  EXPECT_NE(what_a.find("(request_id " + std::to_string(id_a) + ")"),
            std::string::npos)
      << what_a;
  EXPECT_NE(what_b.find("(request_id " + std::to_string(id_b) + ")"),
            std::string::npos)
      << what_b;
  const auto [id_a2, what_a2] = fail_id(a);
  (void)what_a2;
  EXPECT_NE(id_a2, id_a);  // consecutive ids from one client differ too
}

// ---------------------------------------------------------------------------
// Retry policy (Client::Options::max_attempts / backoff)

TEST(NetBackoff, JitteredExponentialCurve) {
  net::BackoffJitter j(42);
  // Retry k sleeps min(base << (k-1), max) scaled by [0.5, 1.5).
  for (unsigned k = 1; k <= 12; ++k) {
    net::BackoffJitter fresh(42u * k);
    const int base = 10, max = 400;
    const long long nominal = std::min<long long>(10ll << (k - 1), max);
    const int ms = net::backoff_ms(k, base, max, fresh);
    EXPECT_GE(ms, nominal / 2) << "k=" << k;
    EXPECT_LT(ms, (nominal * 3 + 1) / 2) << "k=" << k;
  }
  // base <= 0 means immediate retry (the historical default), regardless of k.
  EXPECT_EQ(net::backoff_ms(1, 0, 1000, j), 0);
  EXPECT_EQ(net::backoff_ms(9, -5, 1000, j), 0);
  // Deterministic for a given seed: tests (and reproductions) can pin sleeps.
  net::BackoffJitter j1(7), j2(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(j1.next(), j2.next());
}

/// A port with nothing listening: bind an ephemeral listener, note the
/// port, close it.
u16 dead_port() {
  net::Socket l = net::tcp_listen("127.0.0.1", 0, 1);
  return net::local_port(l);
}

TEST(NetRetry, MaxAttemptsAreHonoredAgainstDeadServer) {
  net::Client::Options o;
  o.host = "127.0.0.1";
  o.port = dead_port();
  o.retry = true;
  o.max_attempts = 4;
  o.backoff_base_ms = 1;  // keep the test fast but exercise the sleep path
  o.connect_timeout_ms = 500;
  net::Client c(o);
  EXPECT_THROW(c.ping(), net::NetError);
  EXPECT_EQ(c.attempts(), 4u);
  EXPECT_EQ(c.requests(), 0u);
}

TEST(NetRetry, RetryFalseMeansExactlyOneAttempt) {
  net::Client::Options o;
  o.host = "127.0.0.1";
  o.port = dead_port();
  o.retry = false;
  o.max_attempts = 9;  // ignored while retry is off
  o.connect_timeout_ms = 500;
  net::Client c(o);
  EXPECT_THROW(c.ping(), net::NetError);
  EXPECT_EQ(c.attempts(), 1u);
}

TEST(NetRetry, RemoteErrorIsNeverRetried) {
  // Regression guard: a typed server refusal must not burn retry attempts —
  // the server answered, repeating the request would repeat the refusal.
  TestServer ts;
  net::Client::Options o = ts.client_options();
  o.retry = true;
  o.max_attempts = 5;
  o.backoff_base_ms = 50;  // a retry would be visible in attempts(), not time
  net::Client c(o);
  const std::vector<float> data = make_f32(64);
  EXPECT_THROW(
      c.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, -1.0),
      net::RemoteError);
  EXPECT_EQ(c.attempts(), 1u);
}

// ---------------------------------------------------------------------------
// Event backend + accept-path resilience

TEST(NetPoller, PollBackendServesIdentically) {
  net::Server::Options o;
  o.use_epoll = false;  // force the poll(2) fallback loop
  TestServer ts(o);
  EXPECT_NE(ts.server.stats_json().find("\"event_backend\":\"poll\""),
            std::string::npos);
  net::Client client(ts.client_options());
  client.ping();
  const std::vector<float> data = make_f32(2048);
  pfpl::Params params;
  params.eps = 1e-3;
  const Bytes local = pfpl::compress(Field(data.data(), data.size()), params);
  const Bytes remote =
      client.compress(data.data(), data.size() * 4, DType::F32, EbType::ABS, 1e-3);
  EXPECT_EQ(remote, local);
  EXPECT_EQ(client.decompress(remote), pfpl::decompress(local));
}

#ifdef __linux__
TEST(NetPoller, EpollBackendIsTheLinuxDefault) {
  TestServer ts;
  // A completed round trip proves the event loop is up (the backend field
  // reflects the running loop, not the options).
  net::Client client(ts.client_options());
  client.ping();
  EXPECT_NE(ts.server.stats_json().find("\"event_backend\":\"epoll\""),
            std::string::npos);
}
#endif

TEST(NetServer, MaxConnsDefersExtraConnections) {
  net::Server::Options o;
  o.max_conns = 1;
  TestServer ts(o);

  net::Client a(ts.client_options());
  a.ping();  // occupies the single slot

  // A second connection sits in the kernel backlog: its request is not
  // answered while the slot is taken.
  net::Client::Options bo = ts.client_options();
  bo.retry = false;
  bo.request_timeout_ms = 300;
  net::Client b(bo);
  EXPECT_THROW(b.ping(), net::NetError);

  // Freeing the slot lets the next connection in.
  a = net::Client(ts.client_options());  // old connection closed by move-assign
  net::Client c(ts.client_options());
  // Two live clients would exceed the cap; use just the new one.
  c.ping();
}

TEST(NetServer, AcceptShedsGracefullyOnFdExhaustion) {
  TestServer ts;
  net::Client ok(ts.client_options());
  ok.ping();  // an established connection keeps working throughout

  // Hoard every spare fd, then hand exactly one back so the client can
  // connect — the server's accept() then fails with EMFILE and must shed
  // (close the new conn) instead of dying or spinning.
  std::vector<int> hoard;
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    hoard.push_back(fd);
  }
  ASSERT_FALSE(hoard.empty());
  ::close(hoard.back());
  hoard.pop_back();

  bool shed_seen = false;
  try {
    net::Client::Options o = ts.client_options();
    o.retry = false;
    o.request_timeout_ms = 2000;
    net::Client victim(o);
    victim.ping();
  } catch (const net::NetError&) {
    shed_seen = true;  // connection closed/refused by the shed path
  }
  // Give the loop a beat to log the overload, then release the fds.
  for (int i = 0; i < 200 && ts.server.stats().accept_overloads == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int fd : hoard) ::close(fd);

  EXPECT_TRUE(shed_seen);
  EXPECT_GE(ts.server.stats().accept_overloads, 1u);
  // The server survived: existing and brand-new connections both work.
  ok.ping();
  net::Client fresh(ts.client_options());
  fresh.ping();
}

}  // namespace
