// Tests for the benchmark harness itself: the sweep engine feeds
// EXPERIMENTS.md, so its aggregation (nested geometric means), compressor
// filtering, Pareto-front marking, and the machine-readable output paths
// (--json rows, CSV schema) must be correct.
#include <gtest/gtest.h>

#include "harness.hpp"
#include "obs/json.hpp"

using namespace repro;
using namespace repro::bench;

namespace {

SweepConfig tiny(EbType eb, DType dt) {
  SweepConfig cfg;
  cfg.eb = eb;
  cfg.dtype = dt;
  cfg.bounds = {1e-2};
  cfg.target_values = 1 << 12;
  cfg.max_files = 1;
  cfg.runs = 1;
  return cfg;
}

}  // namespace

TEST(Harness, ParseArgs) {
  const char* argv[] = {"prog", "--target", "1234", "--files", "5", "--runs", "7"};
  SweepConfig cfg = parse_args(7, const_cast<char**>(argv), {});
  EXPECT_EQ(cfg.target_values, 1234u);
  EXPECT_EQ(cfg.max_files, 5);
  EXPECT_EQ(cfg.runs, 7);
  const char* argv2[] = {"prog", "--full"};
  SweepConfig full = parse_args(2, const_cast<char**>(argv2), {});
  EXPECT_EQ(full.runs, 9);  // the paper's 9-run protocol
}

TEST(Harness, SweepFiltersByCapability) {
  // A REL sweep must only contain the REL-capable compressors
  // (PFPL x3, SZ2, ZFP).
  auto rows = run_sweep(tiny(EbType::REL, DType::F32));
  ASSERT_FALSE(rows.empty());
  for (const Row& r : rows) {
    EXPECT_TRUE(r.compressor.rfind("PFPL", 0) == 0 || r.compressor == "SZ2_Serial" ||
                r.compressor == "ZFP_Serial")
        << r.compressor;
    EXPECT_GT(r.ratio, 0);
    EXPECT_GT(r.comp_mbps, 0);
    EXPECT_GT(r.decomp_mbps, 0);
  }
}

TEST(Harness, SweepRespectsExcludeList) {
  SweepConfig cfg = tiny(EbType::ABS, DType::F32);
  cfg.exclude_compressors = {"SZ2_Serial", "ZFP_Serial"};
  for (const Row& r : run_sweep(cfg)) {
    EXPECT_NE(r.compressor, "SZ2_Serial");
    EXPECT_NE(r.compressor, "ZFP_Serial");
  }
}

TEST(Harness, SweepRespectsOnlyList) {
  SweepConfig cfg = tiny(EbType::ABS, DType::F32);
  cfg.only_compressors = {"PFPL_Serial"};
  auto rows = run_sweep(cfg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].compressor, "PFPL_Serial");
}

TEST(Harness, F64SweepSkipsFloatOnlyCodecs) {
  for (const Row& r : run_sweep(tiny(EbType::NOA, DType::F64)))
    EXPECT_NE(r.compressor, "FZ-GPU_CUDAsim");  // float-only per Table III
}

TEST(Harness, PfplExecutorsReportIdenticalRatios) {
  SweepConfig cfg = tiny(EbType::ABS, DType::F32);
  cfg.only_compressors = {"PFPL_Serial", "PFPL_OMP", "PFPL_CUDAsim"};
  auto rows = run_sweep(cfg);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].ratio, rows[1].ratio);
  EXPECT_DOUBLE_EQ(rows[0].ratio, rows[2].ratio);
}

TEST(Harness, GuaranteedCompressorsReportZeroViolations) {
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    SweepConfig cfg = tiny(eb, DType::F32);
    cfg.only_compressors = {"PFPL_Serial"};
    for (const Row& r : run_sweep(cfg)) EXPECT_EQ(r.violations, 0u) << to_string(eb);
  }
}

TEST(Harness, ParetoMarking) {
  std::vector<Row> rows(3);
  rows[0] = {.compressor = "a", .eb = 0.1, .ratio = 10, .comp_mbps = 100, .decomp_mbps = 50};
  rows[1] = {.compressor = "b", .eb = 0.1, .ratio = 5, .comp_mbps = 200, .decomp_mbps = 100};
  rows[2] = {.compressor = "c", .eb = 0.1, .ratio = 4, .comp_mbps = 150, .decomp_mbps = 60};
  mark_pareto(rows);
  EXPECT_TRUE(rows[0].pareto_compress);   // best ratio
  EXPECT_TRUE(rows[1].pareto_compress);   // best throughput
  EXPECT_FALSE(rows[2].pareto_compress);  // dominated by b
  EXPECT_TRUE(rows[0].pareto_decompress);
  EXPECT_TRUE(rows[1].pareto_decompress);
  EXPECT_FALSE(rows[2].pareto_decompress);
}

TEST(Harness, CsvHeaderMatchesRowSchema) {
  // The documented schema: 10 comma-separated columns, fixed order.
  std::string h = csv_header();
  EXPECT_EQ(h,
            "figure,compressor,eb,ratio,comp_MBps,decomp_MBps,psnr_dB,violations,"
            "pareto_comp,pareto_decomp");
}

TEST(Harness, RowsJsonRoundTripsThroughParser) {
  // The acceptance path for --json: every emitted row must survive a parse
  // back through the obs JSON reader with its values intact.
  std::vector<FigureRow> rows;
  Row a;
  a.compressor = "PFPL_Serial";
  a.eb = 1e-3;
  a.ratio = 5.25;
  a.comp_mbps = 123.5;
  a.decomp_mbps = 456.75;
  a.psnr_db = 78.5;
  a.violations = 3;
  a.pareto_compress = true;
  a.pareto_decompress = false;
  Row b;
  b.compressor = "SZ2 \"quoted\"";  // name needing JSON escaping
  b.eb = 1e-4;
  rows.emplace_back("fig6_abs", a);
  rows.emplace_back("fig7_rel", b);

  obs::JsonValue v = obs::parse_json(rows_json(rows));
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.arr.size(), 2u);
  const obs::JsonValue& ra = v.arr[0];
  for (const char* k : {"figure", "compressor", "eb", "ratio", "comp_MBps", "decomp_MBps",
                        "psnr_dB", "violations", "pareto_comp", "pareto_decomp"})
    ASSERT_TRUE(ra.has(k)) << k;
  EXPECT_EQ(ra.at("figure").str, "fig6_abs");
  EXPECT_EQ(ra.at("compressor").str, "PFPL_Serial");
  EXPECT_DOUBLE_EQ(ra.at("eb").num, 1e-3);
  EXPECT_DOUBLE_EQ(ra.at("ratio").num, 5.25);
  EXPECT_DOUBLE_EQ(ra.at("comp_MBps").num, 123.5);
  EXPECT_DOUBLE_EQ(ra.at("decomp_MBps").num, 456.75);
  EXPECT_DOUBLE_EQ(ra.at("psnr_dB").num, 78.5);
  EXPECT_DOUBLE_EQ(ra.at("violations").num, 3);
  EXPECT_TRUE(ra.at("pareto_comp").b);
  EXPECT_FALSE(ra.at("pareto_decomp").b);
  EXPECT_EQ(v.arr[1].at("compressor").str, "SZ2 \"quoted\"");
}

TEST(Harness, RowsJsonEmptyIsEmptyArray) {
  obs::JsonValue v = obs::parse_json(rows_json({}));
  ASSERT_TRUE(v.is_array());
  EXPECT_TRUE(v.arr.empty());
}

TEST(Harness, ParetoIsPerBound) {
  std::vector<Row> rows(2);
  rows[0] = {.compressor = "a", .eb = 0.1, .ratio = 1, .comp_mbps = 1, .decomp_mbps = 1};
  rows[1] = {.compressor = "b", .eb = 0.01, .ratio = 100, .comp_mbps = 100, .decomp_mbps = 100};
  mark_pareto(rows);
  // Different bounds never dominate each other.
  EXPECT_TRUE(rows[0].pareto_compress);
  EXPECT_TRUE(rows[1].pareto_compress);
}
