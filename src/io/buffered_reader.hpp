// DoubleBufferedReader — sequential file reads that overlap disk I/O with
// the caller's processing.
//
// Two fixed-size buffers and one background prefetch thread: while the
// caller consumes buffer A, the thread fills buffer B, and next() swaps
// them. This is the read stage of the ingest pipeline (DESIGN.md §ingest) —
// the same double-buffering the paper's GPU codecs use to hide host<->device
// copies, applied to the host's file reads.
//
// Contract:
//   * next() returns a span over the freshly filled buffer; the span stays
//     valid until the next next() call (the buffer is then handed back for
//     refill). An EMPTY span means end of file.
//   * a zero-length file yields an empty span on the first call.
//   * the final buffer is short when the file size is not a multiple of the
//     buffer size; short reads mid-file (signal interruption) are retried
//     until the buffer is full or EOF, so a seam never splits early.
//   * I/O errors in the prefetch thread are captured and rethrown from the
//     next next() call as CompressionError.
#pragma once

#include <condition_variable>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "common/types.hpp"

namespace repro::io {

class DoubleBufferedReader {
 public:
  /// Opens `path` and starts the prefetch thread. Throws CompressionError
  /// when the file cannot be opened. `buffer_bytes` is clamped to >= 1.
  explicit DoubleBufferedReader(const std::string& path,
                                std::size_t buffer_bytes = 4u << 20);
  ~DoubleBufferedReader();

  DoubleBufferedReader(const DoubleBufferedReader&) = delete;
  DoubleBufferedReader& operator=(const DoubleBufferedReader&) = delete;

  /// Next filled buffer (blocking until the prefetch thread delivers it).
  /// Empty span = end of file. Rethrows any deferred read error.
  std::span<const u8> next();

  /// Total bytes handed out by next() so far.
  u64 bytes_read() const { return bytes_read_; }

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  const std::string& path() const { return path_; }

 private:
  void prefetch_loop();

  std::string path_;
  std::size_t buffer_bytes_;
  std::FILE* file_ = nullptr;

  // Slot state machine: the prefetch thread fills slots in rotation; next()
  // consumes them in the same rotation, so FIFO order is structural.
  struct Slot {
    Bytes buf;
    std::size_t len = 0;
    bool filled = false;  ///< ready for the consumer
    bool last = false;    ///< EOF reached while filling this slot
  };
  Slot slots_[2];
  std::mutex m_;
  std::condition_variable cv_;
  unsigned fill_idx_ = 0;     ///< slot the producer fills next
  unsigned consume_idx_ = 0;  ///< slot the consumer takes next
  int handed_out_ = -1;       ///< slot whose span the caller currently holds
  bool eof_queued_ = false;   ///< producer finished (EOF or error)
  bool stop_ = false;         ///< destructor: abandon prefetch
  std::exception_ptr error_;
  u64 bytes_read_ = 0;
  std::thread thread_;
};

}  // namespace repro::io
