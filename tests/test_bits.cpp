// Tests for the bit-level kernels of the lossless pipeline (paper III-D).
#include <gtest/gtest.h>

#include <numeric>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/negabinary.hpp"
#include "bits/zerobyte.hpp"
#include "data/rng.hpp"

using namespace repro;
using namespace repro::bits;

// --- negabinary ------------------------------------------------------------

TEST(Negabinary, KnownSmallValues) {
  // Base -2: 1 = 1, -1 = 11b = 3, 2 = 110b = 6, -2 = 10b = 2, 3 = 111b = 7.
  EXPECT_EQ(to_negabinary<u32>(0u), 0u);
  EXPECT_EQ(to_negabinary<u32>(1u), 1u);
  EXPECT_EQ(to_negabinary<u32>(static_cast<u32>(-1)), 3u);
  EXPECT_EQ(to_negabinary<u32>(2u), 6u);
  EXPECT_EQ(to_negabinary<u32>(static_cast<u32>(-2)), 2u);
  EXPECT_EQ(to_negabinary<u32>(3u), 7u);
}

TEST(Negabinary, SmallMagnitudesHaveFewBits) {
  // The property the pipeline exploits: values in [-2^(k-1), 2^(k-1)) fit in
  // ~k negabinary bits whether positive or negative.
  for (i32 v = -128; v <= 127; ++v) {
    u32 nb = to_negabinary<u32>(static_cast<u32>(v));
    EXPECT_LT(nb, 1u << 9) << v;
  }
}

TEST(Negabinary, RoundTripExhaustive16Bit) {
  for (u32 v = 0; v <= 0xFFFFu; ++v) {
    u32 x = v << 13;  // spread across the word
    EXPECT_EQ(from_negabinary(to_negabinary(x)), x);
  }
}

TEST(Negabinary, RoundTripRandom64) {
  data::Rng rng(3);
  for (int i = 0; i < 200000; ++i) {
    u64 x = rng.next_u64();
    EXPECT_EQ(from_negabinary(to_negabinary(x)), x);
  }
}

// --- delta -----------------------------------------------------------------

TEST(Delta, EncodeMatchesPaperExample) {
  // Paper Figure 3: 3, 4, 4, 3 -> deltas 3, 1, 0, -1.
  std::vector<u32> w{3, 4, 4, 3};
  delta_negabinary_encode(w.data(), w.size());
  EXPECT_EQ(from_negabinary(w[0]), 3u);
  EXPECT_EQ(from_negabinary(w[1]), 1u);
  EXPECT_EQ(from_negabinary(w[2]), 0u);
  EXPECT_EQ(from_negabinary(w[3]), static_cast<u32>(-1));
}

template <typename U>
void delta_roundtrip_case(u64 seed, std::size_t n) {
  data::Rng rng(seed);
  std::vector<U> w(n), orig;
  for (auto& x : w) x = static_cast<U>(rng.next_u64());
  orig = w;
  delta_negabinary_encode(w.data(), n);
  delta_negabinary_decode(w.data(), n);
  EXPECT_EQ(w, orig);
}

TEST(Delta, RoundTrip32) { delta_roundtrip_case<u32>(5, 4096); }
TEST(Delta, RoundTrip64) { delta_roundtrip_case<u64>(6, 2048); }
TEST(Delta, RoundTripShort) {
  delta_roundtrip_case<u32>(7, 1);
  delta_roundtrip_case<u32>(8, 2);
  delta_roundtrip_case<u64>(9, 3);
}

// --- bit shuffle -------------------------------------------------------------

TEST(BitShuffle, Transpose32MovesSingleBitsToMirroredPosition) {
  // The masked-swap network maps bit (row r, bit position c) to
  // (row 31-c, bit position 31-r): verify exhaustively for single bits,
  // which pins down the exact permutation (population is preserved and the
  // map is an involution).
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c) {
      u32 a[32] = {};
      a[r] = 1u << c;
      transpose_bits_32(a);
      int total = 0;
      for (int i = 0; i < 32; ++i) total += __builtin_popcount(a[i]);
      ASSERT_EQ(total, 1);
      EXPECT_EQ(a[31 - c], 1u << (31 - r)) << "r=" << r << " c=" << c;
      transpose_bits_32(a);
      for (int i = 0; i < 32; ++i) ASSERT_EQ(a[i], i == r ? (1u << c) : 0u);
    }
}

TEST(BitShuffle, SelfInverse32) {
  data::Rng rng(10);
  std::vector<u32> w(32 * 64), orig;
  for (auto& x : w) x = static_cast<u32>(rng.next_u64());
  orig = w;
  bitshuffle(w.data(), w.size());
  EXPECT_NE(w, orig);  // it really did something
  bitshuffle(w.data(), w.size());
  EXPECT_EQ(w, orig);
}

TEST(BitShuffle, SelfInverse64) {
  data::Rng rng(11);
  std::vector<u64> w(64 * 16), orig;
  for (auto& x : w) x = rng.next_u64();
  orig = w;
  bitshuffle(w.data(), w.size());
  bitshuffle(w.data(), w.size());
  EXPECT_EQ(w, orig);
}

TEST(BitShuffle, GroupsLeadingZeros) {
  // 32 words each with only low 4 bits set -> after shuffle, 28/32 of the
  // output words must be exactly zero (the high bit-planes).
  std::vector<u32> w(32);
  data::Rng rng(12);
  for (auto& x : w) x = static_cast<u32>(rng.next_u64()) & 0xFu;
  bitshuffle(w.data(), 32);
  int zeros = 0;
  for (u32 x : w) zeros += x == 0;
  EXPECT_GE(zeros, 28);
}

// --- zero-byte elimination --------------------------------------------------

void zb_roundtrip(const std::vector<u8>& data) {
  std::vector<u8> enc;
  zerobyte_encode(data.data(), data.size(), enc);
  std::vector<u8> dec(data.size(), 0xCD);
  std::size_t used = zerobyte_decode(enc.data(), enc.size(), dec.data(), data.size());
  EXPECT_EQ(used, enc.size());
  EXPECT_EQ(dec, data);
}

TEST(ZeroByte, AllZeros) {
  std::vector<u8> d(16384, 0);
  std::vector<u8> enc;
  zerobyte_encode(d.data(), d.size(), enc);
  // 16 KiB of zeros collapse to just the (few-byte) top bitmap.
  EXPECT_LE(enc.size(), 8u);
  zb_roundtrip(d);
}

TEST(ZeroByte, AllNonZero) {
  std::vector<u8> d(16384);
  data::Rng rng(13);
  for (auto& b : d) b = static_cast<u8>(rng.next_u64() | 1);
  std::vector<u8> enc;
  zerobyte_encode(d.data(), d.size(), enc);
  // Expansion is bounded by the bitmap chain (~ n/8 * 8/7 + levels).
  EXPECT_LE(enc.size(), d.size() + d.size() / 7 + 16);
  zb_roundtrip(d);
}

TEST(ZeroByte, SparseData) {
  std::vector<u8> d(16384, 0);
  data::Rng rng(14);
  for (int i = 0; i < 100; ++i) d[rng.next_u64() % d.size()] = static_cast<u8>(rng.next_u64());
  std::vector<u8> enc;
  zerobyte_encode(d.data(), d.size(), enc);
  EXPECT_LT(enc.size(), 2048u);  // far below the raw 16 KiB
  zb_roundtrip(d);
}

TEST(ZeroByte, OddSizes) {
  data::Rng rng(15);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{63}, std::size_t{65}, std::size_t{1000},
                        std::size_t{16383}}) {
    std::vector<u8> d(n);
    for (auto& b : d) b = static_cast<u8>(rng.next_u64() & (rng.uniform() < 0.5 ? 0 : 0xFF));
    zb_roundtrip(d);
  }
}

TEST(ZeroByte, TruncatedStreamThrows) {
  std::vector<u8> d(4096);
  data::Rng rng(16);
  for (auto& b : d) b = static_cast<u8>(rng.next_u64());
  std::vector<u8> enc;
  zerobyte_encode(d.data(), d.size(), enc);
  std::vector<u8> dec(d.size());
  EXPECT_THROW(zerobyte_decode(enc.data(), enc.size() / 2, dec.data(), d.size()),
               CompressionError);
}
