// Section III-D methodology reproduction: the LC-style pipeline search that
// produced PFPL's lossless stages.
//
// Quantizes sample suite data (ABS, 1e-3), runs the mini-LC search over all
// pipelines of up to 3 components, and prints the top candidates by
// compression ratio and by encode throughput — plus where PFPL's shipped
// pipeline (diff_nb -> bitshuffle -> zero-byte elimination) ranks. The
// paper's claim: among transformations that are fast on CPUs *and* GPUs,
// this combination is at or near the top.
#include <algorithm>
#include <cstdio>

#include "core/quantizers.hpp"
#include "data/synthetic.hpp"
#include "harness.hpp"
#include "lc/search.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  // Sample chunks: quantized words from a few representative f32 suites.
  std::vector<std::vector<u8>> chunks;
  pfpl::AbsQuantizer<float> q(1e-3);
  for (const auto& spec : data::paper_suites()) {
    if (spec.dtype != DType::F32) continue;
    data::Suite s = data::generate(spec, cfg.target_values / 4, 1);
    for (const auto& f : s.files) {
      std::vector<u8> chunk;
      chunk.resize(f.f32.size() * 4);
      u32* w = reinterpret_cast<u32*>(chunk.data());
      for (std::size_t i = 0; i < f.f32.size(); ++i) w[i] = q.encode(f.f32[i]);
      // 16 KiB pieces, like PFPL's chunking.
      for (std::size_t beg = 0; beg + 16384 <= chunk.size(); beg += 16384)
        chunks.emplace_back(chunk.begin() + beg, chunk.begin() + beg + 16384);
    }
  }
  std::printf("# LC-style pipeline search over %zu sample chunks (quantized ABS 1e-3)\n",
              chunks.size());

  lc::SearchConfig sc;
  sc.word_bits = 32;
  sc.max_stages = 3;
  auto results = lc::search(chunks, sc);
  std::printf("# %zu round-trip-verified pipelines evaluated\n\n", results.size());

  std::printf("rank_by_ratio,pipeline,ratio,enc_MBps\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(results.size(), 12); ++i)
    std::printf("%zu,%s,%.3f,%.1f\n", i + 1, results[i].name.c_str(), results[i].ratio,
                results[i].enc_mbps);

  // Where does the shipped PFPL pipeline rank?
  lc::Pipeline pfpl_pipe({lc::make_diff_negabinary(32), lc::make_bitshuffle(32),
                          lc::make_zerobyte()});
  std::string pfpl_name = pfpl_pipe.name();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].name == pfpl_name) {
      std::printf("\npfpl_pipeline,%s,rank %zu of %zu,ratio %.3f,%.1f MB/s\n",
                  pfpl_name.c_str(), i + 1, results.size(), results[i].ratio,
                  results[i].enc_mbps);
      break;
    }
  }

  // Fastest pipelines that still compress at least half as well as the best.
  double best_ratio = results.empty() ? 0 : results.front().ratio;
  std::sort(results.begin(), results.end(),
            [](const lc::Candidate& a, const lc::Candidate& b) {
              return a.enc_mbps > b.enc_mbps;
            });
  std::printf("\nrank_by_speed_with_ratio_ge_half_best,pipeline,ratio,enc_MBps\n");
  std::size_t shown = 0;
  for (const auto& r : results) {
    if (r.ratio < best_ratio * 0.5) continue;
    std::printf("%zu,%s,%.3f,%.1f\n", ++shown, r.name.c_str(), r.ratio, r.enc_mbps);
    if (shown == 8) break;
  }
  return 0;
}
