// Self-verifying reproduction summary: the paper's three Takeaways
// (Sections V-B, V-C, V-D) checked programmatically against the harness.
// Exits nonzero if any takeaway's shape fails to reproduce.
//
//  Takeaway 1 (ABS): PFPL is the best joint ratio/throughput option — the
//    fastest CPU code, on the Pareto front, with guaranteed bounds; MGARD-X
//    (the only other CPU/GPU-compatible code) is slower and violates bounds.
//  Takeaway 2 (REL): PFPL out-runs SZ2 and guarantees the bound; SZ2
//    compresses more but violates; ZFP compresses least.
//  Takeaway 3 (NOA): SZ3 wins ratio; PFPL is the best guaranteed-bound
//    choice when throughput also matters.
#include <cstdio>

#include "harness.hpp"

using namespace repro;
using namespace repro::bench;

namespace {

int checks = 0, failures = 0;

void check(const char* what, bool ok) {
  ++checks;
  failures += !ok;
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

const Row* find(const std::vector<Row>& rows, const std::string& comp, double eb) {
  for (const Row& r : rows)
    if (r.compressor == comp && r.eb == eb) return &r;
  return nullptr;
}

double cpu_best_other(const std::vector<Row>& rows, double eb) {
  double best = 0;
  for (const Row& r : rows) {
    if (r.compressor.rfind("PFPL", 0) == 0) continue;
    if (r.compressor.find("CUDAsim") != std::string::npos) continue;  // GPU class
    if (r.eb == eb) best = std::max(best, r.comp_mbps);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig base;
  // Larger inputs and more runs than the figure benches: the takeaway
  // assertions compare throughputs, which need stable medians. The 1e-2/1e-3
  // bounds are used because at 1e-1 the tiny compressed outputs make
  // single-core timing comparisons noisy.
  base.target_values = 1 << 18;
  base.runs = 5;
  base = parse_args(argc, argv, base);
  base.bounds = {1e-2, 1e-3};

  std::printf("# Takeaway 1 — ABS (Section V-B)\n");
  {
    SweepConfig cfg = base;
    cfg.eb = EbType::ABS;
    cfg.exclude_non_3d = true;
    cfg.exclude_compressors = {"SZ2_Serial"};
    auto rows = run_sweep(cfg);
    for (double eb : cfg.bounds) {
      const Row* pfpl = find(rows, "PFPL_Serial", eb);
      const Row* mgard = find(rows, "MGARD-X", eb);
      check("PFPL present", pfpl != nullptr);
      if (!pfpl) continue;
      // 5% tolerance: single-core medians jitter a few percent run to run.
      check("PFPL is the fastest CPU compressor",
            pfpl->comp_mbps > cpu_best_other(rows, eb) * 0.95);
      check("PFPL guarantees the bound (0 violations)", pfpl->violations == 0);
      if (mgard) {
        check("MGARD-X (other CPU/GPU code) compresses slower than PFPL",
              mgard->comp_mbps < pfpl->comp_mbps * 1.05);
        check("MGARD-X violates the bound", mgard->violations > 0);
      }
    }
  }

  std::printf("# Takeaway 2 — REL (Section V-C)\n");
  {
    SweepConfig cfg = base;
    cfg.eb = EbType::REL;
    auto rows = run_sweep(cfg);
    for (double eb : cfg.bounds) {
      const Row* pfpl = find(rows, "PFPL_Serial", eb);
      const Row* sz2 = find(rows, "SZ2_Serial", eb);
      const Row* zfp = find(rows, "ZFP_Serial", eb);
      if (!pfpl || !sz2 || !zfp) {
        check("REL rows present", false);
        continue;
      }
      check("PFPL guarantees REL (0 violations)", pfpl->violations == 0);
      check("SZ2 compresses more at the coarse bound OR ties at tight bounds",
            eb < 1e-2 ? sz2->ratio < pfpl->ratio * 1.5 : sz2->ratio > pfpl->ratio * 0.9);
      check("ZFP has the lowest REL ratio", zfp->ratio < pfpl->ratio && zfp->ratio < sz2->ratio);
      check("ZFP does not conform to the REL bound", zfp->violations > 0);
    }
    // SZ2's REL violations show up on wide-magnitude data across the sweep.
    std::size_t sz2_viol = 0;
    for (const Row& r : rows)
      if (r.compressor == "SZ2_Serial") sz2_viol += r.violations;
    check("SZ2 violates REL somewhere in the sweep", sz2_viol > 0);
  }

  std::printf("# Takeaway 3 — NOA (Section V-D)\n");
  {
    SweepConfig cfg = base;
    cfg.eb = EbType::NOA;
    cfg.exclude_non_3d = true;
    cfg.exclude_compressors = {"SZ2_Serial"};
    auto rows = run_sweep(cfg);
    for (double eb : cfg.bounds) {
      const Row* pfpl = find(rows, "PFPL_Serial", eb);
      const Row* sz3 = find(rows, "SZ3_Serial", eb);
      const Row* cuszp = find(rows, "cuSZp_CUDAsim", eb);
      if (!pfpl || !sz3) {
        check("NOA rows present", false);
        continue;
      }
      check("SZ3 is the best choice if only ratio matters", sz3->ratio >= pfpl->ratio);
      check("PFPL guarantees NOA (0 violations)", pfpl->violations == 0);
      check("PFPL is faster than SZ3", pfpl->comp_mbps > sz3->comp_mbps * 0.95);
      if (cuszp) check("cuSZp compresses less than PFPL", cuszp->ratio < pfpl->ratio);
    }
  }

  std::printf("\ntakeaways,%d checks,%d failures\n", checks, failures);
  return failures == 0 ? 0 : 1;
}
