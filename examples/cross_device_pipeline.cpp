// Heterogeneous HPC pipeline: compress on the GPU, decompress on any CPU —
// the paper's Issue (2): "scientific data is often generated and compressed
// on one device but decompressed on a different device" (Section I).
//
//   build/examples/cross_device_pipeline
//
// A producer "GPU node" compresses simulation output with the CUDA algorithm
// (simulated, src/sim); consumer "CPU nodes" decompress the same stream with
// the serial and OpenMP executors. The example asserts the full
// cross-compatibility matrix: all three compressed streams are byte
// identical, and every (producer, consumer) pair reconstructs identical
// values.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pfpl.hpp"

using namespace repro;
using pfpl::Executor;

int main() {
  std::vector<double> field(1 << 18);
  for (std::size_t i = 0; i < field.size(); ++i)
    field[i] = std::sin(i * 0.0003) * std::exp(-1e-6 * static_cast<double>(i));

  const pfpl::Params base{.eps = 1e-6, .eb = EbType::REL};
  const Executor executors[] = {Executor::Serial, Executor::OpenMP, Executor::GpuSim};

  // Compress on every "device".
  Bytes streams[3];
  for (int e = 0; e < 3; ++e) {
    pfpl::Params p = base;
    p.exec = executors[e];
    streams[e] = pfpl::compress(Field(field.data(), field.size()), p);
  }
  bool identical = streams[0] == streams[1] && streams[0] == streams[2];
  std::printf("compressed on Serial/OMP/CUDAsim: %zu bytes each, byte-identical: %s\n",
              streams[0].size(), identical ? "yes" : "NO");

  // Decompress every stream on every device; all results must match.
  std::vector<double> reference = pfpl::decompress_as<double>(streams[0], Executor::Serial);
  bool all_match = true;
  for (int p = 0; p < 3; ++p)
    for (int c = 0; c < 3; ++c) {
      auto out = pfpl::decompress_as<double>(streams[p], executors[c]);
      bool m = out == reference;
      all_match &= m;
      std::printf("  produced on %-8s -> consumed on %-8s : %s\n",
                  to_string(executors[p]), to_string(executors[c]),
                  m ? "bit-identical" : "MISMATCH");
    }
  std::printf("cross-device matrix: %s\n", all_match && identical ? "PASS" : "FAIL");
  return all_match && identical ? 0 : 1;
}
