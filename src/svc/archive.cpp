#include "svc/archive.hpp"

#include <cerrno>
#include <cstring>

#include "io/raw_file.hpp"
#include "common/checksum.hpp"

namespace repro::svc {
namespace {

std::string errno_text() {
  return errno ? std::strerror(errno) : "unknown error";
}

// Shared by writer and reader: entry names are plain file names, never paths.
// The reader MUST enforce this too — archives are untrusted input, and a
// crafted name like "../../x" or "/etc/y" would otherwise escape the output
// directory when unpack joins it onto a destination path.
bool valid_entry_name(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos && name.find('\\') == std::string::npos;
}

// ---------------------------------------------------------------------------
// Little-endian (de)serialization of the index. Records are variable-length
// (name), so the index is parsed with an explicit bounds-checked cursor —
// any overrun means a corrupt index and throws, never reads past the buffer.
// ---------------------------------------------------------------------------

template <typename V>
void put(Bytes& out, V v) {
  const u8* p = reinterpret_cast<const u8*>(&v);
  out.insert(out.end(), p, p + sizeof(V));
}

struct Cursor {
  const u8* p;
  std::size_t left;

  template <typename V>
  V take() {
    if (left < sizeof(V)) throw CompressionError("PFPA: corrupted index (truncated record)");
    V v;
    std::memcpy(&v, p, sizeof(V));
    p += sizeof(V);
    left -= sizeof(V);
    return v;
  }
  std::string take_string(std::size_t n) {
    if (left < n) throw CompressionError("PFPA: corrupted index (truncated name)");
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

Bytes serialize_index(const std::vector<ArchiveEntry>& entries) {
  Bytes out;
  for (const ArchiveEntry& e : entries) {
    put<u16>(out, static_cast<u16>(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    put<u8>(out, static_cast<u8>(e.dtype));
    put<u8>(out, static_cast<u8>(e.eb_type));
    put<double>(out, e.eps);
    put<u64>(out, e.offset);
    put<u64>(out, e.size);
    put<u64>(out, e.value_count);
    put<u64>(out, e.raw_size);
    put<u32>(out, e.crc32);
    put<u32>(out, 0);  // reserved
  }
  return out;
}

std::vector<ArchiveEntry> parse_index(const Bytes& raw, u32 entry_count, u64 file_size) {
  std::vector<ArchiveEntry> entries;
  entries.reserve(entry_count);
  Cursor cur{raw.data(), raw.size()};
  for (u32 i = 0; i < entry_count; ++i) {
    ArchiveEntry e;
    u16 name_len = cur.take<u16>();
    e.name = cur.take_string(name_len);
    if (!valid_entry_name(e.name))
      throw CompressionError("PFPA: corrupted index (unsafe entry name '" + e.name +
                             "' in entry " + std::to_string(i) + ")");
    u8 dtype = cur.take<u8>();
    u8 eb = cur.take<u8>();
    if (dtype > 1 || eb > 2)
      throw CompressionError("PFPA: corrupted index (bad dtype/eb in entry " +
                             std::to_string(i) + ")");
    e.dtype = static_cast<DType>(dtype);
    e.eb_type = static_cast<EbType>(eb);
    e.eps = cur.take<double>();
    e.offset = cur.take<u64>();
    e.size = cur.take<u64>();
    e.value_count = cur.take<u64>();
    e.raw_size = cur.take<u64>();
    e.crc32 = cur.take<u32>();
    cur.take<u32>();  // reserved
    if (e.offset < kArchiveHeaderSize || e.size > file_size || e.offset > file_size - e.size)
      throw CompressionError("PFPA: corrupted index (entry '" + e.name +
                             "' out of bounds)");
    entries.push_back(std::move(e));
  }
  if (cur.left != 0) throw CompressionError("PFPA: corrupted index (trailing bytes)");
  return entries;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ArchiveWriter::ArchiveWriter(const std::string& path) : path_(path) {
  errno = 0;
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw CompressionError("cannot create " + path + ": " + errno_text());
  Bytes header;
  put<u32>(header, kArchiveMagic);
  put<u16>(header, kArchiveVersion);
  put<u16>(header, 0);  // reserved
  write_raw(header.data(), header.size());
}

ArchiveWriter::~ArchiveWriter() {
  if (f_) std::fclose(f_);
}

void ArchiveWriter::write_raw(const void* data, std::size_t n) {
  errno = 0;
  if (n > 0 && std::fwrite(data, 1, n, f_) != n)
    throw CompressionError("short write on " + path_ + ": " + errno_text());
  offset_ += n;
}

void ArchiveWriter::add(const std::string& name, const pfpl::Header& header,
                        const Bytes& stream, u64 raw_size) {
  if (!f_ || finished_) throw CompressionError("PFPA: add() after finish()");
  if (name.size() > 0xFFFF || !valid_entry_name(name))
    throw CompressionError("PFPA: invalid entry name '" + name + "'");
  for (const ArchiveEntry& e : entries_)
    if (e.name == name) throw CompressionError("PFPA: duplicate entry name '" + name + "'");
  ArchiveEntry e;
  e.name = name;
  e.dtype = header.dtype;
  e.eb_type = header.eb_type;
  e.eps = header.eps;
  e.offset = offset_;
  e.size = stream.size();
  e.value_count = header.value_count;
  e.raw_size = raw_size;
  e.crc32 = common::crc32(stream.data(), stream.size());
  write_raw(stream.data(), stream.size());
  entries_.push_back(std::move(e));
}

void ArchiveWriter::finish() {
  if (!f_ || finished_) throw CompressionError("PFPA: finish() called twice");
  finished_ = true;
  const u64 index_offset = offset_;
  Bytes index = serialize_index(entries_);
  write_raw(index.data(), index.size());
  Bytes footer;
  put<u64>(footer, index_offset);
  put<u64>(footer, static_cast<u64>(index.size()));
  put<u32>(footer, static_cast<u32>(entries_.size()));
  put<u32>(footer, common::crc32(index.data(), index.size()));
  put<u32>(footer, kArchiveMagic);
  write_raw(footer.data(), footer.size());
  errno = 0;
  std::FILE* f = f_;
  f_ = nullptr;
  if (std::fclose(f) != 0)
    throw CompressionError("cannot close " + path_ + ": " + errno_text());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

ArchiveReader::ArchiveReader(const std::string& path) : path_(path) {
  const u64 total = io::file_size(path);
  if (total < kArchiveHeaderSize + kArchiveFooterSize)
    throw CompressionError("PFPA: " + path + " is truncated (no footer)");

  Bytes head = io::read_file_range(path, 0, kArchiveHeaderSize);
  Cursor hc{head.data(), head.size()};
  if (hc.take<u32>() != kArchiveMagic)
    throw CompressionError("PFPA: " + path + ": bad magic");
  u16 version = hc.take<u16>();
  if (version != kArchiveVersion)
    throw CompressionError("PFPA: " + path + ": unsupported version " +
                           std::to_string(version));

  Bytes foot = io::read_file_range(path, total - kArchiveFooterSize, kArchiveFooterSize);
  Cursor fc{foot.data(), foot.size()};
  const u64 index_offset = fc.take<u64>();
  const u64 index_size = fc.take<u64>();
  const u32 entry_count = fc.take<u32>();
  const u32 index_crc = fc.take<u32>();
  if (fc.take<u32>() != kArchiveMagic)
    throw CompressionError("PFPA: " + path + ": bad footer magic");
  if (index_offset < kArchiveHeaderSize || index_size > total ||
      index_offset > total - kArchiveFooterSize - index_size ||
      index_offset + index_size + kArchiveFooterSize != total)
    throw CompressionError("PFPA: " + path + ": corrupted index (bad extent)");

  Bytes index = io::read_file_range(path, index_offset, static_cast<std::size_t>(index_size));
  if (common::crc32(index.data(), index.size()) != index_crc)
    throw CompressionError("PFPA: " + path + ": corrupted index (checksum mismatch)");
  entries_ = parse_index(index, entry_count, index_offset);
}

const ArchiveEntry& ArchiveReader::find(const std::string& name) const {
  for (const ArchiveEntry& e : entries_)
    if (e.name == name) return e;
  throw CompressionError("PFPA: " + path_ + ": no entry named '" + name + "'");
}

Bytes ArchiveReader::read_entry(const ArchiveEntry& e) const {
  Bytes stream = io::read_file_range(path_, e.offset, static_cast<std::size_t>(e.size));
  if (common::crc32(stream.data(), stream.size()) != e.crc32)
    throw CompressionError("PFPA: " + path_ + ": entry '" + e.name +
                           "' failed checksum (corrupted payload)");
  return stream;
}

}  // namespace repro::svc
