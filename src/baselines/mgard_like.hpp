// MGARD-X-like baseline (Chen et al., IPDPS 2021; paper Section VI):
// multigrid hierarchical data refactoring — dyadic coarsening with
// interpolation, level-wise quantized correction coefficients, Huffman + LZ.
//
// Table III profile: ABS and NOA supported but NOT guaranteed ('○') — the
// hierarchical reconstruction accumulates quantization error across levels
// because corrections are quantized against *original* coarse values while
// the decoder interpolates from *reconstructed* ones; no REL; float+double;
// the only other CPU/GPU-compatible compressor in the study.
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class MgardLikeCompressor final : public Compressor {
 public:
  std::string name() const override { return "MGARD-X"; }
  Features features() const override {
    Features f;
    f.abs = f.noa = true;
    f.f32 = f.f64 = true;
    f.cpu = f.gpu = true;
    f.guarantee_abs = f.guarantee_noa = false;  // Table III '○'
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
