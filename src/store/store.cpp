#include "store/store.hpp"

#include <chrono>
#include <cstring>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::store {
namespace {

struct StoreMetrics {
  obs::Histogram& get_us;
  obs::Histogram& put_us;
  static StoreMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static StoreMetrics m{
        r.histogram("store.get_us", obs::Histogram::default_latency_bounds_us()),
        r.histogram("store.put_us", obs::Histogram::default_latency_bounds_us())};
    return m;
  }
};

u64 now_us() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

common::Hash128 compress_key(const void* raw, std::size_t n, DType dtype, EbType eb,
                             double eps) {
  // Hash the (potentially large) raw bytes once, then fold the request
  // parameters and a domain tag into a fixed-size second pass.
  const common::Hash128 rh = common::hash128(raw, n);
  u8 buf[32];
  buf[0] = 'C';  // domain tag: compress entry
  buf[1] = static_cast<u8>(dtype);
  buf[2] = static_cast<u8>(eb);
  buf[3] = 0;
  u32 pad = 0;
  std::memcpy(buf + 4, &pad, 4);
  std::memcpy(buf + 8, &eps, 8);
  std::memcpy(buf + 16, &rh.hi, 8);
  std::memcpy(buf + 24, &rh.lo, 8);
  return common::hash128(buf, sizeof buf);
}

common::Hash128 decompress_key(const void* stream, std::size_t n) {
  const common::Hash128 sh = common::hash128(stream, n);
  u8 buf[24];
  buf[0] = 'D';  // domain tag: decompress entry
  std::memset(buf + 1, 0, 7);
  std::memcpy(buf + 8, &sh.hi, 8);
  std::memcpy(buf + 16, &sh.lo, 8);
  return common::hash128(buf, sizeof buf);
}

ChunkStore::ChunkStore(const Options& opts) : cache_(opts.cache) {
  if (!opts.dir.empty()) {
    SegmentStore::Options lo;
    lo.dir = opts.dir;
    lo.max_segment_bytes = opts.max_segment_bytes;
    lo.fsync_each_append = opts.fsync_each_append;
    log_ = std::make_unique<SegmentStore>(lo);
  }
}

bool ChunkStore::get(const common::Hash128& key, Bytes& out) {
  OBS_SPAN("store.get");
  const u64 t0 = now_us();
  bool hit = cache_.get(key, out);
  if (!hit && log_ && log_->get(key, out)) {
    cache_.put(key, out);  // promote: the next hit skips the disk
    hit = true;
  }
  StoreMetrics::get().get_us.record(now_us() - t0);
  return hit;
}

void ChunkStore::put(const common::Hash128& key, const Bytes& payload,
                     const ChunkMeta& meta) {
  OBS_SPAN("store.put");
  const u64 t0 = now_us();
  cache_.put(key, payload);
  if (log_) log_->put(key, payload, meta);
  StoreMetrics::get().put_us.record(now_us() - t0);
}

std::size_t ChunkStore::put_batch(const std::vector<SegmentStore::BatchEntry>& entries) {
  const u64 t0 = now_us();
  for (const SegmentStore::BatchEntry& e : entries)
    if (e.payload) cache_.put(e.key, *e.payload);
  std::size_t stored = 0;
  if (log_) stored = log_->append_batch(entries);
  StoreMetrics::get().put_us.record(now_us() - t0);
  return stored;
}

bool ChunkStore::contains(const common::Hash128& key) const {
  return cache_.contains(key) || (log_ && log_->contains(key));
}

void ChunkStore::sync() {
  if (log_) log_->sync();
}

std::string ChunkStore::stats_json() const {
  const ResultCache::Stats cs = cache_.stats();
  obs::JsonWriter w;
  w.begin_object();
  w.key("cache").begin_object();
  w.kv("hits", static_cast<unsigned long long>(cs.hits));
  w.kv("misses", static_cast<unsigned long long>(cs.misses));
  w.kv("insertions", static_cast<unsigned long long>(cs.insertions));
  w.kv("evictions", static_cast<unsigned long long>(cs.evictions));
  w.kv("oversize_rejects", static_cast<unsigned long long>(cs.oversize_rejects));
  w.kv("bytes", static_cast<unsigned long long>(cs.bytes));
  w.kv("entries", static_cast<unsigned long long>(cs.entries));
  w.kv("byte_budget", static_cast<unsigned long long>(cache_.byte_budget()));
  w.kv("shards", cache_.shard_count());
  w.end_object();
  w.kv("persistent", log_ != nullptr);
  if (log_) {
    w.key("log").begin_object();
    w.kv("dir", log_->dir());
    w.kv("entries", static_cast<unsigned long long>(log_->entry_count()));
    w.kv("live_bytes", static_cast<unsigned long long>(log_->live_bytes()));
    w.kv("dead_bytes", static_cast<unsigned long long>(log_->dead_bytes()));
    w.kv("generation", static_cast<unsigned long long>(log_->generation()));
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace repro::store
