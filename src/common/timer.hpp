// Wall-clock timing helpers used by the benchmark harness.
//
// The paper reports throughput = uncompressed bytes / runtime, taking the
// median of 9 runs (Section IV). `median_runtime` reproduces that protocol.
#pragma once

#include <algorithm>
#include <chrono>
#include <vector>

namespace repro {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run `fn` `runs` times and return the median wall-clock seconds, matching
/// the paper's 9-run median protocol. `fn` is a template parameter (not a
/// std::function) so the measurement harness adds no indirect-call overhead
/// to short runs — the callable is inlined into the timing loop. When
/// `per_run` is non-null, every run's time is appended to it (in run order,
/// not sorted) so callers can report variance, not just the median.
template <typename F>
double median_runtime(F&& fn, int runs = 9, std::vector<double>* per_run = nullptr) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  if (per_run) per_run->insert(per_run->end(), times.begin(), times.end());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Throughput in MB/s (decimal megabytes, as in the paper's GB/s figures).
inline double throughput_mbps(std::size_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

}  // namespace repro
