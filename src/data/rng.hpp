// Deterministic random-number utilities for the synthetic dataset
// generators. Fixed algorithms (splitmix64 core, explicit bit-to-double
// mapping, Box–Muller) so every suite is reproducible byte-for-byte across
// runs — benches and tests rely on that.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace repro::data {

/// splitmix64: tiny, well-distributed, fully deterministic.
class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}

  u64 next_u64() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double gaussian() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  u64 state_;
};

}  // namespace repro::data
