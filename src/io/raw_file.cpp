#include "io/raw_file.hpp"

#include <cstdio>
#include <memory>

namespace repro::io {

std::vector<u8> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) throw CompressionError("cannot open " + path);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  if (size < 0) throw CompressionError("cannot stat " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<u8> buf(static_cast<std::size_t>(size));
  if (size > 0 && std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size())
    throw CompressionError("short read on " + path);
  return buf;
}

void write_file(const std::string& path, const void* data, std::size_t size) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) throw CompressionError("cannot create " + path);
  if (size > 0 && std::fwrite(data, 1, size, f.get()) != size)
    throw CompressionError("short write on " + path);
}

}  // namespace repro::io
