#include "lossless/lz.hpp"

#include <algorithm>
#include <cstring>

namespace repro::lossless {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDist = 65535;
constexpr u32 kHashBits = 16;

u32 hash4(const u8* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_varlen(Bytes& out, std::size_t v) {
  while (v >= 255) {
    out.push_back(255);
    v -= 255;
  }
  out.push_back(static_cast<u8>(v));
}

std::size_t get_varlen(const u8* data, std::size_t size, std::size_t& pos) {
  std::size_t v = 0;
  for (;;) {
    if (pos >= size) throw CompressionError("lz: truncated length");
    u8 b = data[pos++];
    v += b;
    if (b != 255) return v;
  }
}

}  // namespace

Bytes lz_encode(std::span<const u8> in) {
  Bytes out;
  u64 n = in.size();
  out.insert(out.end(), reinterpret_cast<u8*>(&n), reinterpret_cast<u8*>(&n) + 8);
  if (n == 0) return out;

  std::vector<u32> head(std::size_t{1} << kHashBits, 0xFFFFFFFFu);
  std::size_t pos = 0, literal_start = 0;

  auto emit_sequence = [&](std::size_t lit_count, std::size_t match_len, std::size_t dist) {
    // Token: high nibble literals (15 = extended), low nibble match-4
    // (15 = extended); dist == 0 marks the final literal-only sequence.
    u8 tok = static_cast<u8>(std::min<std::size_t>(lit_count, 15) << 4);
    std::size_t mcode = dist ? match_len - kMinMatch : 0;
    tok |= static_cast<u8>(std::min<std::size_t>(mcode, 15));
    out.push_back(tok);
    if (lit_count >= 15) put_varlen(out, lit_count - 15);
    out.insert(out.end(), in.data() + literal_start, in.data() + literal_start + lit_count);
    out.push_back(static_cast<u8>(dist & 0xFF));
    out.push_back(static_cast<u8>(dist >> 8));
    if (dist && mcode >= 15) put_varlen(out, mcode - 15);
  };

  while (pos < in.size()) {
    std::size_t best_len = 0, best_dist = 0;
    if (pos + kMinMatch <= in.size()) {
      u32 h = hash4(in.data() + pos);
      u32 cand = head[h];
      if (cand != 0xFFFFFFFFu && pos - cand <= kMaxDist) {
        std::size_t len = 0;
        std::size_t limit = in.size() - pos;
        while (len < limit && in[cand + len] == in[pos + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_dist = pos - cand;
        }
      }
      head[h] = static_cast<u32>(pos);
    }
    if (best_len) {
      emit_sequence(pos - literal_start, best_len, best_dist);
      // Insert hash entries inside the match (sparsely, every 2 bytes).
      std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= in.size() && p < end; p += 2)
        head[hash4(in.data() + p)] = static_cast<u32>(p);
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  emit_sequence(pos - literal_start, 0, 0);  // final literals
  return out;
}

std::vector<u8> lz_decode(const u8* data, std::size_t size) {
  if (size < 8) throw CompressionError("lz: truncated header");
  u64 n;
  std::memcpy(&n, data, 8);
  // Cap the up-front reservation: a corrupted header must not drive a giant
  // allocation (the decode loop's own bounds checks catch the corruption).
  std::vector<u8> out;
  out.reserve(std::min<u64>(n, size * 256));
  std::size_t pos = 8;
  while (out.size() < n) {
    if (pos >= size) throw CompressionError("lz: truncated token");
    u8 tok = data[pos++];
    std::size_t lit = tok >> 4;
    if (lit == 15) lit += get_varlen(data, size, pos);
    if (pos + lit > size) throw CompressionError("lz: truncated literals");
    out.insert(out.end(), data + pos, data + pos + lit);
    pos += lit;
    if (pos + 2 > size) throw CompressionError("lz: truncated distance");
    std::size_t dist = data[pos] | (static_cast<std::size_t>(data[pos + 1]) << 8);
    pos += 2;
    if (dist == 0) break;  // final sequence
    std::size_t mlen = (tok & 15);
    if (mlen == 15) mlen += get_varlen(data, size, pos);
    mlen += kMinMatch;
    if (dist > out.size()) throw CompressionError("lz: bad distance");
    std::size_t src = out.size() - dist;
    for (std::size_t i = 0; i < mlen; ++i) out.push_back(out[src + i]);
  }
  if (out.size() != n) throw CompressionError("lz: size mismatch");
  return out;
}

}  // namespace repro::lossless
