// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) — the one integrity
// checksum of the repository, shared by the PFPA archive layer (src/svc) and
// the PFPN wire protocol (src/net). Header-only; the table is built once per
// process.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace repro::common {

inline const std::array<u32, 256>& crc32_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Incremental form: pass the previous return value as `seed` to continue.
inline u32 crc32(const void* data, std::size_t n, u32 seed = 0) {
  const auto& t = crc32_table();
  const u8* p = static_cast<const u8*>(data);
  u32 c = ~seed;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return ~c;
}

}  // namespace repro::common
