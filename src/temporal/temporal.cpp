#include "temporal/temporal.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <span>

#include "core/chunked.hpp"
#include "metrics/error_stats.hpp"
#include "obs/metrics.hpp"

namespace repro::temporal {
namespace {

struct TemporalMetrics {
  obs::Counter& frames;
  obs::Counter& iframes;
  obs::Counter& pframes;
  obs::Counter& chunks_predicted;
  obs::Counter& chunks_intra;
  obs::Counter& audit_fallbacks;
  obs::Counter& audit_values;
  obs::Counter& violations;  ///< the zero-baseline invariant: stays 0
};

TemporalMetrics& temporal_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static TemporalMetrics m{r.counter("temporal.frames"),
                           r.counter("temporal.iframes"),
                           r.counter("temporal.pframes"),
                           r.counter("temporal.chunks_predicted"),
                           r.counter("temporal.chunks_intra"),
                           r.counter("temporal.audit_fallbacks"),
                           r.counter("temporal.audit_values"),
                           r.counter("temporal.violations")};
  return m;
}

template <typename T>
double min_normal() {
  return static_cast<double>(std::numeric_limits<T>::min());
}

double min_normal_of(DType t) {
  return t == DType::F32 ? min_normal<float>() : min_normal<double>();
}

void validate_config(const SessionConfig& cfg) {
  if (cfg.frame_values() == 0)
    throw CompressionError("temporal: frame shape has zero values");
  switch (cfg.eb) {
    case EbType::ABS:
      if (!(cfg.eps >= min_normal_of(cfg.dtype)))
        throw CompressionError("temporal: ABS bound below the smallest positive normal");
      break;
    case EbType::REL:
      if (!(cfg.eps > 0)) throw CompressionError("temporal: REL bound must be > 0");
      break;
    case EbType::NOA:
      if (!(cfg.eps >= 0)) throw CompressionError("temporal: NOA bound must be >= 0");
      break;
  }
}

std::array<std::size_t, 3> field_dims(const SessionConfig& cfg) {
  return {cfg.dims[0], cfg.dims[1], cfg.dims[2]};
}

/// Cheap coded-size model for the sampled probe: bits to store one value as
/// a bin under the derived bound (log2 of the bin magnitude). The absolute
/// scale is irrelevant — only the direct-vs-residual comparison matters.
double probe_cost(double v, double inv_two_eps) {
  if (!std::isfinite(v)) return 64.0;  // lossless storage, worst case
  return std::log2(std::fabs(v) * inv_two_eps + 1.0);
}

}  // namespace

bool chunk_predicted(const Bytes& modes, std::size_t i) {
  const std::size_t byte = i >> 3;
  if (byte >= modes.size()) return false;
  return (modes[byte] >> (i & 7)) & 1;
}

FrameEncoder::FrameEncoder(const SessionConfig& cfg) : cfg_(cfg) {
  validate_config(cfg_);
}

EncodedFrame FrameEncoder::encode(const Field& frame, u64 frame_index) {
  if (frame.dtype != cfg_.dtype)
    throw CompressionError("temporal: frame dtype does not match the session");
  if (frame.count() != cfg_.frame_values())
    throw CompressionError("temporal: frame has " + std::to_string(frame.count()) +
                           " values, session expects " +
                           std::to_string(cfg_.frame_values()));
  return cfg_.dtype == DType::F32 ? encode_typed<float>(frame, frame_index)
                                  : encode_typed<double>(frame, frame_index);
}

template <typename T>
EncodedFrame FrameEncoder::encode_typed(const Field& frame, u64 frame_index) {
  auto& m = temporal_metrics();
  const std::size_t count = cfg_.frame_values();
  const std::size_t cv = pfpl::chunk_values(cfg_.dtype);
  const std::size_t chunks = (count + cv - 1) / cv;
  const T* vals = static_cast<const T*>(frame.data);
  const Field sized(vals, field_dims(cfg_));

  bool want_intra = reference_.empty() || cfg_.eb == EbType::REL ||
                    (cfg_.keyframe_interval > 0 &&
                     frames_encoded_ % cfg_.keyframe_interval == 0);

  // Derive the absolute bound a P frame's mixed stream would be coded under.
  double abs_bound = cfg_.eps;
  if (!want_intra && cfg_.eb == EbType::NOA) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < count; ++i) {
      const double v = static_cast<double>(vals[i]);
      if (!std::isfinite(v)) continue;
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    abs_bound = (hi >= lo) ? cfg_.eps * (hi - lo) : 0.0;
    if (!(abs_bound >= min_normal<T>())) want_intra = true;  // PFPL ABS floor
  }

  EncodedFrame out;
  out.frame_index = frame_index;

  // Guard band: the residual cast to T and the closed-loop add (ref + hat,
  // rounded back to T) each cost up to an ulp at the operand magnitude, so a
  // residual coded at exactly abs_bound can reconstruct marginally past the
  // session bound and waste the whole P frame on the audit fallback. Code
  // the mixed stream a few ulps tighter instead — the ratio cost is
  // invisible, the fallback rate drops to ~zero.
  double coded_bound = 0.0;
  if (!want_intra) {
    const T* ref = reinterpret_cast<const T*>(reference_.data());
    double max_mag = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double a = std::fabs(static_cast<double>(vals[i]));
      const double b = std::fabs(static_cast<double>(ref[i]));
      if (std::isfinite(a) && a > max_mag) max_mag = a;
      if (std::isfinite(b) && b > max_mag) max_mag = b;
    }
    coded_bound =
        abs_bound -
        4.0 * max_mag * static_cast<double>(std::numeric_limits<T>::epsilon());
    if (!(coded_bound >= min_normal<T>())) want_intra = true;  // bound floor
  }

  if (!want_intra) {
    const T* ref = reinterpret_cast<const T*>(reference_.data());
    const double inv_two_eps = 0.5 / coded_bound;
    std::vector<T> mixed(count);
    Bytes modes((chunks + 7) / 8, 0);
    std::size_t predicted = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * cv;
      const std::size_t hi = std::min(lo + cv, count);
      // Sampled probe: cost the chunk both ways at a stride of values.
      const std::size_t step =
          std::max<std::size_t>(1, (hi - lo) / std::max<u32>(1, cfg_.probe_samples));
      double direct_bits = 0, resid_bits = 0;
      for (std::size_t i = lo; i < hi; i += step) {
        const double o = static_cast<double>(vals[i]);
        direct_bits += probe_cost(o, inv_two_eps);
        resid_bits += probe_cost(o - static_cast<double>(ref[i]), inv_two_eps);
      }
      bool predict = resid_bits < direct_bits;  // ties go to intra
      if (predict) {
        // Residual coding needs finite arithmetic on every value, not just
        // the probed ones.
        for (std::size_t i = lo; i < hi && predict; ++i)
          predict = std::isfinite(static_cast<double>(vals[i])) &&
                    std::isfinite(static_cast<double>(ref[i]));
      }
      if (predict) {
        modes[c >> 3] |= static_cast<u8>(1u << (c & 7));
        ++predicted;
        for (std::size_t i = lo; i < hi; ++i)
          mixed[i] = static_cast<T>(static_cast<double>(vals[i]) -
                                    static_cast<double>(ref[i]));
      } else {
        std::memcpy(mixed.data() + lo, vals + lo, (hi - lo) * sizeof(T));
      }
    }

    Bytes payload = pfpl::compress(Field(mixed.data(), field_dims(cfg_)),
                                   {coded_bound, EbType::ABS, cfg_.exec});
    std::vector<T> hat = pfpl::decompress_as<T>(payload, cfg_.exec);
    std::vector<T> recon(count);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * cv;
      const std::size_t hi = std::min(lo + cv, count);
      if (chunk_predicted(modes, c)) {
        for (std::size_t i = lo; i < hi; ++i)
          recon[i] = static_cast<T>(static_cast<double>(ref[i]) +
                                    static_cast<double>(hat[i]));
      } else {
        std::memcpy(recon.data() + lo, hat.data() + lo, (hi - lo) * sizeof(T));
      }
    }

    // External audit of the closed-loop reconstruction against the *session*
    // bound. Residual rounding at extreme magnitudes could in principle leak
    // past the derived bound — if it ever does, discard the P frame and
    // re-encode intra, keeping the invariant unconditional.
    const std::size_t bad = metrics::count_violations(
        std::span<const T>(vals, count), std::span<const T>(recon.data(), count),
        cfg_.eps, cfg_.eb);
    m.audit_values.add(count);
    if (bad == 0) {
      out.type = FrameType::Predicted;
      out.abs_bound = coded_bound;
      out.chunk_modes = std::move(modes);
      out.payload = std::move(payload);
      out.predicted_chunks = predicted;
      out.intra_chunks = chunks - predicted;
      reference_.resize(count * sizeof(T));
      std::memcpy(reference_.data(), recon.data(), reference_.size());
      ++frames_encoded_;
      ++predicted_frames_;
      predicted_chunks_ += predicted;
      intra_fallback_chunks_ += chunks - predicted;
      m.frames.add(1);
      m.pframes.add(1);
      m.chunks_predicted.add(predicted);
      m.chunks_intra.add(chunks - predicted);
      return out;
    }
    ++audit_fallbacks_;
    m.audit_fallbacks.add(1);
  }

  // Intra frame (first frame, keyframe cadence, REL, NOA bound floor, or
  // P-frame audit fallback).
  out.type = FrameType::Intra;
  out.abs_bound = 0.0;
  out.payload = pfpl::compress(sized, {cfg_.eps, cfg_.eb, cfg_.exec});
  out.intra_chunks = chunks;
  std::vector<u8> raw = pfpl::decompress(out.payload, cfg_.exec);
  const T* recon = reinterpret_cast<const T*>(raw.data());
  const std::size_t bad = metrics::count_violations(
      std::span<const T>(vals, count), std::span<const T>(recon, count), cfg_.eps,
      cfg_.eb);
  m.audit_values.add(count);
  if (bad != 0) {
    // PFPL's encode-time verification makes this unreachable; treat it as a
    // hard fault rather than emitting an out-of-bound frame.
    m.violations.add(bad);
    throw CompressionError("temporal: intra frame failed the bound audit (" +
                           std::to_string(bad) + " values)");
  }
  reference_ = std::move(raw);
  ++frames_encoded_;
  ++intra_frames_;
  m.frames.add(1);
  m.iframes.add(1);
  m.chunks_intra.add(chunks);
  return out;
}

FrameDecoder::FrameDecoder(const SessionConfig& cfg) : cfg_(cfg) {
  validate_config(cfg_);
}

const std::vector<u8>& FrameDecoder::decode(const EncodedFrame& f) {
  const pfpl::Header h = pfpl::peek_header(f.payload);
  if (h.value_count != cfg_.frame_values())
    throw CompressionError("temporal: frame payload holds " +
                           std::to_string(h.value_count) + " values, session expects " +
                           std::to_string(cfg_.frame_values()));
  if (h.dtype != cfg_.dtype)
    throw CompressionError("temporal: frame payload dtype does not match the session");
  if (cfg_.dtype == DType::F32)
    decode_typed<float>(f);
  else
    decode_typed<double>(f);
  ++frames_decoded_;
  return reference_;
}

template <typename T>
void FrameDecoder::decode_typed(const EncodedFrame& f) {
  const std::size_t count = cfg_.frame_values();
  if (f.type == FrameType::Intra) {
    reference_ = pfpl::decompress(f.payload, cfg_.exec);
    return;
  }
  if (reference_.size() != count * sizeof(T))
    throw CompressionError(
        "temporal: predicted frame without a reference (stream must start at an "
        "I frame)");
  const std::size_t cv = pfpl::chunk_values(cfg_.dtype);
  const std::size_t chunks = (count + cv - 1) / cv;
  if (f.chunk_modes.size() != (chunks + 7) / 8)
    throw CompressionError("temporal: predicted frame has a malformed chunk-mode bitmap");
  std::vector<T> hat = pfpl::decompress_as<T>(f.payload, cfg_.exec);
  std::vector<u8> out(count * sizeof(T));
  T* recon = reinterpret_cast<T*>(out.data());
  const T* ref = reinterpret_cast<const T*>(reference_.data());
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * cv;
    const std::size_t hi = std::min(lo + cv, count);
    if (chunk_predicted(f.chunk_modes, c)) {
      for (std::size_t i = lo; i < hi; ++i)
        recon[i] = static_cast<T>(static_cast<double>(ref[i]) +
                                  static_cast<double>(hat[i]));
    } else {
      std::memcpy(recon + lo, hat.data() + lo, (hi - lo) * sizeof(T));
    }
  }
  reference_ = std::move(out);
}

}  // namespace repro::temporal
