#include "fpmath/det_math.hpp"

namespace repro::fpmath {
namespace {

// ln(2) split into a high part exact in 32 bits and a low correction, so the
// product k * ln2_hi is exact for |k| < 2^20 and argument reduction loses no
// precision.
constexpr double kLn2Hi = 6.93147180369123816490e-01;   // upper bits of ln 2
constexpr double kLn2Lo = 1.90821492927058770002e-10;   // ln 2 - kLn2Hi
constexpr double kInvLn2 = 1.44269504088896338700e+00;  // 1 / ln 2
constexpr double kTwo52 = 4503599627370496.0;           // 2^52
constexpr double kSqrt2 = 1.41421356237309514547;

}  // namespace

double round_nearest_even(double x) {
  // Adding and subtracting 2^52 forces rounding at the integer position
  // under the IEEE default round-to-nearest-even mode. Values >= 2^52 are
  // already integral.
  if (x >= 0.0) {
    if (x >= kTwo52) return x;
    double t = x + kTwo52;
    return t - kTwo52;
  }
  if (x <= -kTwo52) return x;
  double t = x - kTwo52;
  return t + kTwo52;
}

double det_log(double x) {
  using FT = FloatTraits<double>;
  u64 bits = to_bits(x);
  int extra = 0;
  if (bits < FT::denormal_limit) {
    // Denormal input: scale into the normal range by 2^54 (exact) and
    // compensate in the exponent term.
    x = x * 18014398509481984.0;  // 2^54
    bits = to_bits(x);
    extra = -54;
  }
  int e = static_cast<int>(bits >> FT::mantissa_bits) - 1023 + extra;
  double m = from_bits<double>((bits & FT::mantissa_mask) | 0x3FF0000000000000ull);
  if (m > kSqrt2) {
    m = m * 0.5;
    e += 1;
  }
  // log(m) for m in (sqrt(2)/2, sqrt(2)] via the atanh series:
  //   log(m) = 2s * (1 + z/3 + z^2/5 + ...),  s = (m-1)/(m+1), z = s^2.
  // |s| <= 0.1716 so 9 terms give < 1e-15 relative error.
  double s = (m - 1.0) / (m + 1.0);
  double z = s * s;
  double p = 1.0 / 17.0;
  p = p * z + 1.0 / 15.0;
  p = p * z + 1.0 / 13.0;
  p = p * z + 1.0 / 11.0;
  p = p * z + 1.0 / 9.0;
  p = p * z + 1.0 / 7.0;
  p = p * z + 1.0 / 5.0;
  p = p * z + 1.0 / 3.0;
  p = p * z + 1.0;
  double log_m = 2.0 * s * p;
  double de = static_cast<double>(e);
  return de * kLn2Hi + (de * kLn2Lo + log_m);
}

double det_log1p(double x) {
  // For x >= 0.1 the direct form's 1+x rounding costs < 2^-53/log(1.1)
  // ~ 1.2e-15 relative error; below that use the atanh series around 0
  // (s <= 0.0477, so six terms reach ~1e-17).
  if (x >= 0.1) return det_log(1.0 + x);
  // log(1+x) = 2 atanh(x / (2 + x)); same series as det_log.
  double s = x / (2.0 + x);
  double z = s * s;
  double p = 1.0 / 11.0;
  p = p * z + 1.0 / 9.0;
  p = p * z + 1.0 / 7.0;
  p = p * z + 1.0 / 5.0;
  p = p * z + 1.0 / 3.0;
  p = p * z + 1.0;
  return 2.0 * s * p;
}

double det_exp(double x) {
  if (x > 709.782712893384) return from_bits<double>(FloatTraits<double>::pos_inf);
  if (x < -745.2) return 0.0;
  // Argument reduction: x = k*ln2 + r, |r| <= ln2/2.
  double dk = round_nearest_even(x * kInvLn2);
  i64 k = static_cast<i64>(dk);
  double r = (x - dk * kLn2Hi) - dk * kLn2Lo;
  // exp(r) Taylor series; |r| <= 0.3466 so 15 terms reach < 2e-17.
  double p = 1.0 / 1307674368000.0;  // 1/15!
  p = p * r + 1.0 / 87178291200.0;
  p = p * r + 1.0 / 6227020800.0;
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // Scale by 2^k. For k in the normal-exponent range a single exact multiply
  // suffices; near the denormal boundary split the scaling so intermediate
  // values stay representable.
  if (k >= -1021 && k <= 1023) {
    double scale = from_bits<double>(static_cast<u64>(k + 1023) << 52);
    return p * scale;
  }
  if (k > 1023) {
    // p in [~0.7, ~1.5] so 2^1023 * p can still overflow only if k > 1023.
    double scale = from_bits<double>(static_cast<u64>(2046) << 52);  // 2^1023
    double q = p * scale;
    i64 rem = k - 1023;
    while (rem > 0 && is_finite_bits<double>(to_bits(q))) {
      q = q * 2.0;
      --rem;
    }
    return q;
  }
  // k < -1021: descend into the denormal range in two steps.
  double scale1 = from_bits<double>(static_cast<u64>(-1021 + 1023) << 52);  // 2^-1021
  double q = p * scale1;
  i64 rem = -1021 - k;  // > 0
  // Remaining factor 2^-rem; apply in halving steps (each step is exact or
  // correctly rounded into the denormal range).
  while (rem >= 52) {
    q = q * 2.220446049250313e-16;  // 2^-52, exact scaling while q normal
    rem -= 52;
  }
  if (rem > 0) {
    double scale2 = from_bits<double>(static_cast<u64>(1023 - rem) << 52);
    q = q * scale2;
  }
  return q;
}

}  // namespace repro::fpmath
