// SegmentStore — the persistent tier of the PFPS chunk store ("PFPS/1").
//
// A store directory holds:
//
//   manifest.pfps       fsync'd manifest: generation number + the segment
//                       list with each sealed segment's valid byte count
//   seg-NNNNNNNN.pfps   append-only segment files of CRC-32-framed chunks
//
// Writes only ever append to the highest-numbered ("active") segment; once a
// segment reaches max_segment_bytes it is fsync'd, sealed into the manifest
// (generation + 1), and a new active segment starts. Every frame carries two
// CRC-32s — one over the fixed header fields, one over the payload — so a
// torn write is detectable at the exact frame boundary.
//
// Crash safety: reopening scans every segment front to back. The first
// invalid frame in the ACTIVE segment marks the torn tail of an interrupted
// append — the file is truncated back to the last valid frame and appending
// resumes there, losing at most that single frame. An invalid frame anywhere
// else is corruption (frames are variable-length, so nothing after it can be
// resynchronized); the rest of that segment is skipped, counted as dead
// bytes, and reported by verify(). The manifest is written via
// write-tmp + fsync + rename + fsync(dir), so a crash leaves either the old
// or the new generation, never a torn one; a missing or corrupt manifest
// degrades to a full directory scan, losing nothing but the sealed-size
// bookkeeping.
//
// Dedup: put() of a key that is already indexed is a no-op (the index is
// content-addressed). Dead bytes — torn tails, corrupt regions, duplicate
// frames left behind by an interrupted compact() — are reclaimed by
// compact(), which rewrites the live entries into fresh segments, commits
// the new manifest, and only then deletes the old files.
//
// Thread safety: all public methods are serialized on one internal mutex
// (appends are I/O-bound; the hot read path is the in-memory cache tier in
// front of this class).
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace repro::store {

inline constexpr u32 kSegmentMagic = 0x53504650u;   // "PFPS"
inline constexpr u32 kFrameMagic = 0x43534650u;     // "PFSC"
inline constexpr u32 kManifestMagic = 0x4D504650u;  // "PFPM"
inline constexpr u16 kStoreVersion = 1;
inline constexpr std::size_t kSegmentHeaderSize = 16;
inline constexpr std::size_t kChunkFrameHeaderSize = 56;

/// Parameters a stored chunk was compressed under (recorded in its frame).
struct ChunkMeta {
  DType dtype = DType::F32;
  EbType eb = EbType::ABS;
  double eps = 0.0;
  u64 raw_size = 0;  ///< original uncompressed bytes
};

/// One live index entry (returned by entries() for `pfpl store ls`).
struct StoredChunk {
  common::Hash128 key;
  ChunkMeta meta;
  u64 payload_len = 0;
  u64 segment = 0;  ///< segment id
  u64 offset = 0;   ///< frame start within the segment file
};

class SegmentStore {
 public:
  struct Options {
    std::string dir;
    u64 max_segment_bytes = 64u << 20;  ///< rotate the active segment past this
    bool fsync_each_append = false;     ///< durability per put() vs per seal
  };

  /// What open-time recovery found (the `pfpl store verify` preamble).
  struct OpenReport {
    u64 generation = 0;     ///< manifest generation after open
    u64 segments = 0;       ///< segment files indexed
    u64 entries = 0;        ///< live (deduped) entries
    u64 live_bytes = 0;     ///< frame bytes owned by live entries
    u64 dead_bytes = 0;     ///< duplicate/corrupt/torn bytes reclaimable by compact
    u64 torn_bytes = 0;     ///< bytes truncated off the active segment's tail
    u64 duplicate_frames = 0;
    u64 corrupt_segments = 0;  ///< segments with a mid-file invalid frame
    bool manifest_recovered = false;  ///< manifest missing/corrupt, rebuilt by scan
  };

  struct VerifyReport {
    u64 segments = 0;
    u64 frames_ok = 0;
    u64 corrupt_frames = 0;  ///< frames whose header or payload CRC fails now
    u64 bytes_scanned = 0;
    bool ok() const { return corrupt_frames == 0; }
  };

  struct CompactReport {
    u64 segments_before = 0;
    u64 segments_after = 0;
    u64 bytes_before = 0;
    u64 bytes_after = 0;
    u64 reclaimed_bytes = 0;
    u64 live_entries = 0;
  };

  /// Opens (creating the directory if needed) and recovers the store.
  /// Throws CompressionError on unrecoverable I/O failure.
  explicit SegmentStore(const Options& opts);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  bool contains(const common::Hash128& key) const;

  /// Read one chunk's payload (verifying its CRC) into `out`; optionally its
  /// metadata. Returns false when the key is absent; throws CompressionError
  /// when the stored frame fails its CRC (surface corruption, never garbage).
  bool get(const common::Hash128& key, Bytes& out, ChunkMeta* meta = nullptr) const;

  /// Append a chunk. Returns true when newly stored, false when the key was
  /// already present (dedup hit — nothing is written).
  bool put(const common::Hash128& key, const Bytes& payload, const ChunkMeta& meta);

  /// One entry of append_batch(). The payload is borrowed; it must stay
  /// alive until the call returns.
  struct BatchEntry {
    common::Hash128 key;
    const Bytes* payload = nullptr;
    ChunkMeta meta;
  };

  /// Append a group of chunks under ONE lock acquisition, ONE stdio flush,
  /// and (when Options::fsync_each_append is set) ONE fsync for the whole
  /// batch — the group-commit the ingest pipeline's append stage batches
  /// into. Duplicate keys (against the index or earlier entries of the same
  /// batch) are skipped exactly like put(). Frames are written in entry
  /// order, so a crash mid-batch can only lose a suffix: the reopen scan
  /// truncates the torn frame and everything after it, never surfacing entry
  /// i+1 without entry i. Returns the number of entries newly stored.
  std::size_t append_batch(const std::vector<BatchEntry>& entries);

  std::vector<StoredChunk> entries() const;
  std::size_t entry_count() const;
  u64 live_bytes() const;
  u64 dead_bytes() const;
  u64 generation() const;
  const std::string& dir() const { return opts_.dir; }

  const OpenReport& open_report() const { return open_report_; }

  /// Re-read and CRC-check every frame of every segment on disk.
  VerifyReport verify() const;

  /// Rewrite live entries into fresh segments and drop the dead bytes.
  CompactReport compact();

  /// Flush and fsync the active segment and commit a fresh manifest (called
  /// by the destructor; exposed for deterministic tests).
  void sync();

 private:
  struct Segment {
    u64 id = 0;
    u64 valid_bytes = 0;  ///< header + valid frames (append offset)
    u64 file_bytes = 0;   ///< on-disk size (>= valid when corrupt/torn)
    bool sealed = false;
  };
  struct IndexEntry {
    u64 segment = 0;
    u64 offset = 0;
    u64 payload_len = 0;
    ChunkMeta meta;
  };

  std::string segment_path(u64 id) const;
  std::string manifest_path() const;
  void write_manifest_locked();
  void open_active_locked(u64 id, bool create);
  void rotate_locked();
  void scan_segment_locked(Segment& seg, bool active);
  /// Write one frame at the active segment's tail. `flush` controls the
  /// per-frame fflush/fsync (put() flushes each frame; append_batch() defers
  /// to one group flush). `torn_kill` is the batch kill hook: write half the
  /// payload, fsync, SIGKILL.
  void append_frame_locked(const common::Hash128& key, const Bytes& payload,
                           const ChunkMeta& meta, bool flush, bool torn_kill = false);

  Options opts_;
  mutable std::mutex m_;
  std::map<u64, Segment> segments_;  ///< ordered by id; last = active
  std::unordered_map<common::Hash128, IndexEntry, common::Hash128Hasher> index_;
  std::FILE* active_ = nullptr;  ///< append handle for the active segment
  u64 generation_ = 0;
  u64 live_bytes_ = 0;
  u64 dead_bytes_ = 0;
  OpenReport open_report_;
  u64 appends_this_process_ = 0;  ///< drives the PFPL_STORE_TEST_KILL_AT_APPEND hook
  u64 batch_frames_this_process_ = 0;  ///< PFPL_STORE_TEST_KILL_AT_BATCH_ITEM hook
};

}  // namespace repro::store
