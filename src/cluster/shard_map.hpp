// ShardMap — the consistent-hash ring that partitions the 128-bit content-
// hash keyspace across pfpld nodes.
//
// Every node contributes `vnodes` points on a 64-bit ring, each point the
// MurmurHash of "<node_id>#<vnode>". A key routes to the first point at or
// after its own hash (wrapping), and its R-way replica list is the next R
// *distinct* nodes walking clockwise — so when one node joins or leaves,
// only the keys whose arc it gained or lost move (~1/N of the keyspace),
// and everything else keeps its owner. With >=128 vnodes per node the
// per-node share of the keyspace concentrates within a few percent of 1/N
// (tests/test_cluster.cpp pins ±15%).
//
// A map is immutable after construction; membership changes produce a new
// map with the epoch bumped. The epoch is the cluster's generation number:
// servers reject requests for keys they do not own under their current map
// (Status::WrongShard) and clients react by refetching the map (SHARDMAP op)
// — epoch comparison decides who is stale.
//
// Serialization ("PFSM", docs/FORMAT.md) is deterministic: nodes are stored
// sorted by id, integers little-endian, and the whole body is covered by the
// same CRC-32 the PFPA archive and PFPN frames use. serialize() of parse()
// is byte-identical, so maps can be compared, content-addressed, and diffed
// across machines.
#pragma once

#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace repro::cluster {

/// One pfpld node: a stable identity plus where to reach it.
struct NodeInfo {
  std::string id;    ///< unique within the cluster, e.g. "n0"
  std::string host;  ///< connect address for clients
  u16 port = 0;
};

class ShardMap {
 public:
  static constexpr u32 kDefaultVnodes = 128;
  static constexpr u16 kDefaultReplicas = 2;

  /// Empty map: no nodes, epoch 0. route() on an empty map throws.
  ShardMap() = default;

  /// Throws CompressionError on duplicate/empty node ids, zero vnodes, or
  /// zero replicas. `replicas` is clamped to the node count at route time.
  ShardMap(std::string cluster_id, std::vector<NodeInfo> nodes,
           u32 vnodes = kDefaultVnodes, u16 replicas = kDefaultReplicas,
           u64 epoch = 1);

  const std::string& cluster_id() const { return cluster_id_; }
  u64 epoch() const { return epoch_; }
  u16 replicas() const { return replicas_; }
  u32 vnodes() const { return vnodes_; }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Index into nodes() for `id`, or -1.
  int find_node(const std::string& id) const;

  /// The replica list for a key: min(replicas, size) distinct node indices,
  /// primary first, in ring order. Deterministic for a given map.
  std::vector<u32> route(const common::Hash128& key) const;
  /// route(key)[0].
  u32 primary(const common::Hash128& key) const;
  /// Whether node `node_index` appears in route(key). Negative = false.
  bool owns(const common::Hash128& key, int node_index) const;

  /// Membership changes return a new map with epoch + 1 and the same
  /// cluster_id/vnodes/replicas. Throws on duplicate add / unknown remove.
  ShardMap with_node_added(NodeInfo node) const;
  ShardMap with_node_removed(const std::string& id) const;

  /// Deterministic PFSM serialization (docs/FORMAT.md §PFSM).
  Bytes serialize() const;
  /// Throws CompressionError on bad magic/version, truncation, or CRC
  /// mismatch.
  static ShardMap parse(const void* data, std::size_t n);
  static ShardMap parse(const Bytes& b) { return parse(b.data(), b.size()); }

  static ShardMap load_file(const std::string& path);
  void save_file(const std::string& path) const;

  /// Human-readable summary (obs-style JSON object; not the wire format).
  std::string json() const;

 private:
  void build_ring();

  std::string cluster_id_;
  std::vector<NodeInfo> nodes_;  ///< sorted by id
  u32 vnodes_ = kDefaultVnodes;
  u16 replicas_ = kDefaultReplicas;
  u64 epoch_ = 0;
  /// (ring point, node index), sorted by point.
  std::vector<std::pair<u64, u32>> ring_;
};

}  // namespace repro::cluster
