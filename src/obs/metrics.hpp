// MetricsRegistry — named counters, gauges, and fixed-bucket histograms.
//
// Update paths are lock-free after the first lookup: a Counter/Histogram is
// an array of cache-line-padded shards, each thread hashes to one shard and
// does a relaxed fetch_add, and reads merge the shards. That keeps the hot
// encode loops (one counter bump per 16 KiB chunk, plus per-task pool
// accounting) free of a shared contended cache line at any worker count.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and returns a
// reference that stays valid for the registry's lifetime — call sites cache
// it in a function-local static:
//
//   static obs::Counter& chunks = obs::MetricsRegistry::global().counter("core.chunks");
//   chunks.add(1);
//
// All updates are additionally gated on obs::enabled(): when observability
// is off, add()/record() are a relaxed load + branch and touch nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "obs/control.hpp"

namespace repro::obs {

class JsonWriter;

namespace detail {
/// Shard index of the calling thread (stable per thread, hashed once).
inline std::size_t shard_index(std::size_t nshards) {
  static thread_local const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h % nshards;
}

struct alignas(64) PaddedCounter {
  std::atomic<u64> v{0};
};
}  // namespace detail

inline constexpr std::size_t kMetricShards = 16;

/// Monotonic counter. add() is sharded and lock-free; value() merges shards.
class Counter {
 public:
  void add(u64 n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index(kMetricShards)].v.fetch_add(n, std::memory_order_relaxed);
  }
  u64 value() const {
    u64 total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedCounter, kMetricShards> shards_;
};

/// Point-in-time signed value (queue depths, in-flight bytes). set()/add()
/// are single-cell atomics — gauges are not hot enough to shard, and a
/// sharded "current value" has no meaningful merge.
class Gauge {
 public:
  void set(long long v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    update_peak(v);
  }
  void add(long long d) {
    if (!enabled()) return;
    update_peak(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  long long peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_peak(long long v) {
    long long p = peak_.load(std::memory_order_relaxed);
    while (v > p && !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<long long> v_{0};
  std::atomic<long long> peak_{0};
};

/// Fixed-bucket histogram over u64 samples (latencies in microseconds by
/// convention). Bucket i counts samples <= bounds[i]; one overflow bucket
/// holds the rest. Buckets and the sum/count/min/max aggregates are sharded
/// like Counter.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; it is fixed for the histogram's
  /// lifetime. An empty bounds list degenerates to a single overflow bucket.
  explicit Histogram(std::vector<u64> bounds);

  void record(u64 v) {
    if (!enabled()) return;
    Shard& s = shards_[detail::shard_index(kMetricShards)];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    relaxed_min(s.min, v);
    relaxed_max(s.max, v);
  }

  /// Default exponential latency bounds in microseconds: 1us .. ~16s.
  static std::vector<u64> default_latency_bounds_us();

  const std::vector<u64>& bounds() const { return bounds_; }
  std::size_t bucket_of(u64 v) const {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    return i;  // bounds_.size() == overflow bucket
  }

  /// Merged bucket counts (size bounds().size() + 1, last = overflow).
  std::vector<u64> bucket_counts() const;
  /// Quantile estimate for q in [0,1] by linear interpolation inside the
  /// containing bucket, clamped to [min(), max()] so the estimate can never
  /// leave the observed range. 0 when the histogram is empty. Exponential
  /// buckets make this coarse in the tail — treat p95/p99 as indicative, not
  /// exact (the RegressionGate marks quantile metrics advisory for this
  /// reason).
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  u64 count() const;
  u64 sum() const;
  u64 min() const;  ///< UINT64_MAX when empty
  u64 max() const;  ///< 0 when empty
  double mean() const {
    u64 c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }
  void reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<u64>> buckets;
    std::atomic<u64> sum{0};
    std::atomic<u64> count{0};
    std::atomic<u64> min{UINT64_MAX};
    std::atomic<u64> max{0};
  };
  static void relaxed_min(std::atomic<u64>& slot, u64 v) {
    u64 cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void relaxed_max(std::atomic<u64>& slot, u64 v) {
    u64 cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<u64> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Process-wide registry of named metrics. Lookup is mutex-protected and
/// meant to run once per call site; the returned references remain valid
/// for the registry's lifetime (reset() zeroes values, never removes).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; `bounds` is only used on first creation.
  Histogram& histogram(const std::string& name, std::vector<u64> bounds = {});

  /// Snapshot of the registered histogram names (sorted). For exporters that
  /// want to walk histograms without parsing the JSON dump.
  std::vector<std::string> histogram_names() const;
  /// Same, for counters and gauges (the Prometheus exporter walks all three).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;

  /// Zero every metric (keeps registrations and references valid).
  void reset();

  /// Human-readable dump, one metric per line, sorted by name.
  std::string text() const;
  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json() const;

  std::size_t size() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace repro::obs
