#include "baselines/cuszp_like.hpp"

#include <cmath>

#include "baselines/sz_common.hpp"
#include "lossless/bitio.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x505A5543u;  // "CUZP"
constexpr std::size_t kBlock = 32;   // values per thread-block unit in cuSZp

inline u32 zigzag(i32 v) { return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31); }
inline i32 unzigzag(u32 u) { return static_cast<i32>((u >> 1) ^ (~(u & 1) + 1)); }

/// The flawed prequantization: the bin index is computed in double but then
/// *wrapped* into 32 bits, exactly the overflow the paper calls out. Values
/// whose bin exceeds the i32 range decode to something unrelated — a "major
/// error-bound violation".
template <typename T>
i32 prequant(T v, double recip) {
  double q = std::nearbyint(static_cast<double>(v) * recip);
  if (!std::isfinite(q)) q = 0.0;
  return static_cast<i32>(static_cast<u32>(static_cast<i64>(q)));  // wraps
}

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb) {
  auto d = in.as<T>();
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  if (eb == EbType::REL) throw CompressionError("cuSZp does not support REL bounds");
  double abs_eps = eb == EbType::NOA ? noa_to_abs(d, eps) : eps;
  if (!(abs_eps > 0)) abs_eps = 1e-300;  // degenerate range: effectively lossless bins
  h.derived = abs_eps;
  const double recip = 0.5 / abs_eps;

  const std::size_t n = d.size();
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;
  // Quantize + block-local Lorenzo; then pack each block with its own fixed
  // length (cuSZp's fixed-length encoding via bit shuffle).
  Bytes out;
  write_bheader(h, out);
  std::vector<u8> bitmap((nblocks + 7) / 8, 0);
  Bytes body;
  lossless::BitWriter bw(body);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::size_t beg = b * kBlock;
    std::size_t len = std::min(kBlock, n - beg);
    u32 zz[kBlock] = {};
    u32 any = 0;
    i32 prev = 0;
    for (std::size_t i = 0; i < len; ++i) {
      i32 q = prequant(d[beg + i], recip);
      zz[i] = zigzag(q - prev);
      prev = q;
      any |= zz[i];
    }
    if (!any) continue;  // all-zero block: bitmap bit stays clear
    bitmap[b >> 3] |= static_cast<u8>(1u << (b & 7));
    unsigned width = 32 - static_cast<unsigned>(__builtin_clz(any));
    bw.put(width - 1, 5);
    for (std::size_t i = 0; i < len; ++i) bw.put(zz[i], width);
  }
  bw.flush();
  out.insert(out.end(), bitmap.begin(), bitmap.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  const std::size_t n = h.count;
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;
  const std::size_t bitmap_size = (nblocks + 7) / 8;
  std::size_t pos = sizeof(BaselineHeader);
  if (pos + bitmap_size > in.size()) throw CompressionError("cuszp: truncated bitmap");
  const u8* bitmap = in.data() + pos;
  pos += bitmap_size;
  lossless::BitReader br(in.data() + pos, in.size() - pos);
  const double two_eps = 2.0 * h.derived;
  std::vector<u8> out(n * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::size_t beg = b * kBlock;
    std::size_t len = std::min(kBlock, n - beg);
    i32 prev = 0;
    bool nonzero = (bitmap[b >> 3] >> (b & 7)) & 1u;
    unsigned width = 0;
    if (nonzero) width = static_cast<unsigned>(br.get(5)) + 1;
    for (std::size_t i = 0; i < len; ++i) {
      i32 q = prev;
      if (nonzero) q += unzigzag(static_cast<u32>(br.get(width)));
      prev = q;
      values[beg + i] = static_cast<T>(static_cast<double>(q) * two_eps);
    }
  }
  if (br.truncated()) throw CompressionError("cuszp: truncated stream");
  return out;
}

}  // namespace

Bytes CuszpLikeCompressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb);
  return compress_typed<double>(in, eps, eb);
}

std::vector<u8> CuszpLikeCompressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
