// cuSZp-like baseline (Huang et al., SC'23; paper Section VI): GPU-style
// block compressor — prequantization, block-local Lorenzo deltas, and
// per-block fixed-length bit packing with a nonzero-block bitmap.
//
// Table III profile: ABS supported but NOT guaranteed — cuSZp "performs a
// pre-quantization of the floating-point data that may cause integer
// overflow" (paper Section I); our re-implementation reproduces exactly that
// flaw (the quantization code wraps to 32 bits). NOA supported,
// float+double, GPU only (simulated here as the same algorithm on the CPU).
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class CuszpLikeCompressor final : public Compressor {
 public:
  std::string name() const override { return "cuSZp_CUDAsim"; }
  Features features() const override {
    Features f;
    f.abs = true;
    f.noa = true;
    f.f32 = f.f64 = true;
    f.gpu = true;
    f.guarantee_abs = false;  // prequant overflow (Table III '○')
    // Table III prints a checkmark for cuSZp NOA, but Section V-D reports
    // "MGARD-X and cuSZp have major error-bound violations on all tested
    // double-precision inputs" — nothing re-checks the quantization, so the
    // bound is best-effort (rounding can overshoot by ~1 ulp of the bin).
    f.guarantee_noa = false;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
