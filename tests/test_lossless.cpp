// Tests for the Huffman and LZ substrates used by the SZ-class baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "data/rng.hpp"
#include "lossless/bitio.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lz.hpp"

using namespace repro;
using namespace repro::lossless;

// --- bit I/O -----------------------------------------------------------------

TEST(BitIO, RoundTripVariousWidths) {
  std::vector<u8> buf;
  BitWriter bw(buf);
  data::Rng rng(61);
  std::vector<std::pair<u64, unsigned>> items;
  for (int i = 0; i < 10000; ++i) {
    unsigned n = 1 + static_cast<unsigned>(rng.next_u64() % 57);
    u64 v = rng.next_u64() & ((n < 64 ? (u64{1} << n) : 0) - 1);
    items.push_back({v, n});
    bw.put(v, n);
  }
  bw.flush();
  BitReader br(buf.data(), buf.size());
  for (auto [v, n] : items) EXPECT_EQ(br.get(n), v);
  EXPECT_FALSE(br.truncated());
}

TEST(BitIO, TruncationDetected) {
  std::vector<u8> buf{0xFF};
  BitReader br(buf.data(), buf.size());
  br.get(8);
  EXPECT_FALSE(br.truncated());
  br.get(8);
  EXPECT_TRUE(br.truncated());
}

// --- Huffman -------------------------------------------------------------------

TEST(Huffman, EmptyInput) {
  Bytes enc = huffman_encode({});
  EXPECT_TRUE(huffman_decode(enc).empty());
}

TEST(Huffman, SingleSymbol) {
  std::vector<u16> syms(1000, 7);
  Bytes enc = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(enc), syms);
  EXPECT_LT(enc.size(), 200u);  // ~1 bit per symbol
}

TEST(Huffman, SkewedDistributionCompresses) {
  data::Rng rng(62);
  std::vector<u16> syms(100000);
  for (auto& s : syms) {
    double g = std::abs(rng.gaussian());
    s = static_cast<u16>(std::min(g * 3.0, 255.0));
  }
  Bytes enc = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(enc), syms);
  EXPECT_LT(enc.size(), syms.size());  // < 8 bits per 16-bit symbol
}

TEST(Huffman, UniformAlphabetRoundTrip) {
  data::Rng rng(63);
  std::vector<u16> syms(50000);
  for (auto& s : syms) s = static_cast<u16>(rng.next_u64() & 0xFFFF);
  Bytes enc = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(enc), syms);
}

TEST(Huffman, ConsumedBytesReported) {
  std::vector<u16> syms{1, 2, 3, 2, 1};
  Bytes enc = huffman_encode(syms);
  enc.push_back(0xAB);  // trailing data beyond the stream
  std::size_t used = 0;
  EXPECT_EQ(huffman_decode(enc.data(), enc.size(), &used), syms);
  EXPECT_EQ(used, enc.size() - 1);
}

TEST(Huffman, CorruptTableThrows) {
  std::vector<u16> syms(100, 5);
  Bytes enc = huffman_encode(syms);
  Bytes bad(enc.begin(), enc.begin() + 10);
  EXPECT_THROW(huffman_decode(bad), CompressionError);
}

// --- LZ -------------------------------------------------------------------------

TEST(Lz, EmptyInput) {
  Bytes enc = lz_encode({});
  EXPECT_TRUE(lz_decode(enc).empty());
}

TEST(Lz, RepetitiveDataCompresses) {
  std::vector<u8> data;
  for (int i = 0; i < 1000; ++i)
    for (u8 b : {u8{1}, u8{2}, u8{3}, u8{4}, u8{5}, u8{6}, u8{7}, u8{8}}) data.push_back(b);
  Bytes enc = lz_encode(data);
  EXPECT_LT(enc.size(), data.size() / 10);
  EXPECT_EQ(lz_decode(enc), data);
}

TEST(Lz, RandomDataRoundTrips) {
  data::Rng rng(64);
  std::vector<u8> data(100000);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64());
  Bytes enc = lz_encode(data);
  EXPECT_EQ(lz_decode(enc), data);
  EXPECT_LT(enc.size(), data.size() * 110 / 100 + 64);  // bounded expansion
}

TEST(Lz, OverlappingMatches) {
  // RLE-style overlap: dist < len must replay correctly.
  std::vector<u8> data(5000, 0x5A);
  Bytes enc = lz_encode(data);
  EXPECT_LT(enc.size(), 128u);
  EXPECT_EQ(lz_decode(enc), data);
}

TEST(Lz, VariousSizes) {
  data::Rng rng(65);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 15u, 16u, 17u, 255u, 256u, 65535u, 65536u}) {
    std::vector<u8> data(n);
    for (auto& b : data) b = static_cast<u8>(rng.next_u64() % 4);
    EXPECT_EQ(lz_decode(lz_encode(data)), data) << n;
  }
}

TEST(Lz, TruncatedThrows) {
  std::vector<u8> data(1000, 1);
  Bytes enc = lz_encode(data);
  Bytes bad(enc.begin(), enc.begin() + enc.size() / 2);
  EXPECT_THROW(lz_decode(bad), CompressionError);
}

TEST(Lz, HuffmanThenLzPipeline) {
  // The SZ-style coding stack: Huffman output fed through LZ and back.
  data::Rng rng(66);
  std::vector<u16> syms(50000);
  for (auto& s : syms) s = static_cast<u16>(std::min(std::abs(rng.gaussian()) * 2.0, 60.0));
  Bytes h = huffman_encode(syms);
  Bytes l = lz_encode(h);
  EXPECT_EQ(huffman_decode(lz_decode(l)), syms);
}
