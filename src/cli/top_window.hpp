// Rate-conversion window for `pfpl top` — extracted so the delta logic is
// unit-testable (tests/test_io_cli.cpp) without a live server.
//
// `pfpl top` polls cumulative server counters and renders per-window rates.
// Cumulative counters only ever grow — unless the server restarted between
// scrapes, in which case every counter re-starts from zero and a naive
// `cur - prev` delta goes hugely negative. compute_window() detects any
// backwards-moving counter, flags the window as a reset, and zeroes the
// rates so the caller re-anchors (prev = cur) instead of printing garbage.
#pragma once

#include <cstddef>
#include <vector>

namespace repro::cli {

/// One scrape of the server's cumulative counters (a subset of the METRICS
/// document; `t` is the client-side steady clock in seconds).
struct TopSample {
  double t = 0;
  double req = 0, bytes_rx = 0, bytes_tx = 0, hits = 0, misses = 0;
  double conns = 0, queue = 0, slow = 0, errors = 0;
  double sessions = 0;  ///< live temporal stream sessions (a gauge, not a rate)
  bool has_hist = false;  ///< net.request_us present with count > 0
  double p50 = 0, p95 = 0, p99 = 0;  ///< lifetime quantiles (fallback)
  std::vector<double> bounds, buckets;
};

/// Rates and quantiles over one scrape window.
struct TopWindow {
  bool reset = false;  ///< counters moved backwards: server restarted
  double dt = 0;
  double rps = 0, rx_mbps = 0, tx_mbps = 0;
  bool have_hit = false;  ///< the window saw at least one store lookup
  double hit_pct = 0;
  double p50 = -1, p95 = -1, p99 = -1;  ///< -1 = unavailable
};

/// True when any cumulative counter decreased — the defining signature of a
/// server restart (counters are in-process atomics starting at zero).
inline bool counters_went_backwards(const TopSample& prev, const TopSample& cur) {
  if (cur.req < prev.req || cur.bytes_rx < prev.bytes_rx ||
      cur.bytes_tx < prev.bytes_tx || cur.hits < prev.hits ||
      cur.misses < prev.misses || cur.slow < prev.slow || cur.errors < prev.errors)
    return true;
  // Histogram bucket counts are cumulative too; any shrink is a reset even
  // if the scalar counters happen to have caught back up.
  if (cur.has_hist && prev.has_hist && cur.bounds == prev.bounds &&
      cur.buckets.size() == prev.buckets.size()) {
    for (std::size_t i = 0; i < cur.buckets.size(); ++i)
      if (cur.buckets[i] < prev.buckets[i]) return true;
  }
  return false;
}

/// Windowed quantile: upper edge of the bucket holding the q-th delta sample
/// (the overflow bucket reports the last finite edge — a floor). Returns -1
/// when the window saw no samples.
inline double bucket_quantile(const std::vector<double>& bounds,
                              const std::vector<double>& deltas, double q) {
  double total = 0;
  for (double v : deltas) total += v;
  if (total <= 0 || bounds.empty()) return -1;
  const double target = q * total;
  double cum = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    cum += deltas[i];
    if (cum >= target) return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

/// Convert two consecutive scrapes into window rates. `fallback_dt` is used
/// when the clock delta is non-positive (clock weirdness; keeps rates finite).
inline TopWindow compute_window(const TopSample& prev, const TopSample& cur,
                                double fallback_dt) {
  TopWindow w;
  w.dt = cur.t - prev.t;
  if (w.dt <= 0) w.dt = fallback_dt;
  if (counters_went_backwards(prev, cur)) {
    // Re-anchor: rates over a restart window are meaningless. Lifetime
    // quantiles of the NEW process are still valid, so surface those.
    w.reset = true;
    if (cur.has_hist) {
      w.p50 = cur.p50;
      w.p95 = cur.p95;
      w.p99 = cur.p99;
    }
    return w;
  }
  w.rps = (cur.req - prev.req) / w.dt;
  w.rx_mbps = (cur.bytes_rx - prev.bytes_rx) / w.dt / 1e6;
  w.tx_mbps = (cur.bytes_tx - prev.bytes_tx) / w.dt / 1e6;
  const double dh = cur.hits - prev.hits, dm = cur.misses - prev.misses;
  w.have_hit = dh + dm > 0;
  if (w.have_hit) w.hit_pct = 100.0 * dh / (dh + dm);
  if (cur.has_hist && prev.has_hist && cur.buckets.size() == prev.buckets.size() &&
      cur.bounds == prev.bounds && !cur.buckets.empty()) {
    std::vector<double> d(cur.buckets.size());
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = cur.buckets[i] - prev.buckets[i];
    w.p50 = bucket_quantile(cur.bounds, d, 0.50);
    w.p95 = bucket_quantile(cur.bounds, d, 0.95);
    w.p99 = bucket_quantile(cur.bounds, d, 0.99);
  }
  if (w.p50 < 0 && cur.has_hist) {
    // First tick, or an idle window: fall back to lifetime quantiles.
    w.p50 = cur.p50;
    w.p95 = cur.p95;
    w.p99 = cur.p99;
  }
  return w;
}

}  // namespace repro::cli
