#include "obs/exposition.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[64];
  // Prometheus values are free-form floats; %.17g round-trips doubles but
  // emits noisy tails for integers, so prefer the exact integer form.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_u64(std::string& out, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string prometheus_family(const std::string& name) {
  std::string out = "pfpl_";
  out.reserve(name.size() + 5);
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out += static_cast<char>(std::tolower(u));
    } else {
      out += '_';
    }
  }
  return out;
}

std::string prometheus_text() { return prometheus_text(MetricsRegistry::global()); }

std::string prometheus_text(MetricsRegistry& reg) {
  // The registry only ever grows, so taking the three name snapshots
  // separately (three short critical sections) still yields a consistent
  // document: a metric present in a snapshot is present for good.
  std::string out;
  for (const std::string& name : reg.counter_names()) {
    const std::string fam = prometheus_family(name) + "_total";
    out += "# TYPE " + fam + " counter\n";
    out += fam + " ";
    append_u64(out, reg.counter(name).value());
    out += "\n";
  }
  for (const std::string& name : reg.gauge_names()) {
    Gauge& g = reg.gauge(name);
    const std::string fam = prometheus_family(name);
    out += "# TYPE " + fam + " gauge\n";
    out += fam + " ";
    append_num(out, static_cast<double>(g.value()));
    out += "\n# TYPE " + fam + "_peak gauge\n";
    out += fam + "_peak ";
    append_num(out, static_cast<double>(g.peak()));
    out += "\n";
  }
  for (const std::string& name : reg.histogram_names()) {
    Histogram& h = reg.histogram(name);
    const std::string fam = prometheus_family(name);
    out += "# TYPE " + fam + " histogram\n";
    const std::vector<u64>& bounds = h.bounds();
    const std::vector<u64> counts = h.bucket_counts();
    u64 cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      out += fam + "_bucket{le=\"";
      append_u64(out, bounds[i]);
      out += "\"} ";
      append_u64(out, cum);
      out += "\n";
    }
    cum += counts.back();  // overflow bucket (bucket_counts() size = bounds+1)
    out += fam + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cum);
    out += "\n" + fam + "_sum ";
    append_u64(out, h.sum());
    out += "\n" + fam + "_count ";
    append_u64(out, h.count());
    out += "\n";
  }
  return out;
}

std::string metrics_json_doc(const std::string& extra_sections) {
  return metrics_json_doc(MetricsRegistry::global(), extra_sections);
}

std::string metrics_json_doc(const MetricsRegistry& reg,
                             const std::string& extra_sections) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "pfpl-metrics/1");
  w.key("metrics").raw(reg.json());
  w.end_object();
  std::string doc = w.take();
  if (!extra_sections.empty()) {
    // Splice the caller's `"key":value` fragments before the closing brace.
    doc.insert(doc.size() - 1, "," + extra_sections);
  }
  return doc;
}

}  // namespace repro::obs
