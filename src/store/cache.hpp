// ResultCache — the in-memory tier of the PFPS chunk store.
//
// An N-way lock-striped LRU keyed by the 128-bit content hash
// (common/hash.hpp). Each shard owns its own mutex, intrusive recency list,
// and byte budget (total budget / shards), so concurrent service workers
// contend only when they hash to the same stripe. Eviction is by bytes, not
// entry count: inserting past the shard budget pops least-recently-used
// entries until the new value fits. A value larger than a whole shard's
// budget is rejected outright (caching it would evict everything for a
// one-shot entry).
//
// Accounting is exact and always-on (plain atomics, the Server::Stats
// pattern): hits/misses/insertions/evictions plus current bytes/entries.
// The same events also feed the obs-gated `store.cache.*` metrics.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace repro::store {

class ResultCache {
 public:
  struct Options {
    std::size_t byte_budget = 64u << 20;  ///< total across all shards
    unsigned shards = 16;                 ///< lock stripes (clamped to >= 1)
  };

  /// Exact event/occupancy counters (snapshot).
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    u64 oversize_rejects = 0;  ///< puts larger than a shard budget, not cached
    u64 bytes = 0;             ///< current payload bytes resident
    u64 entries = 0;           ///< current entry count
  };

  explicit ResultCache(const Options& opts);

  /// Copy the value for `key` into `out` and mark it most-recently-used.
  bool get(const common::Hash128& key, Bytes& out);

  /// Insert (or refresh the recency of) `key`. Evicts LRU entries of the
  /// same shard until the value fits its byte budget.
  void put(const common::Hash128& key, const Bytes& value);

  /// Presence check without touching recency (tests and diagnostics).
  bool contains(const common::Hash128& key) const;

  void clear();

  Stats stats() const;
  std::size_t byte_budget() const { return byte_budget_; }
  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

 private:
  struct Entry {
    common::Hash128 key;
    Bytes value;
  };
  struct Shard {
    mutable std::mutex m;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<common::Hash128, std::list<Entry>::iterator,
                       common::Hash128Hasher>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(const common::Hash128& key) {
    return *shards_[common::Hash128Hasher{}(key) % shards_.size()];
  }
  const Shard& shard_of(const common::Hash128& key) const {
    return *shards_[common::Hash128Hasher{}(key) % shards_.size()];
  }

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Exact accounting, independent of obs::enabled().
  mutable std::atomic<u64> hits_{0}, misses_{0}, insertions_{0}, evictions_{0},
      oversize_{0};
  std::atomic<u64> bytes_{0}, entries_{0};
};

}  // namespace repro::store
