// Tests for raw-file I/O and the pfpl command-line tool (run end to end via
// std::system against the built binary).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/rng.hpp"
#include "io/buffered_reader.hpp"
#include "io/raw_file.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

std::string tmp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("pfpl_test_" + name)).string();
}

std::string cli_path() {
  // Tests run from build/tests; the CLI lives in build/src/cli.
  for (const char* p : {"src/cli/pfpl", "../src/cli/pfpl", "build/src/cli/pfpl"}) {
    if (fs::exists(p)) return fs::absolute(p).string();
  }
  return "";
}

int run(const std::string& cmd) { return std::system((cmd + " >/dev/null 2>&1").c_str()); }

}  // namespace

TEST(RawFile, RoundTrip) {
  std::string path = tmp_path("io_roundtrip.bin");
  std::vector<float> v(1000);
  data::Rng rng(1);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  io::write_file(path, v.data(), v.size() * 4);
  auto back = io::read_values<float>(path);
  EXPECT_EQ(back, v);
  fs::remove(path);
}

TEST(RawFile, EmptyFile) {
  std::string path = tmp_path("io_empty.bin");
  io::write_file(path, nullptr, 0);
  EXPECT_TRUE(io::read_file(path).empty());
  fs::remove(path);
}

TEST(RawFile, MissingFileThrows) {
  EXPECT_THROW(io::read_file("/nonexistent/path/file.bin"), CompressionError);
}

TEST(RawFile, MisalignedSizeThrows) {
  std::string path = tmp_path("io_misaligned.bin");
  u8 bytes[5] = {1, 2, 3, 4, 5};
  io::write_file(path, bytes, 5);
  EXPECT_THROW(io::read_values<float>(path), CompressionError);
  fs::remove(path);
}

TEST(RawFile, FileSize) {
  std::string path = tmp_path("io_size.bin");
  u8 bytes[7] = {0, 1, 2, 3, 4, 5, 6};
  io::write_file(path, bytes, 7);
  EXPECT_EQ(io::file_size(path), 7u);
  io::write_file(path, nullptr, 0);
  EXPECT_EQ(io::file_size(path), 0u);
  fs::remove(path);
  EXPECT_THROW(io::file_size(path), CompressionError);
}

// Exhaustive edge cases for the random-access range read: every failure mode
// must surface as a typed CompressionError (the archive reader feeds it
// untrusted index offsets), never a crash or a silently short buffer.
TEST(RawFile, ReadRangeEdgeCases) {
  std::string path = tmp_path("io_range.bin");
  std::vector<u8> bytes(100);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<u8>(i);
  io::write_file(path, bytes.data(), bytes.size());

  // Interior range: exact bytes, exact length.
  std::vector<u8> mid = io::read_file_range(path, 10, 5);
  EXPECT_EQ(mid, std::vector<u8>(bytes.begin() + 10, bytes.begin() + 15));

  // Whole file and final byte.
  EXPECT_EQ(io::read_file_range(path, 0, 100), bytes);
  EXPECT_EQ(io::read_file_range(path, 99, 1), std::vector<u8>{99});

  // Zero-length ranges are valid anywhere inside the file, including at EOF.
  EXPECT_TRUE(io::read_file_range(path, 0, 0).empty());
  EXPECT_TRUE(io::read_file_range(path, 100, 0).empty());

  // Range crossing EOF: starts inside, ends past the end.
  EXPECT_THROW(io::read_file_range(path, 90, 11), CompressionError);
  // Offset entirely past EOF (even a zero-length read there is rejected —
  // the offset itself is out of the file).
  EXPECT_THROW(io::read_file_range(path, 101, 0), CompressionError);
  EXPECT_THROW(io::read_file_range(path, 101, 1), CompressionError);
  // Huge size must not overflow offset + size arithmetic.
  EXPECT_THROW(
      io::read_file_range(path, 50, std::numeric_limits<std::size_t>::max()),
      CompressionError);
  fs::remove(path);

  // Missing file: typed error from open, not from the range check.
  EXPECT_THROW(io::read_file_range(path, 0, 0), CompressionError);
  EXPECT_THROW(io::read_file_range("/nonexistent/dir/f.bin", 0, 1),
               CompressionError);
}

TEST(RawFile, ReadRangeOnEmptyFile) {
  std::string path = tmp_path("io_range_empty.bin");
  io::write_file(path, nullptr, 0);
  EXPECT_TRUE(io::read_file_range(path, 0, 0).empty());
  EXPECT_THROW(io::read_file_range(path, 0, 1), CompressionError);
  EXPECT_THROW(io::read_file_range(path, 1, 0), CompressionError);
  fs::remove(path);
}

// -------------------------------------------------- DoubleBufferedReader

namespace {

/// Drain a reader into one contiguous byte vector.
std::vector<u8> drain(io::DoubleBufferedReader& rd) {
  std::vector<u8> all;
  for (std::span<const u8> sp = rd.next(); !sp.empty(); sp = rd.next())
    all.insert(all.end(), sp.begin(), sp.end());
  return all;
}

std::vector<u8> pattern_bytes(std::size_t n) {
  std::vector<u8> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<u8>((i * 31 + 7) & 0xFF);
  return v;
}

}  // namespace

TEST(DoubleBufferedReader, ZeroLengthFile) {
  std::string path = tmp_path("dbr_empty.bin");
  io::write_file(path, nullptr, 0);
  io::DoubleBufferedReader rd(path, 64);
  EXPECT_TRUE(rd.next().empty());
  EXPECT_TRUE(rd.next().empty());  // EOF is sticky
  EXPECT_EQ(rd.bytes_read(), 0u);
  fs::remove(path);
}

TEST(DoubleBufferedReader, FileSmallerThanOneBuffer) {
  std::string path = tmp_path("dbr_small.bin");
  const std::vector<u8> data = pattern_bytes(37);
  io::write_file(path, data.data(), data.size());
  io::DoubleBufferedReader rd(path, 4096);
  std::span<const u8> sp = rd.next();
  ASSERT_EQ(sp.size(), 37u);
  EXPECT_TRUE(std::equal(sp.begin(), sp.end(), data.begin()));
  EXPECT_TRUE(rd.next().empty());
  EXPECT_EQ(rd.bytes_read(), 37u);
  fs::remove(path);
}

TEST(DoubleBufferedReader, ExactBufferMultipleEndsCleanly) {
  // EOF lands exactly on a buffer seam: the final buffer is full, and the
  // NEXT call must report a clean empty span (not a zero-length "buffer").
  std::string path = tmp_path("dbr_exact.bin");
  const std::vector<u8> data = pattern_bytes(4 * 64);
  io::write_file(path, data.data(), data.size());
  io::DoubleBufferedReader rd(path, 64);
  std::size_t buffers = 0;
  for (std::span<const u8> sp = rd.next(); !sp.empty(); sp = rd.next()) {
    EXPECT_EQ(sp.size(), 64u);  // never a short buffer mid-file
    ++buffers;
  }
  EXPECT_EQ(buffers, 4u);
  EXPECT_EQ(rd.bytes_read(), data.size());
  fs::remove(path);
}

TEST(DoubleBufferedReader, SeamCrossingSizesMatchReadFile) {
  // Odd buffer size x file sizes around every seam: content must always
  // equal the one-shot read, with the short buffer only ever last.
  std::string path = tmp_path("dbr_seam.bin");
  for (std::size_t n : {1u, 6u, 7u, 8u, 13u, 14u, 20u, 21u, 22u, 48u}) {
    const std::vector<u8> data = pattern_bytes(n);
    io::write_file(path, data.data(), data.size());
    io::DoubleBufferedReader rd(path, 7);
    const std::vector<u8> got = drain(rd);
    EXPECT_EQ(got, data) << "file size " << n;
    EXPECT_EQ(rd.bytes_read(), n) << "file size " << n;
    EXPECT_EQ(got, io::read_file(path)) << "file size " << n;
  }
  fs::remove(path);
}

TEST(DoubleBufferedReader, SpanValidUntilNextCall) {
  // The handed-out buffer must not be refilled underneath the caller: copy
  // taken BEFORE the subsequent next() must match the file contents.
  std::string path = tmp_path("dbr_stable.bin");
  const std::vector<u8> data = pattern_bytes(256);
  io::write_file(path, data.data(), data.size());
  io::DoubleBufferedReader rd(path, 32);
  std::vector<u8> all;
  std::span<const u8> sp = rd.next();
  while (!sp.empty()) {
    std::vector<u8> copy(sp.begin(), sp.end());
    // Give the prefetch thread time to (incorrectly) overwrite the slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(std::equal(copy.begin(), copy.end(), sp.begin()));
    all.insert(all.end(), sp.begin(), sp.end());
    sp = rd.next();
  }
  EXPECT_EQ(all, data);
  fs::remove(path);
}

TEST(DoubleBufferedReader, MissingFileThrows) {
  EXPECT_THROW(io::DoubleBufferedReader("/nonexistent/pfpl-dbr.bin", 64),
               CompressionError);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli = cli_path();
    if (cli.empty()) GTEST_SKIP() << "pfpl CLI binary not found";
    // Prefix temp files with the test name: ctest runs these in parallel,
    // and shared paths would let one test clobber (or corrupt) another's
    // input mid-read.
    std::string tag = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    in = tmp_path(tag + "_cli_in.raw");
    comp = tmp_path(tag + "_cli_out.pfpl");
    out = tmp_path(tag + "_cli_back.raw");
    data::Rng rng(7);
    values.resize(50000);
    double acc = 0;
    for (auto& x : values) {
      acc += 0.01 * rng.gaussian();
      x = static_cast<float>(acc);
    }
    io::write_file(in, values.data(), values.size() * 4);
  }
  void TearDown() override {
    fs::remove(in);
    fs::remove(comp);
    fs::remove(out);
  }
  std::string cli, in, comp, out;
  std::vector<float> values;
};

TEST_F(CliTest, CompressDecompressRoundTrip) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --dtype f32 --eb abs --eps 1e-3"), 0);
  ASSERT_TRUE(fs::exists(comp));
  EXPECT_LT(fs::file_size(comp), fs::file_size(in));
  ASSERT_EQ(run(cli + " d " + comp + " " + out), 0);
  auto back = io::read_values<float>(out);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - back[i]), 1e-3) << i;
}

TEST_F(CliTest, ExecutorsProduceIdenticalFiles) {
  std::string comp2 = tmp_path("cli_out2.pfpl");
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eps 1e-3 --exec serial"), 0);
  ASSERT_EQ(run(cli + " c " + in + " " + comp2 + " --eps 1e-3 --exec gpusim"), 0);
  EXPECT_EQ(io::read_file(comp), io::read_file(comp2));
  fs::remove(comp2);
}

TEST_F(CliTest, InfoCommand) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eb rel --eps 1e-2"), 0);
  EXPECT_EQ(run(cli + " info " + comp), 0);
}

TEST_F(CliTest, VerifyCommand) {
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eb abs --eps 1e-3"), 0);
  // PFPL's bound is guaranteed, so verify must pass (exit 0).
  EXPECT_EQ(run(cli + " verify " + in + " " + comp), 0);
  // Verifying against different data must fail (exit 3).
  std::string other = tmp_path("cli_other.raw");
  std::vector<float> wrong(values.size(), 1234.5f);
  io::write_file(other, wrong.data(), wrong.size() * 4);
  EXPECT_NE(run(cli + " verify " + other + " " + comp), 0);
  fs::remove(other);
}

TEST_F(CliTest, BadUsageFails) {
  EXPECT_NE(run(cli), 0);
  EXPECT_NE(run(cli + " c " + in), 0);
  EXPECT_NE(run(cli + " d /nonexistent.pfpl " + out), 0);
}

TEST_F(CliTest, CorruptInputExitsOneNotCrash) {
  // Regression: a truncated or corrupt .pfpl must produce exit code 1 and a
  // clean diagnostic on d/info/verify, never an unhandled exception (which
  // would abort with SIGABRT and a non-1 status from std::system).
  ASSERT_EQ(run(cli + " c " + in + " " + comp + " --eb abs --eps 1e-3"), 0);
  Bytes full = io::read_file(comp);

  // Truncated header.
  io::write_file(comp, full.data(), 10);
  for (const char* mode : {"d", "info", "verify"}) {
    std::string cmd = std::string(mode) == "d"   ? cli + " d " + comp + " " + out
                      : std::string(mode) == "info" ? cli + " info " + comp
                                                    : cli + " verify " + in + " " + comp;
    int status = run(cmd);
    ASSERT_TRUE(WIFEXITED(status)) << mode << ": killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), 1) << mode;
  }

  // Bad magic.
  Bytes bad = full;
  bad[0] ^= 0xFF;
  io::write_file(comp, bad.data(), bad.size());
  int status = run(cli + " d " + comp + " " + out);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);

  // Truncated payload (valid header, missing chunk bytes).
  io::write_file(comp, full.data(), full.size() - full.size() / 4);
  status = run(cli + " d " + comp + " " + out);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
}

TEST_F(CliTest, UnknownFlagValuesAreRejected) {
  // Regression: a typo like '--dtype f62' used to fall back silently to f32
  // (and bad --eb to abs), misinterpreting the input. Must now exit 2.
  int status = run(cli + " c " + in + " " + comp + " --dtype f62 --eps 1e-3");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  EXPECT_FALSE(fs::exists(comp));
  status = run(cli + " c " + in + " " + comp + " --eb bas --eps 1e-3");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  EXPECT_FALSE(fs::exists(comp));
}

TEST_F(CliTest, PackDuplicateBasenamesFailFast) {
  // Two inputs with the same basename in different directories collide on
  // the entry name. pack must reject this before compressing anything and
  // must not leave a partial archive behind.
  fs::path sub = tmp_path("dupdir");
  fs::create_directories(sub);
  std::string in2 = (sub / fs::path(in).filename()).string();
  io::write_file(in2, values.data(), values.size() * 4);
  std::string pfpa = tmp_path("dup_arch.pfpa");
  int status = run(cli + " pack " + pfpa + " " + in + " " + in2 + " --eps 1e-3");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
  EXPECT_FALSE(fs::exists(pfpa));
  fs::remove_all(sub);
}

TEST_F(CliTest, PackListUnpackRoundTrip) {
  // Second input field so the archive has two entries.
  std::string in2 = tmp_path("cli_in2.raw");
  std::vector<float> other(values.size());
  for (std::size_t i = 0; i < other.size(); ++i) other[i] = -values[i];
  io::write_file(in2, other.data(), other.size() * 4);

  std::string pfpa = tmp_path("cli_arch.pfpa");
  std::string outdir = tmp_path("cli_unpacked");
  ASSERT_EQ(run(cli + " pack " + pfpa + " " + in + " " + in2 +
                " --eb abs --eps 1e-3 --threads 4"),
            0);
  ASSERT_TRUE(fs::exists(pfpa));
  EXPECT_EQ(run(cli + " list " + pfpa), 0);

  // Full unpack restores every field within the bound.
  ASSERT_EQ(run(cli + " unpack " + pfpa + " " + outdir), 0);
  auto back = io::read_values<float>(
      (fs::path(outdir) / fs::path(in).filename()).string());
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - back[i]), 1e-3) << i;

  // Selective extraction of a single entry.
  std::string outdir2 = tmp_path("cli_unpacked_one");
  ASSERT_EQ(run(cli + " unpack " + pfpa + " " + outdir2 + " --entry " +
                fs::path(in2).filename().string()),
            0);
  EXPECT_TRUE(fs::exists(fs::path(outdir2) / fs::path(in2).filename()));
  EXPECT_FALSE(fs::exists(fs::path(outdir2) / fs::path(in).filename()));
  EXPECT_NE(run(cli + " unpack " + pfpa + " " + outdir2 + " --entry missing"), 0);

  // Determinism at the CLI level: worker count must not change a single
  // byte of the archive (entries are slot-assembled, the index is ordered).
  std::string pfpa1 = tmp_path("cli_arch_t1.pfpa");
  ASSERT_EQ(run(cli + " pack " + pfpa1 + " " + in + " " + in2 +
                " --eb abs --eps 1e-3 --threads 1"),
            0);
  EXPECT_EQ(io::read_file(pfpa1), io::read_file(pfpa));
  fs::remove(pfpa1);

  // A corrupted archive is rejected with exit 1.
  Bytes raw = io::read_file(pfpa);
  raw[raw.size() - 5] ^= 0xA5;  // inside footer: index CRC / magic
  io::write_file(pfpa, raw.data(), raw.size());
  int status = run(cli + " list " + pfpa);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);

  fs::remove(in2);
  fs::remove(pfpa);
  fs::remove_all(outdir);
  fs::remove_all(outdir2);
}

// ------------------------------------------------- pfpl top rate windows ---

#include "cli/top_window.hpp"

namespace {

cli::TopSample sample_at(double t, double req, double rx, double tx) {
  cli::TopSample s;
  s.t = t;
  s.req = req;
  s.bytes_rx = rx;
  s.bytes_tx = tx;
  return s;
}

}  // namespace

TEST(TopWindow, ComputesRatesFromCounterDeltas) {
  cli::TopSample a = sample_at(10.0, 100, 1e6, 2e6);
  cli::TopSample b = sample_at(12.0, 150, 3e6, 6e6);
  b.hits = 30;
  b.misses = 10;
  cli::TopWindow w = cli::compute_window(a, b, 2.0);
  EXPECT_FALSE(w.reset);
  EXPECT_DOUBLE_EQ(w.dt, 2.0);
  EXPECT_DOUBLE_EQ(w.rps, 25.0);
  EXPECT_DOUBLE_EQ(w.rx_mbps, 1.0);
  EXPECT_DOUBLE_EQ(w.tx_mbps, 2.0);
  EXPECT_TRUE(w.have_hit);
  EXPECT_DOUBLE_EQ(w.hit_pct, 75.0);
}

TEST(TopWindow, ServerRestartReAnchorsInsteadOfNegativeRates) {
  // A restarted server's counters re-start at zero: the raw delta would be
  // hugely negative. The window must flag the reset and zero the rates.
  cli::TopSample before = sample_at(10.0, 5000, 8e8, 9e8);
  cli::TopSample after = sample_at(12.0, 12, 1e4, 2e4);  // fresh process
  after.has_hist = true;
  after.p50 = 40;
  after.p95 = 90;
  after.p99 = 99;
  cli::TopWindow w = cli::compute_window(before, after, 2.0);
  EXPECT_TRUE(w.reset);
  EXPECT_DOUBLE_EQ(w.rps, 0.0);
  EXPECT_DOUBLE_EQ(w.rx_mbps, 0.0);
  // Lifetime quantiles of the NEW process are still meaningful.
  EXPECT_DOUBLE_EQ(w.p50, 40);
  EXPECT_DOUBLE_EQ(w.p99, 99);

  // Histogram bucket shrink alone is also a reset, even when the scalar
  // counters happen to have caught back up.
  cli::TopSample h1 = sample_at(1.0, 10, 0, 0);
  h1.has_hist = true;
  h1.bounds = {10, 100};
  h1.buckets = {5, 3, 1};
  cli::TopSample h2 = sample_at(2.0, 20, 0, 0);
  h2.has_hist = true;
  h2.bounds = {10, 100};
  h2.buckets = {2, 0, 0};
  EXPECT_TRUE(cli::counters_went_backwards(h1, h2));
  EXPECT_TRUE(cli::compute_window(h1, h2, 1.0).reset);
}

TEST(TopWindow, WindowedQuantilesFromBucketDeltas) {
  cli::TopSample a = sample_at(0.0, 0, 0, 0);
  a.has_hist = true;
  a.bounds = {10, 100, 1000};
  a.buckets = {0, 0, 0, 0};
  cli::TopSample b = sample_at(1.0, 10, 0, 0);
  b.has_hist = true;
  b.bounds = a.bounds;
  b.buckets = {8, 1, 1, 0};  // 10 new samples this window
  cli::TopWindow w = cli::compute_window(a, b, 1.0);
  EXPECT_DOUBLE_EQ(w.p50, 10);    // 5th sample in the first bucket
  EXPECT_DOUBLE_EQ(w.p95, 1000);  // 9.5th sample lands in the third bucket
  // Idle window (no new samples): fall back to lifetime quantiles.
  cli::TopSample c = b;
  c.t = 2.0;
  c.p50 = 12;
  c.p95 = 120;
  c.p99 = 800;
  cli::TopWindow idle = cli::compute_window(b, c, 1.0);
  EXPECT_DOUBLE_EQ(idle.p50, 12);
  EXPECT_DOUBLE_EQ(idle.p95, 120);
  // Empty-delta quantile helper reports "unavailable" rather than a bound.
  EXPECT_DOUBLE_EQ(cli::bucket_quantile({10, 100}, {0, 0, 0}, 0.5), -1);
}
