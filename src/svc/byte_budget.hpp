// Counting byte-budget semaphore shared by the batch compressor and the
// ingest pipeline: acquire() blocks while the budget is exhausted, so a
// producer can never materialize more than roughly `limit` bytes of
// in-flight work. A single acquisition larger than the whole budget is
// admitted alone (otherwise one oversized chunk would deadlock the batch).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace repro::svc {

class ByteBudget {
 public:
  explicit ByteBudget(std::size_t limit) : limit_(std::max<std::size_t>(1, limit)) {}

  void acquire(std::size_t bytes) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return used_ == 0 || used_ + bytes <= limit_; });
    used_ += bytes;
  }
  void release(std::size_t bytes) {
    {
      std::lock_guard<std::mutex> lk(m_);
      used_ -= std::min(bytes, used_);
    }
    cv_.notify_all();
  }

  std::size_t limit() const { return limit_; }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::size_t limit_;
  std::size_t used_ = 0;
};

}  // namespace repro::svc
