// Section V-F reproduction: PFPL across GPU generations.
//
// No GPUs are available (DESIGN.md §1), so this bench evaluates the
// analytical model of src/sim/gpu_model.hpp and checks the paper's three
// findings:
//   1. performance correlates with compute (resident threads x clock), not
//      memory bandwidth;
//   2. the RTX 2070 Super performs like the 3-year-older TITAN Xp because
//      its lower per-SM thread capacity strands parallelism;
//   3. the RTX 4090 beats the A100 despite the A100's higher memory
//      bandwidth and FP64 throughput (PFPL is integer/compute bound).
#include <cstdio>

#include "sim/gpu_model.hpp"

using namespace repro::sim;

int main() {
  std::printf("# Section V-F: PFPL across GPU generations (analytical model)\n");
  std::printf("gpu,year,SMs,clock_GHz,threads_per_SM,mem_GBps,compute_score,mem_roofline,"
              "predicted_relative,memory_bound\n");
  auto preds = predict();
  for (const auto& p : preds)
    std::printf("%s,%d,%d,%.2f,%d,%.0f,%.0f,%.0f,%.3f,%s\n", p.spec.name.c_str(),
                p.spec.release_year, p.spec.sms, p.spec.boost_clock_ghz,
                p.spec.max_threads_per_sm, p.spec.mem_bw_gbs, p.compute_score, p.mem_score,
                p.predicted_rel, p.memory_bound ? "yes" : "no");

  // The paper's qualitative claims, checked by the model:
  auto rel = [&](const char* name) {
    for (const auto& p : preds)
      if (p.spec.name == name) return p.predicted_rel;
    return 0.0;
  };
  bool c1 = true;
  for (const auto& p : preds) c1 &= !p.memory_bound;  // never memory bound
  double titan = rel("TITAN Xp"), s2070 = rel("RTX 2070 Super");
  bool c2 = s2070 < titan * 1.3 && s2070 > titan * 0.5;  // "performs similarly"
  bool c3 = rel("RTX 4090") > rel("A100 40GB");
  std::printf("\ncheck,compute_bound_everywhere,%s\n", c1 ? "PASS" : "FAIL");
  std::printf("check,2070S_similar_to_TitanXp,%s (%.2f vs %.2f)\n", c2 ? "PASS" : "FAIL",
              s2070, titan);
  std::printf("check,4090_beats_A100,%s\n", c3 ? "PASS" : "FAIL");
  return (c1 && c2 && c3) ? 0 : 1;
}
