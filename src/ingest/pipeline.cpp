#include "ingest/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "core/chunked.hpp"
#include "ingest/queue.hpp"
#include "io/buffered_reader.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "store/store.hpp"
#include "svc/byte_budget.hpp"
#include "svc/thread_pool.hpp"

namespace repro::ingest {
namespace {

/// ingest.* metric handles, resolved once (the registry gates every update
/// while obs is disabled).
struct IngestMetrics {
  obs::Counter& probe_hits;
  obs::Counter& probe_misses;
  obs::Gauge& q_hash_depth;
  obs::Gauge& q_encode_depth;
  obs::Gauge& q_append_depth;
  obs::Histogram& read_us;
  obs::Histogram& hash_us;
  obs::Histogram& encode_us;
  obs::Histogram& append_us;
  obs::Histogram& batch_items;
  static IngestMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static IngestMetrics m{
        r.counter("ingest.probe_hits"),
        r.counter("ingest.probe_misses"),
        r.gauge("ingest.q_hash_depth"),
        r.gauge("ingest.q_encode_depth"),
        r.gauge("ingest.q_append_depth"),
        r.histogram("ingest.read_us", obs::Histogram::default_latency_bounds_us()),
        r.histogram("ingest.hash_us", obs::Histogram::default_latency_bounds_us()),
        r.histogram("ingest.encode_us", obs::Histogram::default_latency_bounds_us()),
        r.histogram("ingest.append_us", obs::Histogram::default_latency_bounds_us()),
        r.histogram("ingest.append_batch_items", {1, 2, 4, 8, 16, 32, 64, 128})};
    return m;
  }
};

void stage_sleep(u64 us) {
  if (us) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Slow-consumer test hook: PFPL_INGEST_TEST_SLOW_STAGE_US stalls the append
/// stage per item, so upstream queues fill and the byte-budget backpressure
/// test can observe the high-water marks. Read once per run.
u64 slow_stage_us() {
  const char* e = std::getenv("PFPL_INGEST_TEST_SLOW_STAGE_US");
  return e ? std::strtoull(e, nullptr, 10) : 0ull;
}

Field make_field(const Bytes& raw, DType dtype) {
  if (dtype == DType::F32)
    return Field(reinterpret_cast<const float*>(raw.data()), raw.size() / 4);
  return Field(reinterpret_cast<const double*>(raw.data()), raw.size() / 8);
}

}  // namespace

ProbeResult probe_compress(store::ChunkStore& cs, const void* raw, std::size_t n,
                           DType dtype, EbType eb, double eps, Bytes& stream_out) {
  OBS_SPAN("ingest.probe");
  ProbeResult pr;
  pr.key = store::compress_key(raw, n, dtype, eb, eps);
  pr.hit = cs.get(pr.key, stream_out);
  IngestMetrics& m = IngestMetrics::get();
  (pr.hit ? m.probe_hits : m.probe_misses).add(1);
  return pr;
}

/// The unit flowing through the stage queues. Failed items keep flowing —
/// every stage forwards them untouched — so completion order and accounting
/// stay trivially correct.
struct IngestPipeline::Work {
  std::size_t index = 0;
  Item item;
  common::Hash128 key{};
  Bytes stream;
  pfpl::Header header{};
  bool reused = false;
  bool failed = false;
  std::string error;
  bool audited = false;
  u64 audit_violations = 0;

  std::size_t queue_bytes() const { return item.raw.size() + stream.size(); }
  void fail(const std::string& why) {
    failed = true;
    error = why;
  }
};

IngestPipeline::IngestPipeline(const Options& opts)
    : opts_(opts),
      pool_(std::make_unique<svc::ThreadPool>(opts.threads)) {}

IngestPipeline::~IngestPipeline() = default;

unsigned IngestPipeline::threads() const { return pool_->worker_count(); }

std::vector<Result> IngestPipeline::run(std::vector<Item> items) {
  OBS_SPAN("ingest.run");
  Timer wall;
  stats_ = IngestStats{};
  stats_.files = items.size();
  stats_.threads = pool_->worker_count();
  const std::size_t total = items.size();

  std::vector<Result> results(total);
  // unsigned char, not bool: the fail_fast path delivers from a stage thread
  // while the append thread delivers other indices — vector<bool>'s packed
  // bits would make those writes race.
  std::vector<unsigned char> delivered(total, 0);
  // Names are recorded up front: items are moved into the pipeline, and a
  // cancelled item's Work (name included) may be dropped inside a queue.
  for (std::size_t i = 0; i < total; ++i) results[i].name = items[i].name;

  IngestMetrics& im = IngestMetrics::get();
  using WorkPtr = std::unique_ptr<Work>;
  BoundedQueue<WorkPtr> q_hash(opts_.queue_items, opts_.queue_bytes, &im.q_hash_depth);
  BoundedQueue<WorkPtr> q_encode(opts_.queue_items, opts_.queue_bytes,
                                 &im.q_encode_depth);
  BoundedQueue<WorkPtr> q_append(opts_.queue_items, opts_.queue_bytes,
                                 &im.q_append_depth);

  std::atomic<bool> abort{false};
  // First-error cancellation (fail_fast): drop everything still queued
  // upstream and wake any blocked stage. The append queue is NEVER
  // cancelled — the failing item itself still drains through it, so the
  // caller sees the error, and the append thread is the single exit point.
  auto cancel_upstream = [&] {
    abort.store(true, std::memory_order_relaxed);
    q_hash.cancel();
    q_encode.cancel();
  };
  auto on_item_error = [&](Work& w, const std::string& why) {
    w.fail(why);
    if (opts_.fail_fast) cancel_upstream();
  };

  // The single definition of "this item is done": fills the caller-visible
  // Result, the run counters, and fires the progress callback. Normally only
  // the append thread delivers (batch-by-batch, in index order); the
  // fail_fast error path in the read/hash stages delivers the failing item
  // directly — its output queue was just cancelled, so pushing would drop
  // the error on the floor. The mutex keeps the shared counters and the
  // progress callback serialized across those two callers.
  std::mutex deliver_mu;
  auto deliver = [&](WorkPtr w) {
    std::lock_guard<std::mutex> lk(deliver_mu);
    Result& r = results[w->index];
    r.name = std::move(w->item.name);
    r.raw_bytes = w->item.raw.size();
    r.failed = w->failed;
    r.error = std::move(w->error);
    r.reused = w->reused;
    r.audited = w->audited;
    r.audit_violations = w->audit_violations;
    if (!w->failed) {
      r.header = w->header;
      r.stream = std::move(w->stream);
      stats_.bytes_out += r.stream.size();
    }
    stats_.bytes_in += r.raw_bytes;
    if (w->failed) ++stats_.files_failed;
    if (w->reused) ++stats_.files_reused;
    delivered[w->index] = 1;
    if (opts_.progress) opts_.progress(r, w->index, total);
  };

  const u64 slow_us = slow_stage_us();

  // Watchdog slots, one per stage, shared by every pipeline instance (the
  // names are stable and slots are never recycled). Each stage marks itself
  // busy per item — including queue pushes, so a stage wedged on a full
  // queue behind a stuck consumer is flagged too. Inert until armed.
  static const int wd_read = obs::Watchdog::global().register_slot("ingest.read");
  static const int wd_hash = obs::Watchdog::global().register_slot("ingest.hash");
  static const int wd_encode = obs::Watchdog::global().register_slot("ingest.encode");
  static const int wd_append = obs::Watchdog::global().register_slot("ingest.append");

  // ---- stage 1: read -----------------------------------------------------
  std::thread read_thread([&] {
    double stage_ms = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (abort.load(std::memory_order_relaxed)) break;
      obs::StallScope stall(wd_read, i);
      auto w = std::make_unique<Work>();
      w->index = i;
      w->item = std::move(items[i]);
      Timer t;
      if (!w->item.path.empty()) {
        try {
          io::DoubleBufferedReader rd(w->item.path, opts_.read_buffer_bytes);
          for (std::span<const u8> sp = rd.next(); !sp.empty(); sp = rd.next())
            w->item.raw.insert(w->item.raw.end(), sp.begin(), sp.end());
        } catch (const std::exception& e) {
          on_item_error(*w, e.what());
        }
      }
      stage_sleep(opts_.stage_cost_us[0]);
      const double ms = t.seconds() * 1e3;
      stage_ms += ms;
      im.read_us.record(static_cast<u64>(ms * 1e3));
      if (w->failed && opts_.fail_fast) {
        // q_hash was just cancelled by on_item_error; pushing would drop the
        // error. Deliver the failing item directly and stop reading.
        deliver(std::move(w));
        break;
      }
      const std::size_t bytes = w->queue_bytes();
      if (!q_hash.push(std::move(w), bytes)) break;
    }
    q_hash.close();
    stats_.read_ms = stage_ms;  // joined before run() reads stats_
  });

  // ---- stage 2: content hash + dedup probe -------------------------------
  std::thread hash_thread([&] {
    double stage_ms = 0;
    u64 hits = 0, misses = 0;
    WorkPtr w;
    while (q_hash.pop(w)) {
      obs::StallScope stall(wd_hash, w->index);
      if (!w->failed && !abort.load(std::memory_order_relaxed)) {
        Timer t;
        try {
          if (opts_.store) {
            ProbeResult pr =
                probe_compress(*opts_.store, w->item.raw.data(), w->item.raw.size(),
                               opts_.dtype, opts_.params.eb, opts_.params.eps,
                               w->stream);
            w->key = pr.key;
            if (pr.hit) {
              w->reused = true;
              w->header = pfpl::peek_header(w->stream);
              ++hits;
            } else {
              ++misses;
            }
          }
        } catch (const std::exception& e) {
          on_item_error(*w, e.what());
        }
        stage_sleep(opts_.stage_cost_us[1]);
        const double ms = t.seconds() * 1e3;
        stage_ms += ms;
        im.hash_us.record(static_cast<u64>(ms * 1e3));
        if (w->failed && opts_.fail_fast) {
          // Same as the read stage: our output queue is already cancelled.
          deliver(std::move(w));
          break;
        }
      }
      const std::size_t bytes = w->queue_bytes();
      if (!q_encode.push(std::move(w), bytes)) break;
    }
    q_encode.close();
    stats_.hash_ms = stage_ms;
    stats_.probe_hits = hits;
    stats_.probe_misses = misses;
  });

  // ---- stage 3: encode (chunk fan-out on the svc pool) -------------------
  std::thread encode_thread([&] {
    double stage_ms = 0;
    u64 chunks = 0, audited = 0, violations = 0;
    svc::ByteBudget budget(opts_.max_inflight_bytes);
    WorkPtr w;
    while (q_encode.pop(w)) {
      obs::StallScope stall(wd_encode, w->index);
      if (!w->failed && !abort.load(std::memory_order_relaxed)) {
        Timer t;
        if (!w->reused) {
          // Same plan / per-chunk code / slot-ordered assembly as
          // svc::BatchCompressor — the output is byte-identical to
          // single-threaded pfpl::compress by construction.
          try {
            const Field field = make_field(w->item.raw, opts_.dtype);
            w->header = pfpl::plan_header(field, opts_.params);
            std::vector<Bytes> payloads(w->header.chunk_count);
            std::vector<u32> sizes(w->header.chunk_count, 0);
            std::vector<std::future<u32>> futures;
            futures.reserve(w->header.chunk_count);
            const pfpl::Executor exec = opts_.params.exec;
            const std::size_t chunk_bytes =
                pfpl::chunk_values(opts_.dtype) * dtype_size(opts_.dtype);
            const pfpl::Header* h = &w->header;
            for (std::size_t c = 0; c < w->header.chunk_count; ++c) {
              budget.acquire(chunk_bytes);
              Bytes* slot = &payloads[c];
              futures.push_back(pool_->submit([&field, h, c, exec, slot, &budget,
                                               chunk_bytes]() -> u32 {
                struct Release {
                  svc::ByteBudget* b;
                  std::size_t n;
                  ~Release() { b->release(n); }
                } release{&budget, chunk_bytes};
                return pfpl::encode_chunk(field, *h, c, exec, *slot);
              }));
              ++chunks;
            }
            try {
              for (std::size_t c = 0; c < futures.size(); ++c)
                sizes[c] = futures[c].get();
              w->stream =
                  pfpl::assemble_stream(w->header, sizes, payloads, exec);
            } catch (...) {
              // Drain remaining futures so no task outlives its slots.
              for (auto& f : futures)
                if (f.valid()) f.wait();
              throw;
            }
          } catch (const std::exception& e) {
            on_item_error(*w, e.what());
          }
        }
        if (!w->failed && opts_.audit) {
          // Audit covers reused streams too: the probe's promise is
          // byte-identity, so a stored stream must satisfy the same bound.
          try {
            const Field field = make_field(w->item.raw, opts_.dtype);
            const std::vector<u8> raw_back =
                pfpl::decompress(w->stream, opts_.params.exec);
            const obs::AuditCase ac = obs::ErrorBoundAuditor::verify_field(
                field, raw_back, opts_.params.eb, opts_.params.eps, "ingest",
                w->item.name, /*seed=*/0, w->stream.size());
            w->audited = true;
            w->audit_violations = ac.violations;
            ++audited;
            violations += ac.violations;
          } catch (const std::exception& e) {
            on_item_error(*w, e.what());
          }
        }
        stage_sleep(opts_.stage_cost_us[2]);
        const double ms = t.seconds() * 1e3;
        stage_ms += ms;
        im.encode_us.record(static_cast<u64>(ms * 1e3));
      }
      const std::size_t bytes = w->queue_bytes();
      if (!q_append.push(std::move(w), bytes)) break;
    }
    q_append.close();
    stats_.encode_ms = stage_ms;
    stats_.chunks = chunks;
    stats_.audited = audited;
    stats_.audit_violations = violations;
  });

  // ---- stage 4: batched append + in-order completion ---------------------
  std::thread append_thread([&] {
    double stage_ms = 0;
    u64 batches = 0, appended = 0;
    std::vector<WorkPtr> batch;
    std::size_t batch_payload = 0;

    auto flush_batch = [&] {
      if (batch.empty()) return;
      Timer t;
      if (opts_.store) {
        std::vector<store::SegmentStore::BatchEntry> entries;
        entries.reserve(batch.size());
        for (const WorkPtr& w : batch)
          if (!w->failed && !w->reused && !w->stream.empty())
            entries.push_back({w->key, &w->stream,
                               store::ChunkMeta{opts_.dtype, opts_.params.eb,
                                                opts_.params.eps,
                                                w->item.raw.size()}});
        if (!entries.empty()) {
          try {
            appended += opts_.store->put_batch(entries);
            ++batches;
            im.batch_items.record(entries.size());
          } catch (const std::exception& e) {
            // Store I/O failure taints the whole group: the streams are
            // still correct, but their durability promise is broken.
            for (WorkPtr& w : batch)
              if (!w->failed && !w->reused) on_item_error(*w, e.what());
          }
        }
      }
      const double ms = t.seconds() * 1e3;
      stage_ms += ms;
      im.append_us.record(static_cast<u64>(ms * 1e3));
      // Completion is delivered batch-by-batch, still in index order (the
      // queues are FIFO and every stage is a single thread).
      for (WorkPtr& w : batch) deliver(std::move(w));
      batch.clear();
      batch_payload = 0;
    };

    WorkPtr w;
    while (q_append.pop(w)) {
      obs::StallScope stall(wd_append, w->index);
      stage_sleep(slow_us);
      stage_sleep(opts_.stage_cost_us[3]);
      batch_payload += w->stream.size();
      batch.push_back(std::move(w));
      // Greedy batching: keep pulling while work is immediately available,
      // cut the group at either batch bound. An idle queue flushes right
      // away so a trickle of items never waits on a half-full batch.
      while (batch.size() < opts_.batch_items && batch_payload < opts_.batch_bytes &&
             q_append.try_pop(w)) {
        stage_sleep(slow_us);
        stage_sleep(opts_.stage_cost_us[3]);
        batch_payload += w->stream.size();
        batch.push_back(std::move(w));
      }
      flush_batch();
    }
    flush_batch();
    stats_.append_ms = stage_ms;
    stats_.append_batches = batches;
    stats_.appended = appended;
  });

  read_thread.join();
  hash_thread.join();
  encode_thread.join();
  append_thread.join();

  // Anything not delivered was dropped by cancellation (or never read
  // because the read loop aborted): mark it so the caller can tell "failed"
  // from "never attempted".
  for (std::size_t i = 0; i < total; ++i) {
    if (delivered[i]) continue;
    results[i].cancelled = true;
    results[i].error = "cancelled after earlier error";
    ++stats_.files_cancelled;
  }

  stats_.peak_queue_bytes = std::max({q_hash.peak_bytes(), q_encode.peak_bytes(),
                                      q_append.peak_bytes()});
  stats_.peak_queue_items = std::max({q_hash.peak_items(), q_encode.peak_items(),
                                      q_append.peak_items()});
  pool_->drain();
  stats_.wall_ms = wall.seconds() * 1e3;
  stats_.publish(obs::MetricsRegistry::global());
  return results;
}

}  // namespace repro::ingest
