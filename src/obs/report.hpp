// RunReport — one machine-readable JSON artifact per run.
//
// Folds everything the process observed into a single document:
//
//   {
//     "meta":         { "tool": "pfpl", "argv": "...", ... },
//     "metrics":      MetricsRegistry::json(),
//     "spans":        per-name aggregates {count, total_ms, min_ms, max_ms},
//     "run_times_ms": { "<label>": [t0, t1, ...] },   // bench per-run times
//     "sections":     { "svc": {...}, ... }           // caller-rendered JSON
//   }
//
// Sections are pre-rendered JSON fragments so higher layers (svc, bench) can
// contribute their own stats without obs depending on them. The CLI and the
// bench harness write the report when --report / --json is given; CI uploads
// it as an artifact so perf regressions are diffable across commits.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace repro::obs {

class RunReport {
 public:
  static RunReport& global();

  void set_meta(const std::string& key, const std::string& value);
  /// Attach a pre-rendered JSON object under "sections"."name" (replaces any
  /// previous fragment with the same name).
  void add_section(const std::string& name, const std::string& json_fragment);
  /// Append per-run wall times (milliseconds) under "run_times_ms"."label";
  /// repeated calls with the same label extend the series.
  void add_run_times(const std::string& label, const std::vector<double>& ms);

  /// Render the full document (pulls the live MetricsRegistry and
  /// TraceRecorder aggregates at call time).
  std::string json() const;
  /// Write json() to `path`. Throws CompressionError on I/O failure.
  void write(const std::string& path) const;

  void clear();

 private:
  RunReport() = default;

  mutable std::mutex m_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, std::string> sections_;
  std::map<std::string, std::vector<double>> run_times_ms_;
};

}  // namespace repro::obs
