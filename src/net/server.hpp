// pfpld — the PFPN/1 compression server.
//
// Architecture (one event-loop thread + the svc worker pool):
//
//   * A readiness event loop (epoll(7) via net/poller.hpp, with poll(2) as
//     the portability fallback) owns the listening socket and every
//     connection. Connections are non-blocking; frames are parsed
//     incrementally from per-connection buffers (net::FrameParser), so a
//     slow or malicious peer can never block the loop or make it over-read.
//   * COMPRESS/DECOMPRESS work is dispatched onto a svc::ThreadPool. Workers
//     never touch connection state: each finished request is pushed onto a
//     completion queue and the loop is woken through a self-pipe, the only
//     cross-thread channel.
//   * Backpressure is per connection: while a connection has more than
//     `max_inflight_bytes` of dispatched-but-unanswered payload, the loop
//     parks its parsed-but-undispatched frames and stops polling it for
//     reads. A single request larger than the whole budget is admitted alone
//     (mirroring svc's ByteBudget) so it cannot deadlock.
//   * Graceful drain (SIGINT via request_stop(), or a SHUTDOWN frame): stop
//     accepting connections, answer new requests with a typed Draining
//     error, let in-flight requests finish and their responses flush, then
//     close everything and return from run(). A peer that refuses to read
//     its responses is cut off after `drain_timeout_ms`.
//
// Protocol errors get typed error frames: recoverable ones (CRC mismatch,
// bad params, unsupported op) keep the connection; framing errors (bad
// magic, oversized length) get a best-effort error frame and a close. The
// server must never crash on hostile bytes — tests/test_net.cpp pins this.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "cluster/shard_map.hpp"
#include "common/types.hpp"
#include "core/pfpl.hpp"
#include "net/socket.hpp"

namespace repro::store {
class ChunkStore;
}

namespace repro::net {

class Server {
 public:
  struct Options {
    std::string bind_host = "127.0.0.1";
    u16 port = 0;                                 ///< 0 = ephemeral
    unsigned threads = 0;                         ///< pool workers; 0 = hw
    std::size_t max_inflight_bytes = 64u << 20;   ///< per-connection budget
    std::size_t max_frame_payload = 256u << 20;   ///< declared-length cap
    std::size_t queue_capacity = 4096;            ///< pool bounded queue
    int drain_timeout_ms = 5000;                  ///< flush deadline on drain
    pfpl::Executor exec = pfpl::Executor::Serial;
    /// Optional PFPS chunk store: COMPRESS/DECOMPRESS answers are looked up
    /// by content hash before dispatching to the pool, and computed results
    /// are stored back. Shared so the CLI can keep a handle for shutdown
    /// stats. Null = no store (compute every request).
    std::shared_ptr<store::ChunkStore> store;
    /// Slow-request capture: requests whose total latency reaches `slow_ms`
    /// enter a ring of the `slow_capacity` slowest (exposed via STATS and
    /// METRICS, logged through obs::EventLog). 0 disables capture.
    int slow_ms = 0;
    std::size_t slow_capacity = 32;
    /// Plain-HTTP GET /metrics listener on the same poll loop, for scrapers
    /// that do not speak PFPN: -1 = disabled, 0 = ephemeral, else the port.
    int metrics_port = -1;
    /// Flight recorder: snapshot the metrics registry every `flight_ms` into
    /// a ring of `flight_depth` (served as /history and the METRICS "history"
    /// selector). 0 disables the sampler thread entirely.
    int flight_ms = 0;
    int flight_depth = 32;
    /// Watchdog threshold: flag any pool worker stuck on one request (or any
    /// ingest stage stuck on one item) for longer than this. Requires the
    /// flight recorder (its sampler drives the checks). 0 disables.
    u64 stall_ms = 0;
    /// Non-empty: install the fatal-signal crash handler writing
    /// `<crash_dir>/crash-<pid>.json`, keep its body refreshed with the last
    /// flight snapshots, and write stall dumps there.
    std::string crash_dir;
    /// Accepted-connection cap: at the limit the listener is simply not
    /// polled for reads, so new peers wait in the kernel backlog until a
    /// slot frees. 0 = unlimited.
    std::size_t max_conns = 0;
    /// Event-loop backend: epoll(7) by default on Linux, with poll(2) as
    /// the portability fallback (non-Linux builds, or --poll for A/B runs).
    bool use_epoll = true;
    /// Cluster membership: a non-empty shard map turns on cluster mode —
    /// the SHARDMAP/HEALTH ops serve it, and COMPRESS/DECOMPRESS requests
    /// whose content key this node does not own are refused with
    /// Status::WrongShard (the client refetches the map and re-routes).
    /// `node_id` names this node in the map; empty = resolve by matching
    /// the bound port against the map's nodes (throws when ambiguous).
    cluster::ShardMap shard_map;
    std::string node_id;
    /// Temporal frame sessions (STREAM_OPEN/FRAME/CLOSE): cap on concurrent
    /// sessions (0 = unlimited) and the idle-eviction threshold — a session
    /// with no frame for `session_idle_ms` is evicted and later frames get
    /// Status::BadSession (the client reopens and resumes at a keyframe).
    /// 0 disables idle eviction.
    std::size_t max_sessions = 64;
    int session_idle_ms = 60000;
  };

  /// Plain-atomic service counters (live regardless of obs::enabled(), so
  /// the STATS op always has content).
  struct Stats {
    u64 connections_accepted = 0;
    u64 connections_current = 0;
    u64 frames_rx = 0;
    u64 frames_tx = 0;
    u64 bytes_rx = 0;
    u64 bytes_tx = 0;
    u64 requests_compress = 0;
    u64 requests_decompress = 0;
    u64 requests_other = 0;   ///< STATS/PING/SHUTDOWN
    u64 errors = 0;           ///< typed error frames sent
    u64 store_hits = 0;       ///< requests answered from the chunk store
    u64 store_misses = 0;     ///< requests that had to compute (store attached)
    u64 inflight_bytes = 0;
    u64 peak_inflight_bytes = 0;
    u64 slow_requests = 0;    ///< requests captured by the slow-request ring
    u64 metrics_scrapes = 0;  ///< METRICS ops + HTTP /metrics[.json] GETs
    u64 accept_overloads = 0; ///< connections shed on EMFILE/ENFILE
    u64 wrong_shard = 0;      ///< requests refused for keys this node doesn't own
    u64 map_exchanges = 0;    ///< SHARDMAP ops served
    u64 map_adopted = 0;      ///< higher-epoch maps adopted from peers/clients
    u64 health_checks = 0;    ///< HEALTH ops served
    u64 sessions_opened = 0;  ///< STREAM_OPEN sessions created
    u64 sessions_closed = 0;  ///< STREAM_CLOSE (explicit client close)
    u64 sessions_evicted = 0; ///< idle-evicted or killed by drain
    u64 sessions_current = 0; ///< live temporal sessions
    u64 stream_frames = 0;    ///< STREAM_FRAME requests admitted
    bool draining = false;
  };

  /// Binds and listens immediately (throws NetError on failure) so port()
  /// is valid before run() — callers start the loop on a thread and connect.
  explicit Server(const Options& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  u16 port() const { return port_; }
  /// Bound port of the HTTP /metrics listener (0 when disabled).
  u16 metrics_port() const { return metrics_port_; }

  /// Run the event loop on the calling thread; returns after a graceful
  /// drain completes (request_stop() or a SHUTDOWN frame).
  void run();

  /// Begin graceful drain. Safe from any thread and from signal handlers
  /// (atomic store + one write() to the wake pipe).
  void request_stop();

  /// (Re)join a cluster: adopt `map` and identify as `node_id` (empty =
  /// resolve by bound port, as with Options::node_id). Safe before run() or
  /// while running — bench harnesses boot N ephemeral-port servers first
  /// and install the map once every port is known.
  void set_cluster(const cluster::ShardMap& map, const std::string& node_id = "");
  /// The current shard map (empty when not clustered) and its epoch.
  cluster::ShardMap shard_map() const;

  Stats stats() const;
  /// The STATS-op payload: stats + config as a JSON object.
  std::string stats_json() const;
  /// The METRICS-op JSON payload: pfpl-metrics/1 envelope around the global
  /// registry plus live stats and the slow-request ring.
  std::string metrics_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  u16 port_ = 0;
  u16 metrics_port_ = 0;
};

}  // namespace repro::net
