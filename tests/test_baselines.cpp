// Tests for the seven baseline re-implementations: round-trips, bound
// behaviour matching each compressor's Table III profile (guaranteed bounds
// hold; deliberately reproduced flaws actually misbehave where the paper says
// they do), and format robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cuszp_like.hpp"
#include "baselines/fzgpu_like.hpp"
#include "baselines/mgard_like.hpp"
#include "baselines/registry.hpp"
#include "baselines/sperr_like.hpp"
#include "baselines/sz2.hpp"
#include "baselines/sz3.hpp"
#include "baselines/zfp_like.hpp"
#include "data/rng.hpp"
#include "data/synthetic.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;
using namespace repro::baselines;

namespace {

std::vector<float> smooth3d(std::array<std::size_t, 3> dims, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(dims[0] * dims[1] * dims[2]);
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims[0]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[2]; ++x)
        v[i++] = static_cast<float>(std::sin(0.1 * z) * std::cos(0.07 * y) +
                                    0.3 * std::sin(0.05 * x) + 0.001 * rng.gaussian());
  return v;
}

template <typename T>
double max_abs_err(std::span<const T> a, std::span<const T> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::isfinite(a[i]))
      m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  return m;
}

}  // namespace

// --- SZ2 ---------------------------------------------------------------------

TEST(Sz2, AbsRoundtripGuaranteed1D) {
  data::Rng rng(71);
  std::vector<float> v(50000);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.1 * rng.gaussian();
    x = static_cast<float>(acc);
  }
  Sz2Compressor sz2;
  for (double eps : {1e-1, 1e-3}) {
    Bytes c = sz2.compress(Field(v.data(), v.size()), eps, EbType::ABS);
    auto back = sz2.decompress_as<float>(c);
    EXPECT_EQ(metrics::count_violations(std::span<const float>(v),
                                        std::span<const float>(back), eps, EbType::ABS),
              0u);
  }
}

TEST(Sz2, AbsRoundtripGuaranteed3D) {
  auto v = smooth3d({16, 32, 32}, 72);
  Sz2Compressor sz2;
  Bytes c = sz2.compress(Field(v.data(), {16, 32, 32}), 1e-3, EbType::ABS);
  auto back = sz2.decompress_as<float>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::ABS),
            0u);
  EXPECT_LT(c.size(), v.size() * 4);  // it actually compresses smooth data
}

TEST(Sz2, NoaRoundtripGuaranteed) {
  auto v = smooth3d({8, 16, 16}, 73);
  Sz2Compressor sz2;
  Bytes c = sz2.compress(Field(v.data(), {8, 16, 16}), 1e-3, EbType::NOA);
  auto back = sz2.decompress_as<float>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::NOA),
            0u);
}

TEST(Sz2, RelMostlyBoundedButNotGuaranteed) {
  // SZ2's log-space REL: the overwhelming majority of values satisfy the
  // bound, but nothing re-checks the exp/log round-trip — the error is
  // small but the *guarantee* is absent (Table III '○').
  data::Rng rng(74);
  std::vector<float> v(100000);
  for (auto& x : v)
    x = static_cast<float>(rng.gaussian() * std::pow(10.0, rng.uniform(-6, 6)));
  Sz2Compressor sz2;
  double eps = 1e-3;
  Bytes c = sz2.compress(Field(v.data(), v.size()), eps, EbType::REL);
  auto back = sz2.decompress_as<float>(c);
  std::size_t bad = metrics::count_violations(std::span<const float>(v),
                                              std::span<const float>(back), eps, EbType::REL);
  // Loose REL (2x the bound) must hold for nearly everything; the strict
  // bound may be violated by a small fraction.
  std::size_t very_bad = metrics::count_violations(
      std::span<const float>(v), std::span<const float>(back), eps * 4, EbType::REL);
  EXPECT_LT(bad, v.size() / 100);
  EXPECT_EQ(very_bad, 0u);
}

TEST(Sz2, SpecialValuesSurviveRel) {
  std::vector<float> v{0.0f, -0.0f, 1.0f, -1.0f, std::numeric_limits<float>::infinity(),
                       std::numeric_limits<float>::quiet_NaN(), 42.0f, -42.0f};
  Sz2Compressor sz2;
  Bytes c = sz2.compress(Field(v.data(), v.size()), 1e-2, EbType::REL);
  auto back = sz2.decompress_as<float>(c);
  EXPECT_EQ(back[0], 0.0f);
  EXPECT_TRUE(std::isinf(back[4]));
  EXPECT_TRUE(std::isnan(back[5]));
  EXPECT_LT(std::abs(back[6] - 42.0f) / 42.0f, 1e-2 * 1.01);
}

// --- SZ3 ---------------------------------------------------------------------

TEST(Sz3, SerialRoundtripGuaranteed) {
  auto v = smooth3d({16, 32, 32}, 75);
  Sz3Compressor sz3(false);
  for (double eps : {1e-2, 1e-4}) {
    Bytes c = sz3.compress(Field(v.data(), {16, 32, 32}), eps, EbType::ABS);
    auto back = sz3.decompress_as<float>(c);
    EXPECT_EQ(metrics::count_violations(std::span<const float>(v),
                                        std::span<const float>(back), eps, EbType::ABS),
              0u);
  }
}

TEST(Sz3, OmpVariantRoundtripsAndCompressesLess) {
  // Paper: SZ3_OMP "compresses significantly less than serial SZ3".
  auto v = smooth3d({32, 64, 64}, 76);
  Sz3Compressor serial(false), omp(true);
  Bytes cs = serial.compress(Field(v.data(), {32, 64, 64}), 1e-3, EbType::ABS);
  Bytes co = omp.compress(Field(v.data(), {32, 64, 64}), 1e-3, EbType::ABS);
  auto back = omp.decompress_as<float>(co);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::ABS),
            0u);
  EXPECT_LE(cs.size(), co.size());
}

TEST(Sz3, BeatsSz2OnSmoothData) {
  // The interpolation predictor out-compresses Lorenzo on smooth inputs —
  // the reason the paper swaps SZ2 for SZ3 outside the REL section.
  auto v = smooth3d({16, 64, 64}, 77);
  Sz3Compressor sz3(false);
  Sz2Compressor sz2;
  Bytes c3 = sz3.compress(Field(v.data(), v.size()), 1e-3, EbType::ABS);
  Bytes c2 = sz2.compress(Field(v.data(), v.size()), 1e-3, EbType::ABS);
  EXPECT_LT(c3.size(), c2.size());
}

TEST(Sz3, RejectsRel) {
  std::vector<float> v(100, 1.0f);
  Sz3Compressor sz3(false);
  EXPECT_THROW(sz3.compress(Field(v.data(), v.size()), 1e-3, EbType::REL), CompressionError);
}

TEST(Sz3, DoublePrecisionRoundtrip) {
  data::Rng rng(78);
  std::vector<double> v(30000);
  double acc = 0;
  for (auto& x : v) {
    acc += rng.gaussian();
    x = acc;
  }
  Sz3Compressor sz3(false);
  Bytes c = sz3.compress(Field(v.data(), v.size()), 1e-4, EbType::ABS);
  auto back = sz3.decompress_as<double>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const double>(v), std::span<const double>(back),
                                      1e-4, EbType::ABS),
            0u);
}

// --- ZFP-like ------------------------------------------------------------------

TEST(ZfpLike, AbsRoundtripOverPreserves) {
  auto v = smooth3d({16, 32, 32}, 79);
  ZfpLikeCompressor zfp;
  Bytes c = zfp.compress(Field(v.data(), {16, 32, 32}), 1e-3, EbType::ABS);
  auto back = zfp.decompress_as<float>(c);
  double maxerr = max_abs_err(std::span<const float>(v), std::span<const float>(back));
  // '○' profile: close to the bound (here within 2x) but typically well
  // under it (over-preservation).
  EXPECT_LT(maxerr, 2e-3);
}

TEST(ZfpLike, RelModeTruncates) {
  auto v = smooth3d({8, 16, 16}, 80);
  for (auto& x : v) x += 2.0f;  // keep away from zero for relative checks
  ZfpLikeCompressor zfp;
  Bytes c = zfp.compress(Field(v.data(), {8, 16, 16}), 1e-3, EbType::REL);
  auto back = zfp.decompress_as<float>(c);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LT(std::abs(v[i] - back[i]) / std::abs(v[i]), 0.05) << i;
}

TEST(ZfpLike, WorksOn1DAnd2D) {
  data::Rng rng(81);
  std::vector<float> v1(1000);
  for (std::size_t i = 0; i < v1.size(); ++i) v1[i] = static_cast<float>(std::sin(i * 0.01));
  ZfpLikeCompressor zfp;
  Bytes c1 = zfp.compress(Field(v1.data(), v1.size()), 1e-3, EbType::ABS);
  auto b1 = zfp.decompress_as<float>(c1);
  EXPECT_LT(max_abs_err(std::span<const float>(v1), std::span<const float>(b1)), 4e-3);

  std::vector<float> v2(64 * 48);
  for (std::size_t i = 0; i < v2.size(); ++i) v2[i] = static_cast<float>(std::cos(i * 0.001));
  Bytes c2 = zfp.compress(Field(v2.data(), {1, 48, 64}), 1e-3, EbType::ABS);
  auto b2 = zfp.decompress_as<float>(c2);
  EXPECT_LT(max_abs_err(std::span<const float>(v2), std::span<const float>(b2)), 4e-3);
}

TEST(ZfpLike, CompressesSmoothData) {
  auto v = smooth3d({32, 32, 32}, 82);
  ZfpLikeCompressor zfp;
  Bytes c = zfp.compress(Field(v.data(), {32, 32, 32}), 1e-2, EbType::ABS);
  EXPECT_LT(c.size(), v.size() * 4 / 3);  // > 3x ratio
}

// --- cuSZp-like -----------------------------------------------------------------

TEST(CuszpLike, AbsRoundtripWithinBoundOnNormalData) {
  data::Rng rng(83);
  std::vector<float> v(50000);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(acc);
  }
  CuszpLikeCompressor cu;
  Bytes c = cu.compress(Field(v.data(), v.size()), 1e-3, EbType::ABS);
  auto back = cu.decompress_as<float>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::ABS),
            0u);
}

TEST(CuszpLike, PrequantOverflowViolatesBound) {
  // The reproduced cuSZp flaw: |v|/(2 eps) beyond 2^31 wraps, producing a
  // major error-bound violation — exactly the paper's Section I complaint.
  std::vector<float> v(64, 0.0f);
  v[0] = 1e10f;  // bin ~5e12 >> 2^31 at eps = 1e-3
  CuszpLikeCompressor cu;
  Bytes c = cu.compress(Field(v.data(), v.size()), 1e-3, EbType::ABS);
  auto back = cu.decompress_as<float>(c);
  EXPECT_GT(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::ABS),
            0u);
}

TEST(CuszpLike, DoubleRoundtrip) {
  data::Rng rng(84);
  std::vector<double> v(20000);
  double acc = 100;
  for (auto& x : v) {
    acc += rng.gaussian();
    x = acc;
  }
  CuszpLikeCompressor cu;
  Bytes c = cu.compress(Field(v.data(), v.size()), 1e-2, EbType::NOA);
  auto back = cu.decompress_as<double>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const double>(v), std::span<const double>(back),
                                      1e-2, EbType::NOA),
            0u);
}

// --- FZ-GPU-like ----------------------------------------------------------------

TEST(FzGpuLike, NoaRoundtrip3D) {
  auto v = smooth3d({16, 32, 32}, 85);
  FzGpuLikeCompressor fz;
  Bytes c = fz.compress(Field(v.data(), {16, 32, 32}), 1e-3, EbType::NOA);
  auto back = fz.decompress_as<float>(c);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      1e-3, EbType::NOA),
            0u);
  EXPECT_LT(c.size(), v.size() * 4);
}

TEST(FzGpuLike, RejectsNon3DAndNonNoa) {
  std::vector<float> v(100, 1.0f);
  FzGpuLikeCompressor fz;
  EXPECT_THROW(fz.compress(Field(v.data(), v.size()), 1e-3, EbType::NOA), CompressionError);
  auto v3 = smooth3d({4, 8, 8}, 86);
  EXPECT_THROW(fz.compress(Field(v3.data(), {4, 8, 8}), 1e-3, EbType::ABS), CompressionError);
  std::vector<double> vd(64, 1.0);
  EXPECT_THROW(fz.compress(Field(vd.data(), {4, 4, 4}), 1e-3, EbType::NOA), CompressionError);
}

// --- MGARD-like -----------------------------------------------------------------

TEST(MgardLike, RoundtripCloseToBound) {
  auto v = smooth3d({8, 32, 32}, 87);
  MgardLikeCompressor mg;
  double eps = 1e-3;
  Bytes c = mg.compress(Field(v.data(), {8, 32, 32}), eps, EbType::ABS);
  auto back = mg.decompress_as<float>(c);
  double maxerr = max_abs_err(std::span<const float>(v), std::span<const float>(back));
  // Not guaranteed ('○'): error can exceed eps, but stays within the
  // hierarchy-depth multiple of it.
  EXPECT_LT(maxerr, eps * 32);
  EXPECT_GT(maxerr, 0.0);
}

TEST(MgardLike, ErrorAccumulationCanViolateBound) {
  // Rough data drives the hierarchical error accumulation past the bound on
  // at least some values — the reproduced MGARD-X misbehaviour.
  data::Rng rng(88);
  std::vector<double> v(1 << 16);
  for (auto& x : v) x = rng.gaussian();
  MgardLikeCompressor mg;
  double eps = 1e-2;
  Bytes c = mg.compress(Field(v.data(), v.size()), eps, EbType::ABS);
  auto back = mg.decompress_as<double>(c);
  double maxerr = max_abs_err(std::span<const double>(v), std::span<const double>(back));
  EXPECT_GT(maxerr, eps);  // violation present
  EXPECT_LT(maxerr, eps * 64);
}

// --- SPERR-like -----------------------------------------------------------------

TEST(SperrLike, AbsRoundtripWithCorrections) {
  auto v = smooth3d({16, 32, 32}, 89);
  SperrLikeCompressor sp;
  for (double eps : {1e-2, 1e-4}) {
    Bytes c = sp.compress(Field(v.data(), {16, 32, 32}), eps, EbType::ABS);
    auto back = sp.decompress_as<float>(c);
    double maxerr = max_abs_err(std::span<const float>(v), std::span<const float>(back));
    // '○' with minor violations: allow the paper's < 1.5x slack.
    EXPECT_LT(maxerr, eps * 1.5);
  }
}

TEST(SperrLike, Rejects1DAndRel) {
  std::vector<float> v(100, 1.0f);
  SperrLikeCompressor sp;
  EXPECT_THROW(sp.compress(Field(v.data(), v.size()), 1e-3, EbType::ABS), CompressionError);
  auto v3 = smooth3d({4, 8, 8}, 90);
  EXPECT_THROW(sp.compress(Field(v3.data(), {4, 8, 8}), 1e-3, EbType::REL), CompressionError);
}

// --- registry ---------------------------------------------------------------------

TEST(Registry, AllCompressorsPresent) {
  auto all = all_compressors();
  EXPECT_EQ(all.size(), 11u);  // 8 baselines (SZ3 x2) + PFPL x3
  EXPECT_EQ(find_compressor("PFPL_Serial")->name(), "PFPL_Serial");
  EXPECT_EQ(find_compressor("SZ2_Serial")->name(), "SZ2_Serial");
  EXPECT_THROW(find_compressor("nope"), CompressionError);
}

TEST(Registry, FeatureMatrixMatchesTable3) {
  // The exact feature rows of Table III (support + guarantee pattern).
  auto check = [](const std::string& name, bool abs, bool rel, bool noa, bool f32, bool f64,
                  bool cpu, bool gpu) {
    Features f = find_compressor(name)->features();
    EXPECT_EQ(f.abs, abs) << name;
    EXPECT_EQ(f.rel, rel) << name;
    EXPECT_EQ(f.noa, noa) << name;
    EXPECT_EQ(f.f32, f32) << name;
    EXPECT_EQ(f.f64, f64) << name;
    EXPECT_EQ(f.cpu, cpu) << name;
    EXPECT_EQ(f.gpu, gpu) << name;
  };
  check("ZFP_Serial", true, true, false, true, true, true, false);
  check("SZ2_Serial", true, true, true, true, true, true, false);
  check("SZ3_Serial", true, false, true, true, true, true, false);
  check("MGARD-X", true, false, true, true, true, true, true);
  check("SPERR_Serial", true, false, false, true, true, true, false);
  check("FZ-GPU_CUDAsim", false, false, true, true, false, false, true);
  check("cuSZp_CUDAsim", true, false, true, true, true, false, true);
  check("PFPL_Serial", true, true, true, true, true, true, false);
  // PFPL guarantees all three bound types — its headline feature.
  Features pf = find_compressor("PFPL_Serial")->features();
  EXPECT_TRUE(pf.guarantee_abs && pf.guarantee_rel && pf.guarantee_noa);
  // SZ2 supports REL but does not guarantee it.
  Features s2 = find_compressor("SZ2_Serial")->features();
  EXPECT_FALSE(s2.guarantee_rel);
  EXPECT_TRUE(s2.guarantee_abs);
}

TEST(Registry, EverySupportedComboRoundtrips) {
  // Smoke sweep: every compressor x supported bound type x dtype on a small
  // 3D field round-trips without throwing and with bounded error.
  auto vf = smooth3d({8, 16, 16}, 91);
  std::vector<double> vd(vf.begin(), vf.end());
  for (const auto& c : all_compressors()) {
    Features f = c->features();
    for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
      if (!f.supports(eb)) continue;
      if (f.f32) {
        Bytes s = c->compress(Field(vf.data(), {8, 16, 16}), 1e-3, eb);
        auto back = c->decompress_as<float>(s);
        ASSERT_EQ(back.size(), vf.size()) << c->name();
        if (f.guarantees(eb))
          EXPECT_EQ(metrics::count_violations(std::span<const float>(vf),
                                              std::span<const float>(back), 1e-3, eb),
                    0u)
              << c->name() << " " << to_string(eb);
      }
      if (f.f64) {
        Bytes s = c->compress(Field(vd.data(), {8, 16, 16}), 1e-3, eb);
        auto back = c->decompress_as<double>(s);
        ASSERT_EQ(back.size(), vd.size()) << c->name();
      }
    }
  }
}
