// TraceRecorder — scoped spans serialized as Chrome trace_event JSON.
//
// Usage:
//   void encode() {
//     OBS_SPAN("encode_chunk");     // records [ctor, dtor) when obs is on
//     ...
//   }
//
// Spans are buffered per thread (registered lazily, so a process that never
// enables observability never allocates a buffer) and merged on read. The
// serialized form is the Chrome trace_event "X" (complete) event —
// chrome://tracing and Perfetto load the file directly — plus a compact
// indented text tree for terminals.
//
// Nesting is tracked with a per-thread depth counter: each event stores the
// depth at which it started, which is what the text tree indents by. Events
// land in the buffer at span *end* (when the duration is known), so a child
// appears before its parent in the raw buffer; both renderers sort by start
// timestamp first.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/control.hpp"

namespace repro::obs {

struct SpanEvent {
  std::string name;
  u64 start_ns = 0;  ///< since the recorder's epoch
  u64 dur_ns = 0;
  u32 tid = 0;   ///< recorder-assigned small id, stable per thread
  u32 depth = 0; ///< nesting depth at span start (0 = top level)
  u64 request_id = 0;  ///< TraceContext id active at span start (0 = none)
};

/// Request-scoped trace context: a per-thread id (the PFPN request_id on the
/// server path) that every span started while a Scope is live is tagged with,
/// so one request's spans can be pulled out of a merged multi-thread trace.
/// The id is an ordinary thread-local — installing a Scope is a store and a
/// restore, with no allocation or recording, so it is safe to install even
/// when observability is disabled.
class TraceContext {
 public:
  /// The calling thread's current request id (0 when outside any Scope).
  static u64 current() { return tl_id(); }

  /// RAII installer: sets the thread's id for the lifetime of the Scope and
  /// restores the previous value on destruction (scopes nest).
  class Scope {
   public:
    explicit Scope(u64 request_id) : prev_(tl_id()) { tl_id() = request_id; }
    ~Scope() { tl_id() = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    u64 prev_;
  };

 private:
  static u64& tl_id() {
    static thread_local u64 id = 0;
    return id;
  }
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// Drop all recorded events and restart the epoch. Buffers stay
  /// registered (their threads may still be alive).
  void clear();

  /// Merged snapshot of every thread's events (unordered across threads).
  std::vector<SpanEvent> events() const;
  std::size_t event_count() const;
  /// Number of threads that have recorded at least one span.
  std::size_t thread_count() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}; ts/dur in microseconds).
  std::string chrome_json() const;
  /// Indented per-thread tree; runs of same-name siblings are aggregated.
  std::string text_tree() const;
  /// Write chrome_json() to `path`. Throws CompressionError on I/O failure.
  void write_chrome_json(const std::string& path) const;

  // Internal API used by ScopedSpan ---------------------------------------
  struct ThreadBuf {
    std::mutex m;  ///< guards events against a concurrent merge
    std::vector<SpanEvent> events;
    u32 tid = 0;
    u32 depth = 0;  ///< owner-thread-only nesting counter
  };
  /// The calling thread's buffer, registering it on first use.
  ThreadBuf& thread_buf();
  u64 now_ns() const {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - epoch_)
                                .count());
  }

 private:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  mutable std::mutex m_;  ///< guards bufs_ registration and epoch resets
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Captures the start time when observability is enabled at
/// construction; the destructor records the completed event. When disabled,
/// construction and destruction are a relaxed load + branch each.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!obs::enabled()) return;
    begin(name);
  }
  explicit ScopedSpan(std::string name) {
    if (!obs::enabled()) return;
    dyn_name_ = std::move(name);
    begin(dyn_name_.c_str());
  }
  ~ScopedSpan() { if (buf_) end(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::string dyn_name_;
  TraceRecorder::ThreadBuf* buf_ = nullptr;
  u64 start_ns_ = 0;
  u32 depth_ = 0;
  u64 request_id_ = 0;
};

#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
#define OBS_SPAN(name) ::repro::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)(name)

}  // namespace repro::obs
