// BatchCompressor — concurrent multi-field compression with a determinism
// guarantee.
//
// A batch is N independent jobs (field + Params). Each job is decomposed
// into its chunk tasks (core/chunked.hpp) and fanned across a work-stealing
// ThreadPool; chunk results land in per-job slot arrays, so the assembled
// stream of every job is *byte-identical* to single-threaded pfpl::compress
// regardless of worker count, scheduling order, or steals. The invariant is
// structural — same plan, same per-chunk code, slot-ordered assembly — not a
// property of the scheduler, and tests/test_svc.cpp pins it.
//
// Backpressure: chunk tasks are admitted against a budget of in-flight input
// bytes (Options::max_inflight_bytes). The submitting thread blocks when the
// budget is exhausted, so a batch of many large fields never materializes
// more than roughly budget + queue-depth chunks of working memory at once —
// the same reason the streaming encoder exists (out-of-core, Section III-E),
// applied to the service layer.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/pfpl.hpp"
#include "svc/stats.hpp"

namespace repro::store {
class ChunkStore;
}

namespace repro::svc {

class ThreadPool;

/// One unit of service work: a named field plus compression parameters.
/// The field is borrowed; it must stay alive until run() returns.
struct Job {
  std::string name;
  Field field;
  pfpl::Params params;
};

struct JobResult {
  std::string name;
  Bytes stream;           ///< empty when failed
  pfpl::Header header;    ///< valid when !failed
  u64 raw_bytes = 0;
  bool failed = false;
  std::string error;      ///< CompressionError text when failed
  bool audited = false;        ///< true when Options::audit re-verified this job
  u64 audit_violations = 0;    ///< bound violations the audit found (0 when clean)
  bool reused = false;         ///< stream came from the chunk store, not computed
};

class BatchCompressor {
 public:
  struct Options {
    unsigned threads = 0;                            ///< 0 = hardware concurrency
    std::size_t max_inflight_bytes = 256u << 20;     ///< chunk-admission budget
    std::size_t queue_capacity = 4096;               ///< pool's bounded queue
    /// Re-verify every successful job after assembly: decompress the stream
    /// and check each value against the job's bound with the same
    /// obs::ErrorBoundAuditor the audit sweep uses. Costs a decompress pass
    /// per job; violations land in JobResult::audit_violations and
    /// SvcStats::audit_violations, never thrown.
    bool audit = false;
    /// Optional PFPS chunk store (borrowed; must outlive the compressor).
    /// Jobs whose content key is already stored reuse the stored stream and
    /// skip planning/encoding entirely; newly computed streams are stored
    /// back after assembly.
    store::ChunkStore* store = nullptr;
  };

  BatchCompressor();  // default Options
  explicit BatchCompressor(const Options& opts);
  ~BatchCompressor();

  BatchCompressor(const BatchCompressor&) = delete;
  BatchCompressor& operator=(const BatchCompressor&) = delete;

  /// Compress every job; results are returned in job order. Per-job errors
  /// (invalid bounds) are captured in JobResult::failed/error, never thrown.
  std::vector<JobResult> run(const std::vector<Job>& jobs);

  /// Metrics of the most recent run().
  const SvcStats& stats() const { return stats_; }

  unsigned threads() const;

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::size_t max_inflight_bytes_;
  bool audit_ = false;
  store::ChunkStore* store_ = nullptr;
  SvcStats stats_;
};

}  // namespace repro::svc
