// Streaming (out-of-core) PFPL interface.
//
// Large simulations cannot always hold a whole snapshot in memory next to
// its compressed form. Because PFPL's chunks are fully independent
// (Section III-E), compression can proceed incrementally: append values,
// and every completed 16 KiB chunk is quantized, transformed, and appended
// to the output immediately. finish() writes the header and chunk table and
// returns a stream *byte-identical* to the one-shot pfpl::compress() — the
// decoder cannot tell them apart, and StreamDecoder can likewise hand back
// values chunk by chunk without materializing the full output.
//
// NOA needs the global value range before the first chunk can be quantized,
// so the streaming encoder requires it up front via Options::noa_range
// (e.g. known physical bounds); ABS and REL need nothing.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/format.hpp"

namespace repro::pfpl {

class StreamEncoderImpl;
class StreamDecoderImpl;

class StreamEncoder {
 public:
  struct Options {
    double eps = 1e-3;
    EbType eb = EbType::ABS;
    /// Required for NOA: the (max - min) of the full dataset.
    std::optional<double> noa_range;
  };

  StreamEncoder(DType dtype, const Options& opts);
  ~StreamEncoder();
  StreamEncoder(StreamEncoder&&) noexcept;
  StreamEncoder& operator=(StreamEncoder&&) noexcept;

  /// Append values (any granularity); full chunks are compressed eagerly.
  void append(std::span<const float> values);
  void append(std::span<const double> values);

  /// Values appended so far.
  u64 count() const;

  /// Compressed bytes buffered so far (grows as chunks complete).
  std::size_t compressed_size_so_far() const;

  /// Flush the trailing partial chunk and return the final stream.
  /// The encoder must not be used afterwards.
  Bytes finish();

 private:
  std::unique_ptr<StreamEncoderImpl> impl_;
};

class StreamDecoder {
 public:
  /// The stream is borrowed, not copied; it must outlive the decoder.
  explicit StreamDecoder(const Bytes& stream);
  ~StreamDecoder();
  StreamDecoder(StreamDecoder&&) noexcept;
  StreamDecoder& operator=(StreamDecoder&&) noexcept;

  const Header& header() const;

  /// Remaining values not yet read.
  u64 remaining() const;

  /// Decode up to out.size() values into `out`; returns the number written
  /// (0 at end of stream). Chunks are decoded lazily as needed.
  std::size_t read(std::span<float> out);
  std::size_t read(std::span<double> out);

 private:
  std::unique_ptr<StreamDecoderImpl> impl_;
};

}  // namespace repro::pfpl
