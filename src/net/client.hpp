// Blocking PFPN/1 client.
//
// One Client owns one connection (lazily opened, re-opened on demand) and
// issues synchronous request/response round trips. Two failure families:
//
//   * RemoteError   — the server answered with a typed error frame (bad
//                     params, CRC mismatch, draining, ...). Never retried:
//                     the server is reachable and said no.
//   * NetError      — transport trouble (connect/send/recv failure, timeout,
//                     peer closed). Because every PFPN request is a pure
//                     function of its payload, the client reconnects and
//                     retries up to Options::max_attempts total attempts,
//                     sleeping an exponentially growing, jittered backoff
//                     between them (defaults keep the historical behavior:
//                     one immediate retry).
//
// Thread safety: a Client is a single connection with request/response
// framing — use one Client per thread (the load generator does exactly
// that), or add external locking.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace repro::net {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    u16 port = 0;
    int connect_timeout_ms = 5000;
    int request_timeout_ms = 120000;  ///< per send/recv wait, not per byte
    bool retry = true;                ///< false = exactly one attempt, ever
    /// Total attempts per request (first try included) while `retry` is
    /// true. The default matches the old hard-coded retry-once.
    unsigned max_attempts = 2;
    /// Backoff before retry k (1-based): min(backoff_base_ms << (k-1),
    /// backoff_max_ms), scaled by a uniform jitter in [0.5, 1.5) so a fleet
    /// of clients does not reconnect in lockstep. 0 = immediate (the old
    /// behavior).
    int backoff_base_ms = 0;
    int backoff_max_ms = 2000;
    std::size_t max_response_payload = 1u << 30;
  };

  explicit Client(Options opts);
  ~Client();

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  /// Compress `n` raw bytes of `dtype` scalars under (eb, eps); returns the
  /// PFPL stream — byte-identical to local pfpl::compress with the server's
  /// executor.
  Bytes compress(const void* raw, std::size_t n, DType dtype, EbType eb, double eps);

  /// Decompress a PFPL stream; returns raw scalar bytes.
  std::vector<u8> decompress(const Bytes& stream);

  /// Server stats JSON (the STATS op payload).
  std::string stats();

  /// Server metrics (the METRICS op): the pfpl-metrics/1 JSON document, or
  /// Prometheus text exposition format when `prom` is true.
  std::string metrics(bool prom = false);
  /// METRICS with an explicit format selector: "json", "prom", or "history"
  /// (the flight-recorder ring as a pfpl-flight/1 document).
  std::string metrics_fmt(const std::string& fmt);

  /// Round-trip an empty PING (connectivity + liveness check).
  void ping();

  /// Fetch the server's shard map (SHARDMAP op), optionally offering `mine`
  /// — a serialized map the server adopts when it carries a higher epoch of
  /// the same cluster. Returns the server's current serialized map (PFSM).
  Bytes shardmap_fetch(const Bytes& mine = Bytes());

  /// The HEALTH op: the node's liveness + load snapshot as JSON.
  std::string health();

  /// Open a temporal frame session (STREAM_OPEN): the server builds a
  /// FrameEncoder with (dtype, eb, eps, dims, keyframe_interval) and its own
  /// executor. Returns the server-assigned session id.
  u64 stream_open(DType dtype, EbType eb, double eps, const std::array<u32, 3>& dims,
                  u32 keyframe_interval);

  /// Push frame `frame_index` (raw scalars, exactly the session's frame
  /// byte size) to session `sid` (STREAM_FRAME). Returns the encoded PFPV
  /// frame record — append it to a temporal::StreamWriter. Frames must be
  /// pushed in order; RemoteError(BadSession) means the session is gone
  /// (idle-evicted or the server restarted): open a new session and resume —
  /// the next frame will be a keyframe.
  Bytes stream_frame(u64 sid, u64 frame_index, const void* raw, std::size_t n);

  /// Close session `sid` (STREAM_CLOSE). Idempotent on the server.
  void stream_close(u64 sid);

  /// Ask the server to drain and exit. The OK response is sent before the
  /// server stops, so this returning means the drain has begun.
  void shutdown_server();

  /// Requests completed over this client's lifetime (including retries).
  u64 requests() const { return requests_; }
  /// Wire attempts made (each retry counts; RemoteError answers count once).
  u64 attempts() const { return attempts_; }
  /// Reconnects performed after the initial connect.
  u64 reconnects() const { return reconnects_; }
  /// The request_id the most recent round trip was sent with (0 before the
  /// first request). Matches the id in RemoteError/NetError text and in the
  /// server's slow-request log and trace spans.
  u64 last_request_id() const { return last_id_; }

 private:
  void ensure_connected();
  u64 fresh_id();
  Frame roundtrip(const FrameHeader& h, const void* payload, std::size_t n);
  Frame roundtrip_once(const FrameHeader& h, const void* payload, std::size_t n);

  Options opts_;
  Socket sock_;
  u64 next_id_ = 0;  ///< 0 = unseeded; fresh_id() seeds per client instance
  u64 last_id_ = 0;
  u64 requests_ = 0;
  u64 attempts_ = 0;
  u64 reconnects_ = 0;
  bool ever_connected_ = false;
};

}  // namespace repro::net
