// Section V-F analogue: per-stage micro-benchmarks (google-benchmark), plus
// a harness-mode kernel sweep for the regression baseline.
//
// The paper profiles the CUDA kernels and finds PFPL compute-bound with the
// quantizer doing only a few FP operations. These micro-benchmarks measure
// each pipeline stage and the fused end-to-end paths on this host, giving
// the per-stage cost breakdown behind the Figure 6/7 throughput numbers.
//
// Two modes share the binary:
//
//   default              google-benchmark micro-benchmarks (BM_* below)
//   --kernel-sweep, or any of --baseline / --update-baseline / --json /
//   --gate               harness mode: run the full encode+decode path with
//                        kernel attribution enabled and emit one bench::Row
//                        per pipeline kernel ("Kernel/<name>@<eps>/..."), so
//                        per-kernel MB/s rides BENCH_baseline.json and the
//                        perf-smoke gate alongside the end-to-end figures.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/zerobyte.hpp"
#include "core/pfpl.hpp"
#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "data/rng.hpp"
#include "harness.hpp"
#include "obs/control.hpp"
#include "obs/kernels.hpp"
#include "obs/metrics.hpp"

using namespace repro;

namespace {

std::vector<float> smooth_input(std::size_t n) {
  data::Rng rng(7);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(std::sin(acc) + acc * 0.1);
  }
  return v;
}

std::vector<u32> quantized_words(std::size_t n) {
  auto v = smooth_input(n);
  pfpl::AbsQuantizer<float> q(1e-3);
  std::vector<u32> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = q.encode(v[i]);
  return w;
}

constexpr std::size_t kN = 1 << 20;  // 4 MB of f32

void BM_QuantizeAbs(benchmark::State& state) {
  auto v = smooth_input(kN);
  pfpl::AbsQuantizer<float> q(1e-3);
  std::vector<u32> w(kN);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kN; ++i) w[i] = q.encode(v[i]);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_QuantizeAbs);

void BM_QuantizeRel(benchmark::State& state) {
  auto v = smooth_input(kN);
  for (auto& x : v) x += 2.0f;
  pfpl::RelQuantizer<float> q(1e-3);
  std::vector<u32> w(kN);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kN; ++i) w[i] = q.encode(v[i]);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_QuantizeRel);

void BM_DeltaNegabinary(benchmark::State& state) {
  auto w = quantized_words(kN);
  std::vector<u32> buf(kN);
  for (auto _ : state) {
    buf = w;
    bits::delta_negabinary_encode(buf.data(), kN);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_DeltaNegabinary);

void BM_BitShuffle(benchmark::State& state) {
  auto w = quantized_words(kN);
  for (auto _ : state) {
    bits::bitshuffle(w.data(), kN);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_BitShuffle);

void BM_ZeroByteEncode(benchmark::State& state) {
  auto w = quantized_words(kN);
  bits::delta_negabinary_encode(w.data(), kN);
  bits::bitshuffle(w.data(), kN);
  for (auto _ : state) {
    std::vector<u8> out;
    out.reserve(kN * 4);
    bits::zerobyte_encode(reinterpret_cast<const u8*>(w.data()), kN * 4, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_ZeroByteEncode);

void BM_ChunkPipeline(benchmark::State& state) {
  auto w = quantized_words(kN);
  constexpr std::size_t cw = pfpl::chunk_words<u32>();
  for (auto _ : state) {
    std::vector<u8> out;
    out.reserve(kN * 4);
    for (std::size_t beg = 0; beg < kN; beg += cw)
      pfpl::chunk_encode(w.data() + beg, std::min(cw, kN - beg), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_ChunkPipeline);

void BM_PfplCompressSerial(benchmark::State& state) {
  auto v = smooth_input(kN);
  Field f(v.data(), v.size());
  for (auto _ : state) {
    Bytes c = pfpl::compress(f, {1e-3, EbType::ABS, pfpl::Executor::Serial});
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplCompressSerial);

void BM_PfplCompressOmp(benchmark::State& state) {
  auto v = smooth_input(kN);
  Field f(v.data(), v.size());
  for (auto _ : state) {
    Bytes c = pfpl::compress(f, {1e-3, EbType::ABS, pfpl::Executor::OpenMP});
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplCompressOmp);

void BM_PfplDecompressSerial(benchmark::State& state) {
  auto v = smooth_input(kN);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  for (auto _ : state) {
    auto raw = pfpl::decompress(c);
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplDecompressSerial);

/// Harness mode: run the end-to-end encode+decode path `runs` times with the
/// metrics registry reset per rep, and convert each rep's kernel attribution
/// (obs::kernel_stats) into per-kernel MB/s samples. Encode kernels report
/// under comp_MBps, decode kernels under decomp_MBps; ratio/PSNR/violations
/// are structurally unmeasured for a kernel row and are skipped.
int kernel_sweep_main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, bench::SweepConfig{});
  obs::set_enabled(true);  // kernel timers are obs-gated
  const int runs = std::max(3, cfg.runs);
  const double eps = 1e-3;
  const std::size_t n = std::max<std::size_t>(cfg.target_values, 1 << 16);

  auto v = smooth_input(n);
  Field field(v.data(), v.size());

  // samples[kernel] = one MB/s sample per rep.
  std::vector<std::vector<double>> samples(obs::kKernelCount);
  for (int rep = 0; rep < runs; ++rep) {
    obs::MetricsRegistry::global().reset();
    Bytes c = pfpl::compress(field, {eps, EbType::ABS, pfpl::Executor::Serial});
    auto raw = pfpl::decompress(c);
    benchmark::DoNotOptimize(raw.data());
    const std::vector<obs::KernelStat> stats = obs::kernel_stats();
    for (std::size_t k = 0; k < stats.size() && k < samples.size(); ++k)
      if (stats[k].calls > 0 && stats[k].mbps > 0) samples[k].push_back(stats[k].mbps);
  }

  std::vector<bench::Row> rows;
  const std::vector<obs::KernelStat> order = obs::kernel_stats();
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (samples[k].empty()) continue;
    std::vector<double> s = samples[k];
    std::sort(s.begin(), s.end());
    const double med = s[s.size() / 2];
    bench::Row row;
    row.compressor = order[k].name;
    row.eb = eps;
    row.has_ratio = row.has_psnr = row.has_violations = false;
    if (order[k].encode) {
      row.comp_mbps = med;
      row.comp_run_mbps = samples[k];
      row.has_decomp = false;
    } else {
      row.decomp_mbps = med;
      row.decomp_run_mbps = samples[k];
      row.has_comp = false;
    }
    rows.push_back(row);
  }
  bench::print_rows("Kernel", rows);
  std::fprintf(stderr, "%s", obs::kernel_table_text().c_str());
  return bench::finish();
}

}  // namespace

int main(int argc, char** argv) {
  // Harness flags switch the binary into the kernel sweep; everything else
  // goes to google-benchmark untouched.
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--kernel-sweep") || !std::strcmp(argv[i], "--baseline") ||
        !std::strcmp(argv[i], "--update-baseline") || !std::strcmp(argv[i], "--json") ||
        !std::strcmp(argv[i], "--gate"))
      return kernel_sweep_main(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
