// ErrorBoundAuditor: the clean sweep is clean, a corrupted decode is caught
// with a reproducible drill-down, and the BatchCompressor audit hook re-uses
// the same verifier.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "core/chunked.hpp"
#include "core/pfpl.hpp"
#include "data/synthetic.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "svc/batch.hpp"

using namespace repro;
using namespace repro::obs;

namespace {

/// Small single-suite config: one f32 suite, one bound, all three eb modes.
AuditConfig small_config() {
  AuditConfig cfg;
  cfg.target_values = 1 << 12;
  cfg.max_files = 1;
  cfg.bounds = {1e-2};
  cfg.dtypes = {DType::F32};
  cfg.suites = {"CESM-ATM"};
  return cfg;
}

}  // namespace

TEST(Audit, CleanSweepHasZeroViolations) {
  obs::set_enabled(true);
  MetricsRegistry& reg = MetricsRegistry::global();
  const u64 cases_before = reg.counter("audit.cases").value();
  const u64 values_before = reg.counter("audit.values").value();

  AuditConfig cfg = small_config();
  cfg.dtypes = {DType::F32, DType::F64};
  cfg.suites = {"CESM-ATM", "Brown Samples"};  // one f32 + one f64 suite
  AuditResult res = ErrorBoundAuditor(cfg).run();

  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.total_violations, 0u);
  EXPECT_EQ(res.cases.size(), 6u);  // 2 suites x 1 file x 3 ebs x 1 bound
  EXPECT_GT(res.total_values, 0u);
  for (const AuditCase& c : res.cases) {
    EXPECT_EQ(c.violations, 0u) << c.suite << "/" << to_string(c.eb);
    EXPECT_FALSE(c.has_first);
    EXPECT_LE(c.max_err, c.allowed) << c.suite << "/" << to_string(c.eb);
    EXPECT_GT(c.ratio, 1.0);
    EXPECT_TRUE(std::isfinite(c.psnr_db));  // the PSNR-finiteness contract
  }
  // The sweep published into the registry.
  EXPECT_EQ(reg.counter("audit.cases").value() - cases_before, 6u);
  EXPECT_EQ(reg.counter("audit.values").value() - values_before, res.total_values);
  EXPECT_NE(res.text().find("OK (bound holds everywhere)"), std::string::npos);
}

TEST(Audit, CorruptedDecodeIsCaughtWithDrillDown) {
  // Corrupt one specific reconstructed value in chunk 1 of every ABS case;
  // the auditor must name that exact chunk and index.
  constexpr std::size_t kIndex = 5000;  // f32 chunking: 4096/chunk -> chunk 1
  AuditConfig cfg = small_config();
  cfg.ebs = {EbType::ABS};
  ErrorBoundAuditor auditor(cfg);
  auditor.set_corruptor([](std::vector<u8>& raw, const AuditCase& about) {
    ASSERT_EQ(about.dtype, DType::F32);
    ASSERT_GT(raw.size(), (kIndex + 1) * sizeof(float));
    const float bad = 1e30f;
    std::memcpy(raw.data() + kIndex * sizeof(float), &bad, sizeof(float));
  });
  AuditResult res = auditor.run();

  EXPECT_FALSE(res.ok());
  ASSERT_EQ(res.cases.size(), 1u);
  const AuditCase& c = res.cases[0];
  EXPECT_EQ(c.violations, 1u);
  ASSERT_TRUE(c.has_first);
  EXPECT_EQ(c.first.suite, "CESM-ATM");
  EXPECT_EQ(c.first.seed, cfg.seed);
  EXPECT_EQ(c.first.chunk, kIndex / pfpl::chunk_values(DType::F32));
  EXPECT_EQ(c.first.index, kIndex);
  EXPECT_EQ(c.first.reconstructed, static_cast<double>(1e30f));
  EXPECT_GT(c.first.error, c.first.allowed);
  // The report names everything needed to reproduce.
  std::string text = res.text();
  EXPECT_NE(text.find("FIRST VIOLATION"), std::string::npos);
  EXPECT_NE(text.find("suite=CESM-ATM"), std::string::npos);
  EXPECT_NE(text.find("chunk=1"), std::string::npos);
  EXPECT_NE(text.find("index=5000"), std::string::npos);
  EXPECT_NE(text.find("BOUND VIOLATED"), std::string::npos);
}

TEST(Audit, NanCorruptionStaysJsonSafe) {
  // A NaN where the original is finite is a structural mismatch: infinite
  // measured error, but the JSON drill-down must still parse (inf is capped).
  AuditConfig cfg = small_config();
  cfg.ebs = {EbType::REL};
  ErrorBoundAuditor auditor(cfg);
  auditor.set_corruptor([](std::vector<u8>& raw, const AuditCase&) {
    const float bad = std::numeric_limits<float>::quiet_NaN();
    std::memcpy(raw.data(), &bad, sizeof(float));
  });
  AuditResult res = auditor.run();

  ASSERT_FALSE(res.ok());
  ASSERT_TRUE(res.cases[0].has_first);
  EXPECT_EQ(res.cases[0].first.index, 0u);
  EXPECT_TRUE(std::isinf(res.cases[0].first.error));

  JsonValue v = parse_json(res.json());
  EXPECT_FALSE(v.at("cases").arr[0].at("first_violation").is_null());
  EXPECT_TRUE(std::isfinite(v.at("cases").arr[0].at("max_err").num));
  EXPECT_EQ(v.at("ok").b, false);
}

TEST(Audit, VerifyFieldFlagsTruncatedReconstruction) {
  // Missing tail values are read as 0 — for an ABS bound around non-zero data
  // that must count as violations, not silently pass.
  std::vector<float> vals(10000, 5.0f);
  Field field(vals.data(), vals.size());
  std::vector<u8> full(reinterpret_cast<const u8*>(vals.data()),
                       reinterpret_cast<const u8*>(vals.data()) + vals.size() * 4);
  AuditCase clean = ErrorBoundAuditor::verify_field(field, full, EbType::ABS, 1e-3,
                                                    "unit", "f", 1, vals.size());
  EXPECT_EQ(clean.violations, 0u);
  EXPECT_EQ(clean.values, vals.size());

  std::vector<u8> truncated(full.begin(), full.begin() + 9000 * 4);
  AuditCase cut = ErrorBoundAuditor::verify_field(field, truncated, EbType::ABS, 1e-3,
                                                  "unit", "f", 1, vals.size());
  EXPECT_EQ(cut.violations, 1000u);
  ASSERT_TRUE(cut.has_first);
  EXPECT_EQ(cut.first.index, 9000u);
}

TEST(Audit, BatchCompressorAuditHook) {
  // The service path runs the same verifier when Options::audit is set.
  data::Suite suite = data::generate(data::paper_suites()[0], 1 << 12, 2);
  std::vector<svc::Job> jobs;
  for (const auto& f : suite.files)
    jobs.push_back({f.name, f.field(), pfpl::Params{1e-3, EbType::ABS}});

  svc::BatchCompressor batch({.threads = 2, .audit = true});
  std::vector<svc::JobResult> results = batch.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (const svc::JobResult& r : results) {
    EXPECT_FALSE(r.failed);
    EXPECT_TRUE(r.audited);
    EXPECT_EQ(r.audit_violations, 0u) << r.name;
  }
  EXPECT_EQ(batch.stats().jobs_audited, jobs.size());
  EXPECT_EQ(batch.stats().audit_violations, 0u);

  // Without the option nothing is audited (and no decompress cost is paid).
  svc::BatchCompressor plain({.threads = 2});
  for (const svc::JobResult& r : plain.run(jobs)) {
    EXPECT_FALSE(r.audited);
  }
  EXPECT_EQ(plain.stats().jobs_audited, 0u);
}
