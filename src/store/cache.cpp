#include "store/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace repro::store {
namespace {

/// store.cache.* metric handles, resolved once (obs/metrics.hpp pattern).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Counter& oversize_rejects;
  obs::Gauge& bytes;
  obs::Gauge& entries;
  static CacheMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static CacheMetrics m{r.counter("store.cache.hits"),
                          r.counter("store.cache.misses"),
                          r.counter("store.cache.insertions"),
                          r.counter("store.cache.evictions"),
                          r.counter("store.cache.oversize_rejects"),
                          r.gauge("store.cache.bytes"),
                          r.gauge("store.cache.entries")};
    return m;
  }
};

}  // namespace

ResultCache::ResultCache(const Options& opts)
    : byte_budget_(std::max<std::size_t>(1, opts.byte_budget)) {
  const unsigned n = std::max(1u, opts.shards);
  shard_budget_ = std::max<std::size_t>(1, byte_budget_ / n);
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool ResultCache::get(const common::Hash128& key, Bytes& out) {
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch: move to front
      out = it->second->value;
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::get().hits.add(1);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().misses.add(1);
  return false;
}

void ResultCache::put(const common::Hash128& key, const Bytes& value) {
  CacheMetrics& m = CacheMetrics::get();
  if (value.size() > shard_budget_) {
    oversize_.fetch_add(1, std::memory_order_relaxed);
    m.oversize_rejects.add(1);
    return;
  }
  Shard& s = shard_of(key);
  u64 evicted = 0;
  long long dbytes = 0, dentries = 0;
  {
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Same content hash => same value; just refresh recency.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    while (!s.lru.empty() && s.bytes + value.size() > shard_budget_) {
      Entry& victim = s.lru.back();
      s.bytes -= victim.value.size();
      dbytes -= static_cast<long long>(victim.value.size());
      s.index.erase(victim.key);
      s.lru.pop_back();
      --dentries;
      ++evicted;
    }
    s.lru.push_front(Entry{key, value});
    s.index.emplace(key, s.lru.begin());
    s.bytes += value.size();
    dbytes += static_cast<long long>(value.size());
    ++dentries;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  m.insertions.add(1);
  if (evicted) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    m.evictions.add(evicted);
  }
  bytes_.fetch_add(static_cast<u64>(dbytes), std::memory_order_relaxed);
  entries_.fetch_add(static_cast<u64>(dentries), std::memory_order_relaxed);
  m.bytes.add(dbytes);
  m.entries.add(dentries);
}

bool ResultCache::contains(const common::Hash128& key) const {
  const Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lk(s.m);
  return s.index.find(key) != s.index.end();
}

void ResultCache::clear() {
  long long dbytes = 0, dentries = 0;
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->m);
    dbytes -= static_cast<long long>(sp->bytes);
    dentries -= static_cast<long long>(sp->lru.size());
    sp->lru.clear();
    sp->index.clear();
    sp->bytes = 0;
  }
  bytes_.fetch_add(static_cast<u64>(dbytes), std::memory_order_relaxed);
  entries_.fetch_add(static_cast<u64>(dentries), std::memory_order_relaxed);
  CacheMetrics& m = CacheMetrics::get();
  m.bytes.add(dbytes);
  m.entries.add(dentries);
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.oversize_rejects = oversize_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  out.entries = entries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace repro::store
