// Tests for the sharded-pfpld cluster layer (src/cluster): consistent-hash
// ring properties (distribution, minimal remap on membership change,
// deterministic routing across serialization), PFSM wire robustness, the
// SHARDMAP/HEALTH verbs, and ClusterClient routing — byte-identity against
// the local compressor, replica failover on node stop, and stale-map
// recovery via WrongShard + map refresh.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/shard_map.hpp"
#include "common/hash.hpp"
#include "core/pfpl.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/json.hpp"
#include "store/store.hpp"

using namespace repro;

namespace {

std::vector<cluster::NodeInfo> make_nodes(unsigned n, u16 base_port = 19000) {
  std::vector<cluster::NodeInfo> nodes;
  for (unsigned i = 0; i < n; ++i)
    nodes.push_back({"n" + std::to_string(i), "127.0.0.1",
                     static_cast<u16>(base_port + i)});
  return nodes;
}

common::Hash128 key_of(unsigned i) { return common::hash128(&i, sizeof i); }

std::vector<float> make_f32(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(std::sin(i * 0.01 + seed) * 50.0 + seed);
  return v;
}

/// An in-process cluster of N pfpld nodes sharing one shard map.
struct TestCluster {
  explicit TestCluster(unsigned n, u16 replicas = 2) {
    std::vector<cluster::NodeInfo> nodes;
    for (unsigned i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<net::Server>(net::Server::Options{}));
      nodes.push_back({"n" + std::to_string(i), "127.0.0.1",
                       servers.back()->port()});
    }
    map = cluster::ShardMap("test", std::move(nodes),
                            cluster::ShardMap::kDefaultVnodes, replicas);
    for (unsigned i = 0; i < n; ++i) {
      servers[i]->set_cluster(map, "n" + std::to_string(i));
      threads.emplace_back([srv = servers[i].get()] { srv->run(); });
    }
  }
  ~TestCluster() {
    for (auto& s : servers) s->request_stop();
    for (auto& t : threads)
      if (t.joinable()) t.join();
  }
  void stop(unsigned i) {
    servers[i]->request_stop();
    threads[i].join();
  }
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<std::thread> threads;
  cluster::ShardMap map;
};

// ---------------------------------------------------------------------------
// Ring properties

TEST(ShardMap, DistributionWithin15PercentOfUniform) {
  // 5 nodes x 128 vnodes: every node's share of 50k uniformly-hashed keys
  // must land within ±15% of 1/N. Fully deterministic (fixed ids, fixed
  // hash), so this pins the ring construction, not luck.
  const unsigned kNodes = 5, kKeys = 50000;
  cluster::ShardMap m("t", make_nodes(kNodes), 128, 2);
  std::map<u32, u64> count;
  for (unsigned i = 0; i < kKeys; ++i) count[m.primary(key_of(i))]++;
  EXPECT_EQ(count.size(), kNodes) << "some node owns no keys at all";
  for (const auto& [node, c] : count) {
    const double share = static_cast<double>(c) / kKeys;
    EXPECT_NEAR(share * kNodes, 1.0, 0.15)
        << "node " << node << " share " << share;
  }
}

TEST(ShardMap, JoinMovesAtMostTwoOverNKeys) {
  const unsigned kKeys = 20000;
  cluster::ShardMap before("t", make_nodes(5), 128, 2);
  cluster::ShardMap after = before.with_node_added({"n5", "127.0.0.1", 19005});
  unsigned moved = 0;
  for (unsigned i = 0; i < kKeys; ++i) {
    const common::Hash128 k = key_of(i);
    const std::string& p0 = before.nodes()[before.primary(k)].id;
    const std::string& p1 = after.nodes()[after.primary(k)].id;
    if (p0 != p1) {
      ++moved;
      // Consistent hashing only ever moves keys TO the joining node.
      EXPECT_EQ(p1, "n5");
    }
  }
  // Ideal is 1/(N+1) ≈ 16.7%; 2/N = 40% is the generous stability bound the
  // paper-level guarantee cares about (vs ~100% for modulo hashing).
  EXPECT_LE(static_cast<double>(moved) / kKeys,
            2.0 / static_cast<double>(before.size()));
  EXPECT_GT(moved, 0u) << "the new node took no keyspace at all";
}

TEST(ShardMap, LeaveMovesOnlyTheLeaversKeys) {
  const unsigned kKeys = 20000;
  cluster::ShardMap before("t", make_nodes(5), 128, 2);
  cluster::ShardMap after = before.with_node_removed("n2");
  unsigned moved = 0;
  for (unsigned i = 0; i < kKeys; ++i) {
    const common::Hash128 k = key_of(i);
    const std::string& p0 = before.nodes()[before.primary(k)].id;
    const std::string& p1 = after.nodes()[after.primary(k)].id;
    if (p0 != p1) {
      ++moved;
      // Only keys the leaver owned may move; everyone else keeps theirs.
      EXPECT_EQ(p0, "n2");
    }
  }
  EXPECT_LE(static_cast<double>(moved) / kKeys,
            2.0 / static_cast<double>(before.size()));
  EXPECT_GT(moved, 0u);
}

TEST(ShardMap, ReplicaListIsDistinctAndPrimaryFirst) {
  cluster::ShardMap m("t", make_nodes(4), 64, 3);
  for (unsigned i = 0; i < 500; ++i) {
    const common::Hash128 k = key_of(i);
    const std::vector<u32> r = m.route(k);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0], m.primary(k));
    std::set<u32> distinct(r.begin(), r.end());
    EXPECT_EQ(distinct.size(), r.size());
    for (u32 idx : r) EXPECT_TRUE(m.owns(k, static_cast<int>(idx)));
    EXPECT_FALSE(m.owns(k, -1));
  }
}

TEST(ShardMap, ReplicasClampedToNodeCount) {
  cluster::ShardMap m("t", make_nodes(2), 64, 5);
  EXPECT_EQ(m.route(key_of(1)).size(), 2u);
}

TEST(ShardMap, MembershipChangeBumpsEpochAndKeepsConfig) {
  cluster::ShardMap m("t", make_nodes(3), 64, 2, /*epoch=*/7);
  cluster::ShardMap grown = m.with_node_added({"n9", "h", 1});
  EXPECT_EQ(grown.epoch(), 8u);
  EXPECT_EQ(grown.cluster_id(), "t");
  EXPECT_EQ(grown.vnodes(), 64u);
  EXPECT_EQ(grown.replicas(), 2u);
  EXPECT_EQ(grown.size(), 4u);
  cluster::ShardMap shrunk = grown.with_node_removed("n9");
  EXPECT_EQ(shrunk.epoch(), 9u);
  EXPECT_EQ(shrunk.size(), 3u);
  EXPECT_THROW(m.with_node_added({"n0", "h", 1}), CompressionError);
  EXPECT_THROW(m.with_node_removed("nope"), CompressionError);
}

TEST(ShardMap, ConstructorRejectsBadConfigs) {
  EXPECT_THROW(cluster::ShardMap("t", {}, 64, 2), CompressionError);
  EXPECT_THROW(cluster::ShardMap("t", {{"", "h", 1}}, 64, 2), CompressionError);
  EXPECT_THROW(
      cluster::ShardMap("t", {{"a", "h", 1}, {"a", "h", 2}}, 64, 2),
      CompressionError);
  EXPECT_THROW(cluster::ShardMap("t", make_nodes(2), 0, 2), CompressionError);
  EXPECT_THROW(cluster::ShardMap("t", make_nodes(2), 64, 0), CompressionError);
  EXPECT_THROW(cluster::ShardMap().route(key_of(1)), CompressionError);
}

// ---------------------------------------------------------------------------
// PFSM serialization

TEST(ShardMap, SerializeParseRoundTripIsDeterministic) {
  cluster::ShardMap m("prod-cluster", make_nodes(4), 128, 3, /*epoch=*/42);
  const Bytes wire = m.serialize();
  const cluster::ShardMap back = cluster::ShardMap::parse(wire);
  EXPECT_EQ(back.cluster_id(), m.cluster_id());
  EXPECT_EQ(back.epoch(), m.epoch());
  EXPECT_EQ(back.vnodes(), m.vnodes());
  EXPECT_EQ(back.replicas(), m.replicas());
  ASSERT_EQ(back.size(), m.size());
  // Byte-identical reserialization: maps are content-addressable.
  EXPECT_EQ(back.serialize(), wire);
  // Identical routing decisions on both sides of the wire.
  for (unsigned i = 0; i < 2000; ++i)
    EXPECT_EQ(back.route(key_of(i)), m.route(key_of(i)));
}

TEST(ShardMap, ParseRejectsCorruption) {
  cluster::ShardMap m("t", make_nodes(3), 64, 2);
  const Bytes wire = m.serialize();
  // Any flipped byte breaks the CRC (or the magic/version up front).
  for (std::size_t at : {std::size_t(0), wire.size() / 2, wire.size() - 1}) {
    Bytes bad = wire;
    bad[at] ^= 0x5A;
    EXPECT_THROW(cluster::ShardMap::parse(bad), CompressionError) << "at " << at;
  }
  // Truncation at every length below the full frame must throw, not read
  // out of bounds.
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_THROW(cluster::ShardMap::parse(wire.data(), len), CompressionError);
  // Trailing garbage is rejected too (the CRC must be the last word).
  Bytes longer = wire;
  longer.push_back(0);
  EXPECT_THROW(cluster::ShardMap::parse(longer), CompressionError);
}

TEST(ShardMap, SaveLoadFileRoundTrip) {
  cluster::ShardMap m("t", make_nodes(3), 64, 2, 5);
  const std::string path = ::testing::TempDir() + "/test_cluster_map.pfsm";
  m.save_file(path);
  const cluster::ShardMap back = cluster::ShardMap::load_file(path);
  EXPECT_EQ(back.serialize(), m.serialize());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SHARDMAP / HEALTH verbs

TEST(ClusterVerbs, ShardMapFetchAndExchange) {
  TestCluster cl(2);
  net::Client c(
      {.host = "127.0.0.1", .port = cl.map.nodes()[0].port});
  // Plain fetch returns the node's current map.
  cluster::ShardMap fetched = cluster::ShardMap::parse(c.shardmap_fetch());
  EXPECT_EQ(fetched.serialize(), cl.map.serialize());
  // Offering a strictly-newer map of the same cluster is adopted...
  cluster::ShardMap newer =
      cl.map.with_node_added({"n9", "127.0.0.1", 1}).with_node_removed("n9");
  ASSERT_EQ(newer.epoch(), cl.map.epoch() + 2);
  cluster::ShardMap reply = cluster::ShardMap::parse(c.shardmap_fetch(newer.serialize()));
  EXPECT_EQ(reply.epoch(), newer.epoch());
  EXPECT_EQ(cl.servers[0]->shard_map().epoch(), newer.epoch());
  EXPECT_GE(cl.servers[0]->stats().map_adopted, 1u);
  // ...while a stale offer leaves the server on its (now newer) map.
  cluster::ShardMap reply2 =
      cluster::ShardMap::parse(c.shardmap_fetch(cl.map.serialize()));
  EXPECT_EQ(reply2.epoch(), newer.epoch());
  // A different cluster's map is refused outright.
  cluster::ShardMap alien("other", make_nodes(2), 64, 2, 99);
  EXPECT_THROW(c.shardmap_fetch(alien.serialize()), net::RemoteError);
  // Garbage payloads are BadParams, not a crash.
  EXPECT_THROW(c.shardmap_fetch(Bytes{1, 2, 3}), net::RemoteError);
}

TEST(ClusterVerbs, ShardMapRefusedOnStandaloneServer) {
  net::Server server{net::Server::Options{}};
  std::thread t([&] { server.run(); });
  net::Client c({.host = "127.0.0.1", .port = server.port()});
  EXPECT_THROW(c.shardmap_fetch(), net::RemoteError);
  server.request_stop();
  t.join();
}

TEST(ClusterVerbs, HealthReportsNodeIdentity) {
  TestCluster cl(2);
  net::Client c({.host = "127.0.0.1", .port = cl.map.nodes()[1].port});
  const obs::JsonValue h = obs::parse_json(c.health());
  EXPECT_EQ(h.at("node_id").str, "n1");
  EXPECT_EQ(h.at("cluster_id").str, "test");
  EXPECT_EQ(h.at("epoch").num, 1.0);
  EXPECT_EQ(h.at("draining").num, 0.0);
  EXPECT_GE(cl.servers[1]->stats().health_checks, 1u);
}

// ---------------------------------------------------------------------------
// ClusterClient routing

TEST(ClusterClient, RoutedRoundTripsAreByteIdentical) {
  TestCluster cl(3);
  cluster::ClusterClient cc({.map = cl.map});
  for (unsigned seed = 0; seed < 8; ++seed) {
    const std::vector<float> raw = make_f32(4096, seed);
    pfpl::Params p;
    p.eb = EbType::ABS;
    p.eps = 1e-3;
    const Bytes local = pfpl::compress(Field(raw.data(), raw.size()), p);
    const Bytes remote = cc.compress(raw.data(), raw.size() * sizeof(float),
                                     DType::F32, EbType::ABS, 1e-3);
    EXPECT_EQ(remote, local) << "seed " << seed;
    EXPECT_EQ(cc.decompress(remote), pfpl::decompress(local));
  }
  // 16 requests routed by content key: with 3 nodes it is overwhelmingly
  // likely (and deterministic for these fixed seeds) that more than one
  // node answered.
  EXPECT_GT(cc.stats().node_requests.size(), 1u);
  EXPECT_EQ(cc.stats().requests, 16u);
  EXPECT_EQ(cc.stats().failovers, 0u);
}

TEST(ClusterClient, FailsOverWhenANodeStops) {
  TestCluster cl(3);
  cluster::ClusterClient cc({.map = cl.map});
  // Stop one node, then push enough distinct keys that some primary-route
  // to it; every request must still succeed via its replica.
  cl.stop(0);
  unsigned hit_dead_primary = 0;
  for (unsigned seed = 0; seed < 12; ++seed) {
    const std::vector<float> raw = make_f32(2048, seed);
    const common::Hash128 key = store::compress_key(
        raw.data(), raw.size() * sizeof(float), DType::F32, EbType::ABS, 1e-3);
    if (cl.map.primary(key) == 0) ++hit_dead_primary;
    const Bytes remote = cc.compress(raw.data(), raw.size() * sizeof(float),
                                     DType::F32, EbType::ABS, 1e-3);
    pfpl::Params p;
    p.eb = EbType::ABS;
    p.eps = 1e-3;
    EXPECT_EQ(remote, pfpl::compress(Field(raw.data(), raw.size()), p));
  }
  ASSERT_GT(hit_dead_primary, 0u)
      << "no key routed to the dead node; widen the seed range";
  EXPECT_GT(cc.stats().failovers, 0u);
  EXPECT_EQ(cc.stats().node_requests.count("n0"), 0u);
}

TEST(ClusterClient, StaleMapRecoversViaWrongShardAndRefresh) {
  // Two nodes with replicas=1 so ownership is exclusive; the client starts
  // from a stale single-node map and must discover the second node through
  // a WrongShard refusal + SHARDMAP refresh.
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<cluster::NodeInfo> nodes;
  for (unsigned i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<net::Server>(net::Server::Options{}));
    nodes.push_back({"n" + std::to_string(i), "127.0.0.1", servers.back()->port()});
  }
  const cluster::ShardMap truth("test", nodes, 128, /*replicas=*/1, /*epoch=*/2);
  const cluster::ShardMap stale("test", {nodes[0]}, 128, 1, /*epoch=*/1);
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < 2; ++i) {
    servers[i]->set_cluster(truth, "n" + std::to_string(i));
    threads.emplace_back([srv = servers[i].get()] { srv->run(); });
  }

  cluster::ClusterClient cc({.map = stale});
  // Find payloads owned by each node under the truth map; the n1-owned one
  // forces the WrongShard path (the stale client can only see n0).
  unsigned n1_seed = 0, tries = 0;
  for (;; ++tries) {
    ASSERT_LT(tries, 64u);
    const std::vector<float> raw = make_f32(1024, tries);
    const common::Hash128 key = store::compress_key(
        raw.data(), raw.size() * sizeof(float), DType::F32, EbType::ABS, 1e-3);
    if (truth.nodes()[truth.primary(key)].id == "n1") {
      n1_seed = tries;
      break;
    }
  }
  const std::vector<float> raw = make_f32(1024, n1_seed);
  const Bytes remote = cc.compress(raw.data(), raw.size() * sizeof(float),
                                   DType::F32, EbType::ABS, 1e-3);
  pfpl::Params p;
  p.eb = EbType::ABS;
  p.eps = 1e-3;
  EXPECT_EQ(remote, pfpl::compress(Field(raw.data(), raw.size()), p));
  EXPECT_GE(cc.stats().wrong_shard, 1u);
  EXPECT_GE(cc.stats().map_refreshes, 1u);
  EXPECT_EQ(cc.map().epoch(), truth.epoch());
  EXPECT_EQ(cc.stats().node_requests.at("n1"), 1u);
  // The refusal came from n0 — the only node the stale client could reach.
  EXPECT_GE(servers[0]->stats().wrong_shard, 1u);

  for (auto& s : servers) s->request_stop();
  for (auto& t : threads) t.join();
}

TEST(ClusterClient, RefreshMapPollsEveryNode) {
  TestCluster cl(2);
  // Bump node 0 to a newer epoch behind the client's back.
  const cluster::ShardMap newer =
      cl.map.with_node_added({"nx", "127.0.0.1", 1}).with_node_removed("nx");
  cl.servers[0]->set_cluster(newer, "n0");
  cluster::ClusterClient cc({.map = cl.map});
  EXPECT_TRUE(cc.refresh_map());
  EXPECT_EQ(cc.map().epoch(), newer.epoch());
  EXPECT_FALSE(cc.refresh_map());  // already newest
}

TEST(ClusterClient, EmptyMapIsRejected) {
  EXPECT_THROW(cluster::ClusterClient({.map = cluster::ShardMap()}),
               CompressionError);
}

}  // namespace
