// BoundedQueue — the inter-stage channel of the ingest pipeline.
//
// MPMC, bounded by BOTH an item count and a byte budget: push() blocks while
// either bound is exceeded, which is the pipeline's backpressure — a fast
// reader can never buffer more than `max_bytes` of raw file data ahead of a
// slow encoder. One oversized item is admitted when the queue is empty
// (mirroring svc::ByteBudget), otherwise a file larger than the whole budget
// would deadlock the pipeline.
//
// Lifecycle: close() ends the stream — pushes are rejected, pops drain the
// remaining items then return false. cancel() is the error path — pending
// items are dropped on the floor, blocked pushers and poppers wake
// immediately with false, so a failing pipeline unwinds without deadlock.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"

namespace repro::ingest {

template <typename T>
class BoundedQueue {
 public:
  /// `depth` (optional) is set to the live item count on every push/pop —
  /// the ingest.q_*_depth gauges.
  BoundedQueue(std::size_t max_items, std::size_t max_bytes,
               obs::Gauge* depth = nullptr)
      : max_items_(std::max<std::size_t>(1, max_items)),
        max_bytes_(std::max<std::size_t>(1, max_bytes)),
        depth_(depth) {}

  /// Blocks until the item fits (or the queue empties for an oversized one).
  /// Returns false — dropping `item` — when the queue was closed or
  /// cancelled.
  bool push(T item, std::size_t bytes) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
      return closed_ || cancelled_ || q_.empty() ||
             (q_.size() < max_items_ && bytes_ + bytes <= max_bytes_);
    });
    if (closed_ || cancelled_) return false;
    q_.emplace_back(std::move(item), bytes);
    bytes_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_);
    peak_items_ = std::max(peak_items_, q_.size());
    if (depth_) depth_->set(static_cast<long long>(q_.size()));
    lk.unlock();
    cv_.notify_all();
    return true;
  }

  /// Blocks until an item is available. Returns false when cancelled, or
  /// when the queue is closed and fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return cancelled_ || closed_ || !q_.empty(); });
    if (cancelled_ || q_.empty()) return false;
    take_front_locked(out);
    lk.unlock();
    cv_.notify_all();
    return true;
  }

  /// Non-blocking pop; false when nothing is immediately available.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lk(m_);
    if (cancelled_ || q_.empty()) return false;
    take_front_locked(out);
    lk.unlock();
    cv_.notify_all();
    return true;
  }

  /// End of stream: no more pushes; pops drain what is queued.
  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Error path: drop everything, wake every blocked caller with false.
  void cancel() {
    {
      std::lock_guard<std::mutex> lk(m_);
      cancelled_ = true;
      q_.clear();
      bytes_ = 0;
      if (depth_) depth_->set(0);
    }
    cv_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lk(m_);
    return cancelled_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return q_.size();
  }
  /// High-water marks over the queue's lifetime (the backpressure proof the
  /// byte-budget test asserts on).
  std::size_t peak_bytes() const {
    std::lock_guard<std::mutex> lk(m_);
    return peak_bytes_;
  }
  std::size_t peak_items() const {
    std::lock_guard<std::mutex> lk(m_);
    return peak_items_;
  }
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  void take_front_locked(T& out) {
    out = std::move(q_.front().first);
    bytes_ -= std::min(bytes_, q_.front().second);
    q_.pop_front();
    if (depth_) depth_->set(static_cast<long long>(q_.size()));
  }

  std::size_t max_items_;
  std::size_t max_bytes_;
  obs::Gauge* depth_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::pair<T, std::size_t>> q_;
  std::size_t bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t peak_items_ = 0;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace repro::ingest
