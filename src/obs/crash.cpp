#include "obs/crash.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "common/types.hpp"
#include "obs/json.hpp"

namespace repro::obs {
namespace {

// Everything the handler touches lives in static storage and is published
// with release stores; the handler itself allocates nothing.
char g_path[512] = {0};
std::atomic<bool> g_installed{false};

// Double-buffered pre-rendered bodies. The strings are never destroyed and
// never shrink while active; ptr/len are published after the string is
// fully written, and flips only move forward, so the handler's
// (acquire-load index, load ptr/len, write) sequence always reads a body
// that was complete at some point.
std::string g_bodies[2];
std::atomic<const char*> g_ptr[2] = {nullptr, nullptr};
std::atomic<std::size_t> g_len[2] = {0, 0};
std::atomic<int> g_active{-1};
std::mutex g_render_m;  ///< serializes set_crash_body callers

/// Decimal-format `v` into `buf` (async-signal-safe snprintf substitute).
std::size_t u64_dec(char* buf, unsigned long long v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return;  // nothing recoverable inside a signal handler
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    default: return "SIG?";
  }
}

extern "C" void crash_signal_handler(int sig) {
  // open/write/close and signal/raise are all async-signal-safe.
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    const int a = g_active.load(std::memory_order_acquire);
    if (a >= 0) {
      write_all(fd, g_ptr[a].load(std::memory_order_relaxed),
                g_len[a].load(std::memory_order_relaxed));
    } else {
      static const char fallback[] = "{\"schema\":\"pfpl-crash/1\"";
      write_all(fd, fallback, sizeof(fallback) - 1);
    }
    char tail[96];
    std::size_t n = 0;
    const char* name = signal_name(sig);
    std::memcpy(tail + n, ",\"signal\":\"", 11); n += 11;
    const std::size_t name_len = std::strlen(name);
    std::memcpy(tail + n, name, name_len); n += name_len;
    std::memcpy(tail + n, "\",\"signo\":", 10); n += 10;
    n += u64_dec(tail + n, static_cast<unsigned long long>(sig));
    tail[n++] = '}';
    tail[n++] = '\n';
    write_all(fd, tail, n);
    ::close(fd);
  }
  // Restore the default disposition and re-raise so the process dies with
  // the original signal (CI and supervisors see the true wait status).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

std::string minimal_crash_body() {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "pfpl-crash/1");
  w.kv("pid", static_cast<unsigned long long>(::getpid()));
  w.key("build").begin_object();
  w.kv("compiler", __VERSION__);
  w.kv("cpp", static_cast<unsigned long long>(__cplusplus));
  w.end_object();
  w.end_object();
  std::string body = w.take();
  body.pop_back();  // the handler supplies the closing brace
  return body;
}

void set_crash_body(const std::string& body) {
  std::lock_guard<std::mutex> lock(g_render_m);
  const int cur = g_active.load(std::memory_order_relaxed);
  const int next = cur == 0 ? 1 : 0;
  g_bodies[next].assign(body);
  g_ptr[next].store(g_bodies[next].data(), std::memory_order_relaxed);
  g_len[next].store(g_bodies[next].size(), std::memory_order_relaxed);
  g_active.store(next, std::memory_order_release);
}

void install_crash_handler(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw CompressionError("crash-dir '" + dir + "': " + ec.message());
  std::snprintf(g_path, sizeof g_path, "%s/crash-%lld.json", dir.c_str(),
                static_cast<long long>(::getpid()));
  if (g_active.load(std::memory_order_acquire) < 0) set_crash_body(minimal_crash_body());

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS}) sigaction(sig, &sa, nullptr);
  g_installed.store(true, std::memory_order_release);
}

bool crash_handler_installed() { return g_installed.load(std::memory_order_acquire); }

std::string crash_report_path() {
  return g_installed.load(std::memory_order_acquire) ? std::string(g_path) : std::string();
}

}  // namespace repro::obs
