// Mini-LC pipeline search driver (paper Section III-D).
//
// "To find a good lossless compression algorithm for the output of our
// quantizers, we tested a large number of combinations of data
// transformations" — this module enumerates pipelines over the component
// library, verifies each round-trips, and ranks them by compression ratio
// and encode throughput on caller-provided sample chunks.
#pragma once

#include <span>
#include <vector>

#include "lc/stage.hpp"

namespace repro::lc {

struct SearchConfig {
  int word_bits = 32;        ///< 32 for f32 streams, 64 for f64
  int max_stages = 3;        ///< pipeline depth bound
  bool skip_repeats = true;  ///< prune immediately repeated stages
};

struct Candidate {
  Pipeline pipeline;
  std::string name;
  double ratio = 0;      ///< total input bytes / total encoded bytes
  double enc_mbps = 0;   ///< single-thread encode throughput
  bool roundtrip = false;
};

/// Enumerate all pipelines up to max_stages over the component library and
/// evaluate them on the sample chunks. Returns candidates sorted by ratio
/// (descending); candidates that fail to round-trip are excluded.
std::vector<Candidate> search(const std::vector<std::vector<u8>>& sample_chunks,
                              const SearchConfig& cfg);

/// Evaluate one specific pipeline on the sample chunks.
Candidate evaluate(const Pipeline& p, const std::vector<std::vector<u8>>& sample_chunks);

}  // namespace repro::lc
