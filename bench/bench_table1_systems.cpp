// Table I reproduction: the systems used for the experiments.
//
// The paper ran on two dedicated hosts (Threadripper 2950X + RTX 4090; Xeon
// 6226R + A100). Those are substituted by whatever host runs this harness
// (DESIGN.md §1): this binary prints the actual host configuration next to
// the paper's Table I so EXPERIMENTS.md can record the mapping. The GPU rows
// are reported as "simulated" — the CUDA algorithm runs in src/sim.
#include <omp.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

int main() {
  std::printf("# Table I: systems used for experiments\n");
  std::printf("property,paper_system1,paper_system2,this_host\n");

  std::string model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  for (std::string line; std::getline(cpuinfo, line);) {
    if (line.rfind("model name", 0) == 0) {
      model = line.substr(line.find(':') + 2);
      break;
    }
  }
  unsigned threads = std::thread::hardware_concurrency();
  std::printf("CPU,Threadripper 2950X,Xeon Gold 6226R,%s\n", model.c_str());
  std::printf("HW threads,32,64,%u\n", threads);
  std::printf("OMP max threads,32,64,%d\n", omp_get_max_threads());
  std::printf("GPU,RTX 4090,A100,simulated (src/sim functional CUDA model)\n");
  std::printf("Compiler,g++ 12.2.1,g++ 12.2.1,g++ %d.%d.%d\n", __GNUC__, __GNUC_MINOR__,
              __GNUC_PATCHLEVEL__);
  std::printf("FP flags,-O3 -march=native,-O3 -march=native,-O3 -ffp-contract=off\n");
  return 0;
}
