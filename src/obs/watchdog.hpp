// Watchdog — stall detection for long-running workers.
//
// A *slot* is one unit of execution that is supposed to make progress: a
// thread-pool worker executing a task, an ingest stage processing one item.
// The worker marks the start of each unit (StallScope) and the watchdog
// checker — driven by the FlightRecorder's sampler thread — flags any slot
// that has been busy on the *same* unit longer than the armed threshold.
// Each stalled unit is reported exactly once (the slot's generation counter
// is compared against the last reported generation), so a genuinely wedged
// worker produces one `stall` event, not one per check tick.
//
// Disabled discipline: until arm() is called the whole feature is a relaxed
// atomic load + branch per StallScope — no clock read, no stores. Arming is
// independent of obs::enabled() (like the EventLog): stall detection is a
// production-server feature that must work with span recording off.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::obs {

class Watchdog {
 public:
  static constexpr int kMaxSlots = 64;

  static Watchdog& global();

  /// Register a named slot (e.g. "svc.worker.3", "ingest.read"). Returns the
  /// slot id, or -1 when the table is full (StallScope treats -1 as inert).
  /// Slots are never unregistered; re-registering a name returns a new slot.
  int register_slot(const std::string& name);

  /// Arm with a threshold in milliseconds; 0 disarms. Takes effect for
  /// subsequent StallScopes and check() calls.
  void arm(u64 threshold_ms);
  bool armed() const { return threshold_ns_.load(std::memory_order_relaxed) != 0; }
  u64 threshold_ms() const {
    return threshold_ns_.load(std::memory_order_relaxed) / 1000000;
  }

  /// Mark the start / end of one unit of progress on `slot`. `detail` is an
  /// opaque id surfaced in stall reports (PFPN request id, ingest item
  /// index). Called via StallScope; no-ops when disarmed or slot < 0.
  void begin(int slot, u64 detail);
  void end(int slot);

  struct Stall {
    std::string slot;  ///< slot name
    u64 busy_ms = 0;   ///< time since the unit began
    u64 detail = 0;    ///< begin()'s opaque id
  };

  /// Scan every slot for units busy past the threshold that have not been
  /// reported yet. Each returned stall is also emitted as an EventLog
  /// `stall` event (warn level). Safe to call from any one checker thread.
  std::vector<Stall> check();

  /// Lifetime count of stalls detected by check().
  u64 stalls_detected() const { return stalls_.load(std::memory_order_relaxed); }

  /// Test hook: reset arming and slot table (not thread-safe vs live scopes).
  void reset_for_tests();

 private:
  Watchdog() = default;

  struct Slot {
    char name[48] = {0};
    std::atomic<u64> start_ns{0};    ///< 0 = idle
    std::atomic<u64> generation{0};  ///< bumped by begin()
    std::atomic<u64> reported{0};    ///< last generation flagged by check()
    std::atomic<u64> detail{0};
  };

  static u64 now_ns();

  Slot slots_[kMaxSlots];
  std::atomic<int> slot_count_{0};
  std::atomic<u64> threshold_ns_{0};
  std::atomic<u64> stalls_{0};
};

/// RAII progress mark around one unit of work. Construction when disarmed
/// (the production default) is one relaxed load + branch.
class StallScope {
 public:
  explicit StallScope(int slot, u64 detail = 0) {
    if (slot < 0) return;
    Watchdog& w = Watchdog::global();
    if (!w.armed()) return;
    slot_ = slot;
    w.begin(slot, detail);
  }
  ~StallScope() {
    if (slot_ >= 0) Watchdog::global().end(slot_);
  }
  StallScope(const StallScope&) = delete;
  StallScope& operator=(const StallScope&) = delete;

 private:
  int slot_ = -1;
};

}  // namespace repro::obs
