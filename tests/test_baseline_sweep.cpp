// Parameterized conformance sweep over every baseline: each (compressor,
// dtype, shape, bound) combination it claims to support must round-trip to
// the right size and, where the Table III profile promises a guarantee, meet
// the bound under the external verifier. This is the wide safety net behind
// the per-baseline behavioural tests.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.hpp"
#include "data/rng.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;
using namespace repro::baselines;

namespace {

struct Case {
  std::string compressor;
  DType dtype;
  std::array<std::size_t, 3> dims;
  double eps;
  EbType eb;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string s = c.compressor + "_" + to_string(c.dtype) + "_" + to_string(c.eb);
  s += "_e" + std::to_string(static_cast<int>(-std::log10(c.eps)));
  s += "_" + std::to_string(c.dims[0]) + "x" + std::to_string(c.dims[1]) + "x" +
       std::to_string(c.dims[2]);
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  std::vector<std::array<std::size_t, 3>> shapes{
      {1, 1, 5000},   // 1D
      {1, 64, 80},    // 2D
      {12, 20, 24},   // 3D
      {5, 7, 11},     // odd 3D (partial blocks everywhere)
  };
  for (const auto& comp : all_compressors()) {
    Features f = comp->features();
    for (DType dt : {DType::F32, DType::F64}) {
      if (dt == DType::F32 && !f.f32) continue;
      if (dt == DType::F64 && !f.f64) continue;
      for (const auto& dims : shapes) {
        bool is3d = dims[0] > 1 && dims[1] > 1 && dims[2] > 1;
        if (f.requires_3d && !is3d) continue;
        for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
          if (!f.supports(eb)) continue;
          for (double eps : {1e-2, 1e-4})
            cases.push_back({comp->name(), dt, dims, eps, eb});
        }
      }
    }
  }
  return cases;
}

template <typename T>
std::vector<T> make_field(std::array<std::size_t, 3> dims, u64 seed) {
  data::Rng rng(seed);
  std::size_t n = dims[0] * dims[1] * dims[2];
  std::vector<T> v(n);
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims[0]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[2]; ++x)
        v[i++] = static_cast<T>(2.0 * std::sin(0.11 * z + 0.07 * y + 0.03 * x) +
                                0.01 * rng.gaussian() + 3.0);
  return v;
}

class BaselineSweep : public ::testing::TestWithParam<Case> {};

}  // namespace

TEST_P(BaselineSweep, RoundTripAndBound) {
  const Case& c = GetParam();
  CompressorPtr comp = find_compressor(c.compressor);
  Features f = comp->features();
  if (c.dtype == DType::F32) {
    auto v = make_field<float>(c.dims, 77);
    Bytes s = comp->compress(Field(v.data(), c.dims), c.eps, c.eb);
    auto back = comp->decompress_as<float>(s);
    ASSERT_EQ(back.size(), v.size());
    std::size_t bad = metrics::count_violations(std::span<const float>(v),
                                                std::span<const float>(back), c.eps, c.eb);
    if (f.guarantees(c.eb)) {
      EXPECT_EQ(bad, 0u);
    } else {
      // '○' profile: best-effort — still sane on this benign field.
      EXPECT_LT(bad, v.size() / 2);
    }
  } else {
    auto v = make_field<double>(c.dims, 78);
    Bytes s = comp->compress(Field(v.data(), c.dims), c.eps, c.eb);
    auto back = comp->decompress_as<double>(s);
    ASSERT_EQ(back.size(), v.size());
    std::size_t bad = metrics::count_violations(std::span<const double>(v),
                                                std::span<const double>(back), c.eps, c.eb);
    if (f.guarantees(c.eb)) EXPECT_EQ(bad, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, BaselineSweep, ::testing::ValuesIn(make_cases()),
                         case_name);
