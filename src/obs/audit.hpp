// Continuous error-bound audit pipeline.
//
// The paper's headline guarantee — the requested point-wise bound holds for
// *every* value — is exactly the invariant a growing codebase silently
// regresses (Fallin & Burtscher, "Lessons Learned on the Path to
// Guaranteeing the Error Bound in Lossy Quantizers"). The ErrorBoundAuditor
// re-verifies it continuously: it sweeps the synthetic suites (src/data)
// across dtypes x error-bound modes x bounds, runs compress -> decompress,
// and re-checks every reconstructed value with the external judge's
// semantics (src/metrics), independent of the compressor's own bookkeeping.
//
// Everything is recorded twice:
//   * into the obs::MetricsRegistry (audit.* counters, per-chunk bound-
//     utilization / ratio / PSNR histograms) so CI trends it, and
//   * into an AuditResult with a drill-down of the *first offending value*
//     (suite, file, seed, chunk, index, original/reconstructed/allowed) so a
//     violation is immediately reproducible.
//
// The same per-field verifier backs the BatchCompressor's audit hook
// (svc::BatchCompressor::Options::audit), so the service path is audited by
// the same code as the sweep. Lives in its own library (repro_audit): unlike
// the rest of src/obs it depends on core/data/metrics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/pfpl.hpp"

namespace repro::obs {

struct AuditConfig {
  std::size_t target_values = 1 << 14;  ///< per generated file
  int max_files = 1;                    ///< per suite
  std::vector<double> bounds{1e-2, 1e-3};
  std::vector<DType> dtypes{DType::F32, DType::F64};
  std::vector<EbType> ebs{EbType::ABS, EbType::REL, EbType::NOA};
  std::vector<std::string> suites;      ///< suite-name filter; empty = all
  pfpl::Executor exec = pfpl::Executor::Serial;
  u64 seed = 0x5D12B1E5u;               ///< forwarded to data::generate

  /// The paper-scale protocol (`pfpl audit --full`): larger files, more of
  /// them, all four bounds.
  void scale_full() {
    target_values = 1 << 17;
    max_files = 2;
    bounds = {1e-1, 1e-2, 1e-3, 1e-4};
  }
};

/// Drill-down of the first bound violation in a case: everything needed to
/// reproduce it (suite + seed regenerate the input, chunk + index locate the
/// value, the value triple shows what went wrong).
struct AuditViolation {
  std::string suite;
  std::string file;
  u64 seed = 0;
  std::size_t chunk = 0;   ///< chunk index (core chunking: 4096 f32 / 2048 f64)
  std::size_t index = 0;   ///< value index within the field
  double original = 0.0;
  double reconstructed = 0.0;
  double error = 0.0;      ///< measured error (abs for ABS/NOA, relative for REL)
  double allowed = 0.0;    ///< the effective bound the value had to satisfy
};

/// One (suite, file, eb, eps) compress->decompress->verify cycle.
struct AuditCase {
  std::string suite;
  std::string file;
  DType dtype = DType::F32;
  EbType eb = EbType::ABS;
  double eps = 0.0;
  u64 seed = 0;

  std::size_t values = 0;
  std::size_t chunks = 0;
  u64 violations = 0;
  double max_err = 0.0;    ///< worst per-value error (same unit as `allowed`)
  double allowed = 0.0;    ///< effective bound (eps, or eps*range for NOA)
  double ratio = 0.0;
  double psnr_db = 0.0;    ///< finite by construction (see metrics::ErrorStats)

  bool has_first = false;
  AuditViolation first;    ///< valid when has_first
};

struct AuditResult {
  std::vector<AuditCase> cases;
  std::size_t total_values = 0;
  u64 total_violations = 0;

  bool ok() const { return total_violations == 0; }
  /// Per-case lines plus a summary; violating cases print their drill-down.
  std::string text() const;
  /// {"cases":[...],"total_values":N,"total_violations":N,"ok":bool}
  std::string json() const;
};

class ErrorBoundAuditor {
 public:
  /// Test hook: mutate the decompressed bytes before verification (models a
  /// corrupted decode; the auditor must catch it).
  using Corruptor = std::function<void(std::vector<u8>& raw, const AuditCase& about)>;

  explicit ErrorBoundAuditor(AuditConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Sweep every (suite, file) x eb x bound combination of the config.
  /// Throws CompressionError only on harness-level failures (unknown suite);
  /// bound violations are *reported*, never thrown.
  AuditResult run() const;

  /// Verify one original/reconstruction pair — the unit the sweep and the
  /// BatchCompressor audit hook share. `recon_raw` holds the decompressed
  /// scalar bytes; labels feed the drill-down.
  static AuditCase verify_field(const Field& orig, const std::vector<u8>& recon_raw,
                                EbType eb, double eps, const std::string& suite,
                                const std::string& file, u64 seed,
                                std::size_t compressed_bytes);

  void set_corruptor(Corruptor c) { corrupt_ = std::move(c); }

 private:
  AuditConfig cfg_;
  Corruptor corrupt_;
};

}  // namespace repro::obs
