#include "bits/bitshuffle.hpp"

#include <cassert>

namespace repro::bits {

void transpose_bits_32(u32* a) {
  u32 m = 0x0000FFFFu;
  for (u32 j = 16; j != 0; j >>= 1, m ^= (m << j)) {
    for (u32 k = 0; k < 32; k = (k + j + 1) & ~j) {
      u32 t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= (t << j);
    }
  }
}

void transpose_bits_64(u64* a) {
  u64 m = 0x00000000FFFFFFFFull;
  for (u32 j = 32; j != 0; j >>= 1, m ^= (m << j)) {
    for (u32 k = 0; k < 64; k = (k + j + 1) & ~j) {
      u64 t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= (t << j);
    }
  }
}

void bitshuffle(u32* w, std::size_t n) {
  assert(n % 32 == 0);
  for (std::size_t i = 0; i < n; i += 32) transpose_bits_32(w + i);
}

void bitshuffle(u64* w, std::size_t n) {
  assert(n % 64 == 0);
  for (std::size_t i = 0; i < n; i += 64) transpose_bits_64(w + i);
}

}  // namespace repro::bits
