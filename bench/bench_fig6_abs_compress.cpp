// Figure 6 reproduction: ABS error bounds — compression ratio vs.
// compression throughput, 4 bounds (1E-1..1E-4).
//   Fig 6a: single-precision suites (EXAALT/HACC excluded: not 3D, as in the
//           paper), Fig 6b: double-precision suites. Fig 6c is the same
//           harness on a second host.
// SPERR is excluded from the double chart (it cannot handle most of those
// suites — paper Section V-B); FZ-GPU does not support ABS and is skipped by
// the capability filter automatically.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::ABS;
  cfg.exclude_non_3d = true;
  // The paper compares to SZ2 only in the REL section (V-C); SZ3 elsewhere.
  cfg.exclude_compressors = {"SZ2_Serial"};

  cfg.dtype = DType::F32;
  bench::print_rows("Fig6a_ABS_compress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  cfg.exclude_compressors = {"SZ2_Serial", "SPERR_Serial"};
  bench::print_rows("Fig6b_ABS_compress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
