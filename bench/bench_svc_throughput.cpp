// Batch-compression service throughput: aggregate GB/s over the synthetic
// suite mix vs. worker count.
//
// The workload is the checkpoint/dump shape the service targets (cuSZ+ /
// FZ-GPU motivation: coarse-grained batch throughput, not single-buffer
// latency): every file of every synthetic suite is one job, all jobs are
// submitted at once, and the batch is timed end to end (plan + chunk fan-out
// + assembly). Each configuration also re-verifies the determinism
// invariant: entry bytes must equal single-threaded pfpl::compress.
//
// Output columns: threads, wall ms, aggregate GB/s (input bytes / wall),
// speedup vs. 1 thread, steal count, peak queue depth. Scaling tops out at
// the machine's core count — on fewer cores than workers the extra threads
// just time-slice.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "core/pfpl.hpp"
#include "data/synthetic.hpp"
#include "svc/batch.hpp"

using namespace repro;

int main() {
  // Laptop-scale mix: every suite, 2 files each, ~256K values per file.
  auto suites = data::generate_all(/*target_values=*/1 << 18, /*max_files=*/2);
  std::vector<svc::Job> jobs;
  std::size_t total_bytes = 0;
  for (const auto& suite : suites) {
    for (const auto& file : suite.files) {
      jobs.push_back({suite.spec.name + "/" + file.name, file.field(),
                      pfpl::Params{1e-3, EbType::ABS}});
      total_bytes += file.byte_size();
    }
  }
  std::printf("svc batch throughput: %zu jobs, %.1f MB total\n", jobs.size(),
              total_bytes / 1e6);

  // Reference streams for the determinism re-check.
  std::vector<Bytes> reference;
  reference.reserve(jobs.size());
  for (const auto& j : jobs) reference.push_back(pfpl::compress(j.field, j.params));

  std::printf("%8s %10s %10s %9s %8s %8s\n", "threads", "wall_ms", "GB/s", "speedup",
              "stolen", "depth");
  double base_ms = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    svc::BatchCompressor batch({.threads = threads});
    // Median-of-3 protocol (scaled down from the paper's 9 for batch size).
    double best_ms = 0;
    std::vector<svc::JobResult> results;
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      results = batch.run(jobs);
      times.push_back(t.seconds() * 1e3);
    }
    std::sort(times.begin(), times.end());
    best_ms = times[times.size() / 2];

    bool identical = results.size() == reference.size();
    for (std::size_t i = 0; identical && i < results.size(); ++i)
      identical = !results[i].failed && results[i].stream == reference[i];
    if (!identical) {
      std::fprintf(stderr, "FAIL: threads=%u produced non-identical output\n", threads);
      return 1;
    }

    if (threads == 1) base_ms = best_ms;
    const svc::SvcStats& st = batch.stats();
    std::printf("%8u %10.2f %10.3f %8.2fx %8llu %8llu\n", threads, best_ms,
                total_bytes / 1e6 / best_ms, base_ms / best_ms,
                static_cast<unsigned long long>(st.tasks_stolen),
                static_cast<unsigned long long>(st.peak_queue_depth));
  }
  return 0;
}
