// Canonical Huffman coder over 16-bit symbols.
//
// Substrate for the SZ-class baselines: SZ2/SZ3 entropy-code their
// quantization codes with Huffman before the general-purpose lossless
// backend (paper Section VI). Code lengths are limited to kMaxBits by
// iterative frequency flattening so the decoder tables stay small.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace repro::lossless {

inline constexpr unsigned kHuffMaxBits = 24;

/// Encode `syms`; the stream is self-describing (symbol count, code table,
/// then the bit stream).
Bytes huffman_encode(std::span<const u16> syms);

/// Decode a stream produced by huffman_encode. `consumed` (optional)
/// receives the number of input bytes read.
std::vector<u16> huffman_decode(const u8* data, std::size_t size,
                                std::size_t* consumed = nullptr);

inline std::vector<u16> huffman_decode(const Bytes& b) {
  return huffman_decode(b.data(), b.size());
}

}  // namespace repro::lossless
