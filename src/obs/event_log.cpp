#include "obs/event_log.hpp"

#include <chrono>

#include "common/types.hpp"
#include "obs/json.hpp"

namespace repro::obs {

namespace {

u64 steady_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

u64 wall_ms() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

const char* to_string(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
  }
  return "?";
}

bool parse_log_level(const std::string& s, LogLevel& out) {
  if (s == "debug") out = LogLevel::Debug;
  else if (s == "info") out = LogLevel::Info;
  else if (s == "warn") out = LogLevel::Warn;
  else if (s == "error") out = LogLevel::Error;
  else return false;
  return true;
}

EventLog& EventLog::global() {
  static EventLog* log = new EventLog();  // leaked: outlives all users
  return *log;
}

EventLog::~EventLog() { close_file(); }

void EventLog::close_file() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void EventLog::configure(const Options& o) {
  std::lock_guard<std::mutex> lk(m_);
  close_file();
  if (!o.path.empty()) {
    file_ = std::fopen(o.path.c_str(), "ab");
    if (!file_)
      throw CompressionError("obs: cannot open event log '" + o.path + "'");
  }
  level_.store(o.level, std::memory_order_relaxed);
  rate_per_s_ = o.rate_per_s > 0 ? o.rate_per_s : 200.0;
  tokens_ = 2.0 * rate_per_s_;
  last_refill_ns_ = steady_ns();
}

bool EventLog::emit(LogLevel lvl, const std::string& event,
                    const std::string& fields_json) {
  if (!would_log(lvl)) return false;
  std::lock_guard<std::mutex> lk(m_);
  // Token bucket: refill by elapsed time, cap at a 2x-rate burst, spend one
  // token per line. Drops are counted, not logged (that would defeat the
  // point of the limiter).
  const u64 now = steady_ns();
  if (last_refill_ns_ == 0) last_refill_ns_ = now;
  tokens_ += static_cast<double>(now - last_refill_ns_) / 1e9 * rate_per_s_;
  if (tokens_ > 2.0 * rate_per_s_) tokens_ = 2.0 * rate_per_s_;
  last_refill_ns_ = now;
  if (tokens_ < 1.0) {
    ++dropped_;
    return false;
  }
  tokens_ -= 1.0;

  JsonWriter w;
  w.begin_object();
  w.kv("ts_ms", static_cast<unsigned long long>(wall_ms()));
  w.kv("level", to_string(lvl));
  w.kv("event", event);
  if (!fields_json.empty()) w.key("fields").raw(fields_json);
  w.end_object();
  std::string line = w.take();
  line += '\n';

  std::FILE* sink = file_ ? file_ : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
  ++emitted_;
  return true;
}

u64 EventLog::emitted() const {
  std::lock_guard<std::mutex> lk(m_);
  return emitted_;
}

u64 EventLog::dropped() const {
  std::lock_guard<std::mutex> lk(m_);
  return dropped_;
}

}  // namespace repro::obs
