// Decoupled look-back prefix sum (Merrill & Garland), simulated.
//
// On the GPU, compressed chunk concatenation propagates the cumulative size
// of all prior chunks to each thread block with the single-pass decoupled
// look-back technique (paper Section III-E). Each block publishes its local
// aggregate, then walks backwards over predecessor descriptors, summing
// aggregates until it finds one with a full inclusive prefix.
//
// The simulation runs blocks in a configurable interleaved schedule; a block
// that cannot complete its look-back yet (a predecessor has not published)
// simply retries on its next time slice, mimicking the device's spin.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace repro::sim {

/// Compute exclusive prefix offsets of `sizes` via decoupled look-back.
/// `wave` controls how many blocks are "resident" per scheduling round
/// (models the number of concurrently resident thread blocks).
std::vector<u64> lookback_exclusive_offsets(const std::vector<u64>& sizes,
                                            std::size_t wave = 8);

}  // namespace repro::sim
