// Global observability switch.
//
// All obs recording — metric updates, span capture — is gated on one atomic
// flag. The disabled fast path is a single relaxed load and a predictable
// branch: no locks, no clock reads, no allocation, which is what lets the
// hot encode loops keep their instrumentation compiled in at all times
// (pay-for-what-you-use; the CLI/bench flags flip the switch on).
#pragma once

#include <atomic>
#include <cstdlib>

namespace repro::obs {

namespace detail {
/// Initial state of the switch: PFPL_OBS=1 (any value other than "" / "0")
/// turns observability on at process start. This is how CI jobs and child
/// processes get tracing/metrics without every driver growing a
/// --trace/--metrics flag — the env var is read once, and set_enabled()
/// still overrides it either way at runtime.
inline bool env_default() {
  const char* e = std::getenv("PFPL_OBS");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}

inline std::atomic<bool> g_enabled{env_default()};
}

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace repro::obs
