#include "sim/gpu_model.hpp"

#include <algorithm>

namespace repro::sim {

std::vector<GpuSpec> paper_gpus() {
  // Specs per vendor documentation; Table I covers the 4090 and A100, the
  // other three come from Section V-F.
  return {
      {"TITAN Xp", 30, 128, 1.58, 1024, 2048, 547.6, 2017},
      {"RTX 2070 Super", 40, 64, 1.77, 1024, 1024, 448.0, 2019},
      {"RTX 3080 Ti", 80, 128, 1.67, 1024, 1536, 912.4, 2021},
      {"RTX 4090", 128, 128, 2.52, 1024, 1536, 1008.0, 2022},
      {"A100 40GB", 108, 64, 1.41, 1024, 2048, 1555.0, 2020},
  };
}

std::vector<GpuPrediction> predict(int block_threads, double bytes_per_op) {
  std::vector<GpuPrediction> out;
  double best = 0;
  for (const GpuSpec& g : paper_gpus()) {
    GpuPrediction p;
    p.spec = g;
    // Resident threads per SM: bounded by the SM's thread capacity and by
    // how many of PFPL's blocks fit given the per-block thread limit. When
    // the hardware caps blocks at fewer threads than PFPL wants
    // (block_threads > max_threads_per_block), the block is split and block
    // scheduling limits (at most ~2 large blocks resident) strand capacity —
    // the 2070 Super effect the paper describes.
    int threads_per_launch = std::min(block_threads, g.max_threads_per_block);
    int resident_blocks = std::max(1, g.max_threads_per_sm / threads_per_launch);
    // Large-block kernels cannot co-schedule many blocks; cap at 2 like the
    // occupancy limits of PFPL's shared-memory-heavy kernels.
    resident_blocks = std::min(resident_blocks, 2);
    int resident_threads = threads_per_launch * resident_blocks;
    resident_threads = std::min(resident_threads, g.max_threads_per_sm);
    p.compute_score = static_cast<double>(g.sms) * resident_threads * g.boost_clock_ghz;
    // Memory roofline: ops/s the DRAM could feed at this intensity. PFPL
    // reads and writes each byte once; intensity is low, so this cap is far
    // above the compute score on every tested GPU.
    p.mem_score = bytes_per_op > 0 ? g.mem_bw_gbs * 1e9 / bytes_per_op / 1e6 : 1e300;
    double score = std::min(p.compute_score, p.mem_score);
    p.memory_bound = p.mem_score < p.compute_score;
    p.predicted_rel = score;
    best = std::max(best, score);
    out.push_back(p);
  }
  for (auto& p : out) p.predicted_rel /= best;
  return out;
}

}  // namespace repro::sim
