// PFPV/1 — frame-stream container for temporal compression (docs/FORMAT.md
// §PFPV).
//
//   +--------------------+ offset 0
//   | session header 40B |  dtype / eb / eps / frame shape / keyframe interval
//   +--------------------+ 40
//   | frame record 0     |  40 B CRC-framed record header + chunk-mode bitmap
//   | frame record 1     |  + a complete PFPL stream
//   | ...                |
//   +--------------------+ index_offset
//   | keyframe index     |  {frame_index, file_offset} per I frame
//   +--------------------+
//   | footer (24 B)      |  index extent + CRC + end magic (parsed from EOF)
//   +--------------------+
//
// The writer streams records out append-only (flushing each one), so a
// process killed mid-stream leaves a prefix of complete records plus at most
// one torn tail and no trailer. The reader recovers: when the footer is
// missing or invalid it scans records from the top, keeps every record whose
// two CRCs validate, rebuilds the keyframe index, and reports
// `truncated() == true` with the byte count of the discarded tail.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "temporal/temporal.hpp"

namespace repro::temporal {

inline constexpr u32 kPfpvMagic = 0x56504650;        // "PFPV"
inline constexpr u32 kPfpvRecordMagic = 0x52564650;  // "PFVR"
inline constexpr u32 kPfpvIndexMagic = 0x58564650;   // "PFVX"
inline constexpr u16 kPfpvVersion = 1;
inline constexpr std::size_t kPfpvHeaderSize = 40;
inline constexpr std::size_t kPfpvRecordHeaderSize = 40;
inline constexpr std::size_t kPfpvFooterSize = 24;

/// Serialize / parse the 40-byte session header. decode throws
/// CompressionError on bad magic/version/CRC or inconsistent shape.
Bytes encode_stream_header(const SessionConfig& cfg);
SessionConfig decode_stream_header(const u8* p, std::size_t n);

/// Serialize one frame record (header + bitmap + payload).
Bytes encode_frame_record(const EncodedFrame& f);

/// Parse the record at `p` (up to `n` bytes available). Returns the total
/// record size consumed, or 0 if the bytes do not form a complete valid
/// record (truncation or corruption — the caller treats it as end of data).
std::size_t decode_frame_record(const u8* p, std::size_t n, EncodedFrame& out);

struct KeyframeEntry {
  u64 frame_index = 0;
  u64 file_offset = 0;  ///< record start, from file start
};

/// Append-only PFPV file writer. Records are flushed as written; finish()
/// appends the keyframe index + footer. Destroying an unfinished writer
/// leaves a valid truncated stream.
class StreamWriter {
 public:
  /// Creates/truncates `path` and writes the session header. Throws
  /// CompressionError on I/O failure.
  StreamWriter(const std::string& path, const SessionConfig& cfg);
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Append one frame record (encodes it first).
  void append(const EncodedFrame& f);
  /// Append an already-encoded record (e.g. returned by a remote session).
  /// Validates the record bytes before writing.
  void append_encoded(const Bytes& record);

  /// Write the keyframe index + footer and close the file.
  void finish();

  u64 frames() const { return frames_; }
  u64 bytes_written() const { return offset_; }

 private:
  void write_bytes(const void* p, std::size_t n);

  std::FILE* f_ = nullptr;
  std::string path_;
  u64 offset_ = 0;
  u64 frames_ = 0;
  std::vector<KeyframeEntry> keyframes_;
  bool finished_ = false;
};

/// Whole-file PFPV reader. Loads the file, validates the session header,
/// then either trusts a valid trailer or scans for the recoverable prefix.
class StreamReader {
 public:
  explicit StreamReader(const std::string& path);
  explicit StreamReader(Bytes bytes);

  const SessionConfig& config() const { return cfg_; }
  /// True when the trailer was missing/invalid (torn tail): frames() holds
  /// only the recoverable prefix and truncated_bytes() the discarded tail.
  bool truncated() const { return truncated_; }
  std::size_t truncated_bytes() const { return truncated_bytes_; }

  std::size_t frame_count() const { return offsets_.size(); }
  const std::vector<KeyframeEntry>& keyframes() const { return keyframes_; }

  /// Decode the envelope of frame `i` (header + bitmap + payload views are
  /// copied out of the file buffer).
  EncodedFrame frame(std::size_t i) const;

 private:
  void open(Bytes bytes);

  Bytes data_;
  SessionConfig cfg_;
  std::vector<std::size_t> offsets_;  ///< record start offsets, in order
  std::vector<KeyframeEntry> keyframes_;
  bool truncated_ = false;
  std::size_t truncated_bytes_ = 0;
};

}  // namespace repro::temporal
