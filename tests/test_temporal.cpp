// Tests for the temporal streaming subsystem (src/temporal + the PFPN
// STREAM ops): evolving-suite determinism, closed-loop P-frame error bounds
// over long sequences, per-chunk intra fallback under a correlation-killing
// regime change, PFPV container torn-tail recovery and corruption rejection,
// server-side session lifecycle (idle eviction, the session cap, drain), and
// the cluster client's timer-driven background map refresh.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/client.hpp"
#include "cluster/shard_map.hpp"
#include "core/pfpl.hpp"
#include "data/evolving.hpp"
#include "io/raw_file.hpp"
#include "metrics/error_stats.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "temporal/pfpv.hpp"
#include "temporal/temporal.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

temporal::SessionConfig config_for(const data::FrameSequence& seq, EbType eb,
                                   double eps, u32 keyframe_interval = 16) {
  temporal::SessionConfig cfg;
  cfg.dtype = seq.dtype;
  cfg.eb = eb;
  cfg.eps = eps;
  cfg.dims = {static_cast<u32>(seq.dims[0]), static_cast<u32>(seq.dims[1]),
              static_cast<u32>(seq.dims[2])};
  cfg.keyframe_interval = keyframe_interval;
  return cfg;
}

std::size_t audit_frame(const temporal::SessionConfig& cfg, const u8* orig,
                        const u8* recon) {
  const std::size_t n = cfg.frame_values();
  if (cfg.dtype == DType::F32)
    return metrics::count_violations(
        std::span<const float>(reinterpret_cast<const float*>(orig), n),
        std::span<const float>(reinterpret_cast<const float*>(recon), n),
        cfg.eps, cfg.eb);
  return metrics::count_violations(
      std::span<const double>(reinterpret_cast<const double*>(orig), n),
      std::span<const double>(reinterpret_cast<const double*>(recon), n),
      cfg.eps, cfg.eb);
}

const u8* frame_bytes(const data::FrameSequence& seq, std::size_t i) {
  return seq.dtype == DType::F32
             ? reinterpret_cast<const u8*>(seq.f32[i].data())
             : reinterpret_cast<const u8*>(seq.f64[i].data());
}

/// Scratch file that deletes itself on scope exit.
struct TempFile {
  TempFile() {
    path = (fs::temp_directory_path() /
            ("pfpl_test_temporal_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  static inline int counter = 0;
  std::string path;
};

/// A server on its own thread; joins on scope exit (same idiom as test_net).
struct TestServer {
  explicit TestServer(net::Server::Options opts = {}) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  void stop() {
    server.request_stop();
    thread.join();
  }
  net::Client::Options client_options() const {
    net::Client::Options o;
    o.host = "127.0.0.1";
    o.port = server.port();
    return o;
  }
  net::Server server;
  std::thread thread;
};

// ---------------------------------------------------------------------------
// Evolving suites (src/data)

TEST(Evolving, RosterAndLookup) {
  const auto suites = data::evolving_suites();
  ASSERT_EQ(suites.size(), 3u);
  EXPECT_EQ(data::find_evolving("advect").dtype, DType::F32);
  EXPECT_EQ(data::find_evolving("diffuse").dtype, DType::F64);
  EXPECT_EQ(data::find_evolving("regime").kind, "regime");
  EXPECT_THROW(data::find_evolving("nope"), std::invalid_argument);
}

TEST(Evolving, SameSeedIsByteIdentical) {
  for (const auto& spec : data::evolving_suites()) {
    const auto a = data::generate_evolving(spec, 4096, 8, 1234);
    const auto b = data::generate_evolving(spec, 4096, 8, 1234);
    const auto c = data::generate_evolving(spec, 4096, 8, 5678);
    ASSERT_EQ(a.frames(), 8u);
    ASSERT_EQ(a.dims, b.dims);
    const std::size_t nbytes = a.frame_values() * dtype_size(a.dtype);
    bool differs_from_c = false;
    for (std::size_t t = 0; t < a.frames(); ++t) {
      EXPECT_EQ(std::memcmp(frame_bytes(a, t), frame_bytes(b, t), nbytes), 0)
          << spec.name << " frame " << t;
      if (std::memcmp(frame_bytes(a, t), frame_bytes(c, t), nbytes) != 0)
        differs_from_c = true;
    }
    EXPECT_TRUE(differs_from_c) << spec.name << ": seed is ignored";
  }
}

TEST(Evolving, FramesActuallyEvolve) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 4096, 4);
  const std::size_t nbytes = seq.frame_values() * sizeof(float);
  EXPECT_NE(std::memcmp(frame_bytes(seq, 0), frame_bytes(seq, 1), nbytes), 0);
  EXPECT_NE(std::memcmp(frame_bytes(seq, 1), frame_bytes(seq, 3), nbytes), 0);
}

// ---------------------------------------------------------------------------
// Closed-loop FrameEncoder / FrameDecoder

TEST(Temporal, ClosedLoopHoldsBoundOver100Frames) {
  // The error-accumulation test: 100+ frames, keyframes only every 25, a
  // tight ABS bound. Because prediction references the previous *decoded*
  // frame, frame 99's error must be as bounded as frame 1's.
  const auto seq =
      data::generate_evolving(data::find_evolving("advect"), 2048, 104);
  const auto cfg = config_for(seq, EbType::ABS, 1e-4, 25);
  temporal::FrameEncoder enc(cfg);
  temporal::FrameDecoder dec(cfg);
  for (std::size_t t = 0; t < seq.frames(); ++t) {
    const temporal::EncodedFrame ef = enc.encode(seq.frame(t), t);
    const std::vector<u8>& recon = dec.decode(ef);
    EXPECT_EQ(audit_frame(cfg, frame_bytes(seq, t), recon.data()), 0u)
        << "frame " << t;
  }
  EXPECT_EQ(enc.frames_encoded(), 104u);
  EXPECT_GT(enc.predicted_frames(), 90u);  // keyframes + audit fallbacks only
}

TEST(Temporal, NoaBoundHoldsOnPredictedFrames) {
  // NOA is range-relative per frame; the encoder derives an ABS bound from
  // the *current* frame's range, so the guarantee must survive prediction.
  const auto seq =
      data::generate_evolving(data::find_evolving("diffuse"), 2048, 40);
  const auto cfg = config_for(seq, EbType::NOA, 1e-4);
  temporal::FrameEncoder enc(cfg);
  temporal::FrameDecoder dec(cfg);
  for (std::size_t t = 0; t < seq.frames(); ++t) {
    const std::vector<u8>& recon = dec.decode(enc.encode(seq.frame(t), t));
    EXPECT_EQ(audit_frame(cfg, frame_bytes(seq, t), recon.data()), 0u)
        << "frame " << t;
  }
  EXPECT_GT(enc.predicted_frames(), 0u);
}

TEST(Temporal, RegimeChangeTriggersPerChunkFallback) {
  // The regime suite keeps half the volume temporally smooth and re-seeds
  // the other half every frame after the midpoint: P frames must keep the
  // smooth chunks predicted while falling back to intra for the chaotic
  // ones — and the bound must hold everywhere regardless.
  const auto seq =
      data::generate_evolving(data::find_evolving("regime"), 16384, 32);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3);
  temporal::FrameEncoder enc(cfg);
  temporal::FrameDecoder dec(cfg);
  std::size_t violations = 0;
  for (std::size_t t = 0; t < seq.frames(); ++t) {
    const std::vector<u8>& recon = dec.decode(enc.encode(seq.frame(t), t));
    violations += audit_frame(cfg, frame_bytes(seq, t), recon.data());
  }
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(enc.predicted_chunks(), 0u) << "smooth half should stay predicted";
  EXPECT_GT(enc.intra_fallback_chunks(), 0u)
      << "chaotic half should force per-chunk intra fallback";
}

TEST(Temporal, DecoderRequiresKeyframeFirst) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 1024, 3);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3);
  temporal::FrameEncoder enc(cfg);
  (void)enc.encode(seq.frame(0), 0);
  const temporal::EncodedFrame p = enc.encode(seq.frame(1), 1);
  ASSERT_EQ(p.type, temporal::FrameType::Predicted);
  temporal::FrameDecoder fresh(cfg);
  EXPECT_THROW(fresh.decode(p), CompressionError);
}

// ---------------------------------------------------------------------------
// PFPV container

TEST(Pfpv, RoundTripPreservesFramesAndKeyframeIndex) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 2048, 20);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3, 8);
  TempFile tf;
  {
    temporal::StreamWriter w(tf.path, cfg);
    temporal::FrameEncoder enc(cfg);
    for (std::size_t t = 0; t < seq.frames(); ++t)
      w.append(enc.encode(seq.frame(t), t));
    w.finish();
  }
  temporal::StreamReader r(tf.path);
  EXPECT_FALSE(r.truncated());
  ASSERT_EQ(r.frame_count(), 20u);
  EXPECT_EQ(r.config().dtype, cfg.dtype);
  EXPECT_EQ(r.config().dims, cfg.dims);
  // Keyframes at 0, 8, 16 — plus any audit fallbacks, so >= 3.
  ASSERT_GE(r.keyframes().size(), 3u);
  EXPECT_EQ(r.keyframes()[0].frame_index, 0u);
  // Decoding straight out of the container matches the closed loop.
  temporal::FrameDecoder dec(cfg);
  for (std::size_t t = 0; t < r.frame_count(); ++t) {
    const temporal::EncodedFrame ef = r.frame(t);
    EXPECT_EQ(ef.frame_index, t);
    EXPECT_EQ(audit_frame(cfg, frame_bytes(seq, t), dec.decode(ef).data()), 0u);
  }
}

TEST(Pfpv, TornTailRecoversCompletePrefix) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 2048, 12);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3, 4);
  TempFile tf;
  std::vector<u64> record_ends;
  {
    temporal::StreamWriter w(tf.path, cfg);
    temporal::FrameEncoder enc(cfg);
    for (std::size_t t = 0; t < seq.frames(); ++t) {
      w.append(enc.encode(seq.frame(t), t));
      record_ends.push_back(w.bytes_written());
    }
    // No finish(): simulates a process killed mid-stream (no index/footer).
  }
  // Chop mid-record: keep 7 complete records plus half of the 8th.
  const u64 cut = (record_ends[6] + record_ends[7]) / 2;
  fs::resize_file(tf.path, cut);
  temporal::StreamReader r(tf.path);
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(r.frame_count(), 7u);
  EXPECT_EQ(r.truncated_bytes(), cut - record_ends[6]);
  ASSERT_FALSE(r.keyframes().empty());
  temporal::FrameDecoder dec(cfg);
  for (std::size_t t = 0; t < r.frame_count(); ++t)
    EXPECT_EQ(audit_frame(cfg, frame_bytes(seq, t), dec.decode(r.frame(t)).data()),
              0u);
}

TEST(Pfpv, CorruptRecordEndsTheRecoverableStream) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 2048, 6);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3, 4);
  TempFile tf;
  std::vector<u64> record_ends;
  {
    temporal::StreamWriter w(tf.path, cfg);
    temporal::FrameEncoder enc(cfg);
    for (std::size_t t = 0; t < seq.frames(); ++t) {
      w.append(enc.encode(seq.frame(t), t));
      record_ends.push_back(w.bytes_written());
    }
  }
  // Flip a payload byte inside record 3 and drop the trailer so the reader
  // must scan. The CRC mismatch must end the stream at record 3, not serve
  // corrupt frame data.
  Bytes data = io::read_file(tf.path);
  data.resize(record_ends.back());  // strip index + footer
  data[record_ends[2] + temporal::kPfpvRecordHeaderSize + 5] ^= 0xFF;
  temporal::StreamReader r(data);
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(r.frame_count(), 3u);
}

TEST(Pfpv, GarbageHeaderIsRejected) {
  Bytes junk(128, 0x5A);
  EXPECT_THROW(temporal::StreamReader{junk}, CompressionError);
  Bytes tiny(8, 0);
  EXPECT_THROW(temporal::StreamReader{tiny}, CompressionError);
}

// ---------------------------------------------------------------------------
// PFPN stream sessions (server lifecycle)

TEST(StreamSession, RemoteFramesMatchLocalEncoder) {
  const auto seq = data::generate_evolving(data::find_evolving("advect"), 2048, 10);
  const auto cfg = config_for(seq, EbType::ABS, 1e-3, 4);
  TestServer ts;
  net::Client client(ts.client_options());
  const u64 sid =
      client.stream_open(cfg.dtype, cfg.eb, cfg.eps, cfg.dims, cfg.keyframe_interval);
  temporal::FrameDecoder dec(cfg);
  u64 iframes = 0;
  const std::size_t nbytes = cfg.frame_bytes();
  for (std::size_t t = 0; t < seq.frames(); ++t) {
    const Bytes record = client.stream_frame(sid, t, frame_bytes(seq, t), nbytes);
    temporal::EncodedFrame ef;
    ASSERT_EQ(temporal::decode_frame_record(record.data(), record.size(), ef),
              record.size());
    EXPECT_EQ(ef.frame_index, t);
    if (ef.type == temporal::FrameType::Intra) ++iframes;
    EXPECT_EQ(audit_frame(cfg, frame_bytes(seq, t), dec.decode(ef).data()), 0u)
        << "frame " << t;
  }
  EXPECT_GE(iframes, 3u);  // keyframe_interval 4 over 10 frames
  client.stream_close(sid);
  client.stream_close(sid);  // idempotent
  const auto st = ts.server.stats();
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_EQ(st.sessions_closed, 1u);
  EXPECT_EQ(st.sessions_current, 0u);
  EXPECT_EQ(st.stream_frames, 10u);
}

TEST(StreamSession, FreshSessionAcceptsAnyFirstIndexThenEnforcesOrder) {
  // The reconnect-resume contract: a client whose session died mid-stream
  // re-opens and continues its own frame numbering, so a fresh session must
  // accept an arbitrary first index (answering with a keyframe) — but stays
  // strictly sequential afterwards.
  TestServer ts;
  net::Client client(ts.client_options());
  const std::array<u32, 3> dims{1, 16, 16};
  std::vector<float> frame(16 * 16, 3.0f);
  const u64 sid = client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
  const Bytes rec = client.stream_frame(sid, 7, frame.data(),
                                        frame.size() * sizeof(float));
  temporal::EncodedFrame ef;
  ASSERT_EQ(temporal::decode_frame_record(rec.data(), rec.size(), ef), rec.size());
  EXPECT_EQ(ef.frame_index, 7u);
  EXPECT_EQ(ef.type, temporal::FrameType::Intra);
  EXPECT_THROW(
      (void)client.stream_frame(sid, 9, frame.data(), frame.size() * sizeof(float)),
      net::RemoteError);
  (void)client.stream_frame(sid, 8, frame.data(), frame.size() * sizeof(float));
  client.stream_close(sid);
}

TEST(StreamSession, IdleSessionsAreEvictedAndGetBadSession) {
  net::Server::Options opts;
  opts.session_idle_ms = 100;
  TestServer ts(opts);
  net::Client client(ts.client_options());
  const std::array<u32, 3> dims{1, 16, 16};
  const u64 sid = client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
  std::vector<float> frame(16 * 16, 1.0f);
  (void)client.stream_frame(sid, 0, frame.data(), frame.size() * sizeof(float));
  // The sweep runs on the poll loop at most every 500 ms; wait past idle +
  // sweep cadence, then poke the loop so the sweep actually fires.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  bool evicted = false;
  for (int i = 0; i < 20 && !evicted; ++i) {
    try {
      (void)client.stream_frame(sid, 1, frame.data(), frame.size() * sizeof(float));
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    } catch (const net::RemoteError& e) {
      EXPECT_EQ(e.status(), static_cast<u16>(net::Status::BadSession));
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted) << "idle session was never evicted";
  EXPECT_GE(ts.server.stats().sessions_evicted, 1u);
  EXPECT_EQ(ts.server.stats().sessions_current, 0u);
}

TEST(StreamSession, SessionCapRefusesWithSessionLimit) {
  net::Server::Options opts;
  opts.max_sessions = 1;
  TestServer ts(opts);
  net::Client client(ts.client_options());
  const std::array<u32, 3> dims{1, 8, 8};
  const u64 sid = client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
  try {
    (void)client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
    FAIL() << "second STREAM_OPEN should exceed max_sessions=1";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.status(), static_cast<u16>(net::Status::SessionLimit));
  }
  client.stream_close(sid);
  // Slot freed: a new session opens fine.
  const u64 sid2 = client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
  client.stream_close(sid2);
}

TEST(StreamSession, DrainKillsOpenSessions) {
  TestServer ts;
  net::Client client(ts.client_options());
  const std::array<u32, 3> dims{1, 8, 8};
  std::vector<float> frame(8 * 8, 2.0f);
  const u64 sid = client.stream_open(DType::F32, EbType::ABS, 1e-3, dims, 16);
  (void)client.stream_frame(sid, 0, frame.data(), frame.size() * sizeof(float));
  ts.stop();  // graceful drain
  const auto st = ts.server.stats();
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_GE(st.sessions_evicted, 1u) << "drain must kill live sessions";
  EXPECT_EQ(st.sessions_current, 0u);
}

// ---------------------------------------------------------------------------
// Cluster client background refresh (satellite)

TEST(ClusterRefresh, BackgroundTimerRefreshesTheMap) {
  net::Server::Options so;
  auto server = std::make_unique<net::Server>(so);
  std::vector<cluster::NodeInfo> nodes{{"n0", "127.0.0.1", server->port()}};
  cluster::ShardMap map("test", std::move(nodes),
                        cluster::ShardMap::kDefaultVnodes, 1);
  server->set_cluster(map, "n0");
  std::thread run([&] { server->run(); });
  {
    cluster::ClusterClient::Options co;
    co.map = map;
    co.refresh_interval_ms = 50;
    cluster::ClusterClient cc(co);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (cc.stats().background_refreshes == 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GT(cc.stats().background_refreshes, 0u);
    EXPECT_EQ(cc.map().epoch(), map.epoch());
  }  // destructor must stop + join the refresher without hanging
  server->request_stop();
  run.join();
}

}  // namespace
