// pfpl — command-line front end for the PFPL compressor.
//
// Usage:
//   pfpl c <in.raw> <out.pfpl> --dtype f32|f64 --eb abs|rel|noa --eps 1e-3
//        [--exec serial|omp|gpusim]
//   pfpl d <in.pfpl> <out.raw> [--exec serial|omp|gpusim]
//   pfpl info <in.pfpl>
//   pfpl verify <original.raw> <in.pfpl>     # re-check the error bound
#include <cstdio>
#include <cstring>
#include <string>

#include "core/pfpl.hpp"
#include "io/raw_file.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pfpl c <in.raw> <out.pfpl> --dtype f32|f64 --eb abs|rel|noa --eps <e>\n"
               "       [--exec serial|omp|gpusim]\n"
               "  pfpl d <in.pfpl> <out.raw> [--exec serial|omp|gpusim]\n"
               "  pfpl info <in.pfpl>\n"
               "  pfpl verify <original.raw> <in.pfpl>\n");
  std::exit(2);
}

pfpl::Executor parse_exec(const std::string& s) {
  if (s == "serial") return pfpl::Executor::Serial;
  if (s == "omp") return pfpl::Executor::OpenMP;
  if (s == "gpusim") return pfpl::Executor::GpuSim;
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  std::string mode = argv[1];
  try {
    if (mode == "info") {
      Bytes in = io::read_file(argv[2]);
      pfpl::Header h = pfpl::peek_header(in);
      std::printf("dtype=%s eb=%s eps=%g recon_param=%g values=%llu chunks=%u\n",
                  to_string(h.dtype), to_string(h.eb_type), h.eps, h.recon_param,
                  static_cast<unsigned long long>(h.value_count), h.chunk_count);
      std::printf("compressed=%zu bytes  ratio=%.3f\n", in.size(),
                  static_cast<double>(h.value_count) * dtype_size(h.dtype) /
                      static_cast<double>(in.size()));
      return 0;
    }
    if (mode == "verify") {
      if (argc < 4) usage();
      std::vector<u8> orig = io::read_file(argv[2]);
      Bytes comp = io::read_file(argv[3]);
      pfpl::Header h = pfpl::peek_header(comp);
      std::vector<u8> back = pfpl::decompress(comp);
      std::size_t bad = 0;
      double max_abs = 0, max_rel = 0, psnr = 0;
      if (h.dtype == DType::F32) {
        std::span<const float> o(reinterpret_cast<const float*>(orig.data()), orig.size() / 4);
        std::span<const float> r(reinterpret_cast<const float*>(back.data()), back.size() / 4);
        bad = metrics::count_violations(o, r, h.eps, h.eb_type);
        auto st = metrics::compute_stats(o, r);
        max_abs = st.max_abs;
        max_rel = st.max_rel;
        psnr = st.psnr;
      } else {
        std::span<const double> o(reinterpret_cast<const double*>(orig.data()), orig.size() / 8);
        std::span<const double> r(reinterpret_cast<const double*>(back.data()), back.size() / 8);
        bad = metrics::count_violations(o, r, h.eps, h.eb_type);
        auto st = metrics::compute_stats(o, r);
        max_abs = st.max_abs;
        max_rel = st.max_rel;
        psnr = st.psnr;
      }
      std::printf("eb=%s eps=%g  max_abs_err=%.6g max_rel_err=%.6g psnr=%.2f dB\n",
                  to_string(h.eb_type), h.eps, max_abs, max_rel, psnr);
      std::printf("violations: %zu %s\n", bad, bad == 0 ? "(bound holds)" : "(BOUND VIOLATED)");
      return bad == 0 ? 0 : 3;
    }
    if (argc < 4) usage();
    std::string in_path = argv[2], out_path = argv[3];
    DType dtype = DType::F32;
    pfpl::Params p;
    for (int i = 4; i < argc; ++i) {
      std::string a = argv[i];
      auto need = [&](const char* what) -> std::string {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", what);
          usage();
        }
        return argv[++i];
      };
      if (a == "--dtype") {
        std::string v = need("--dtype");
        dtype = v == "f64" ? DType::F64 : DType::F32;
      } else if (a == "--eb") {
        std::string v = need("--eb");
        p.eb = v == "rel" ? EbType::REL : (v == "noa" ? EbType::NOA : EbType::ABS);
      } else if (a == "--eps") {
        p.eps = std::stod(need("--eps"));
      } else if (a == "--exec") {
        p.exec = parse_exec(need("--exec"));
      } else {
        usage();
      }
    }
    if (mode == "c") {
      std::vector<u8> raw = io::read_file(in_path);
      Field f;
      if (dtype == DType::F32)
        f = Field(reinterpret_cast<const float*>(raw.data()), raw.size() / 4);
      else
        f = Field(reinterpret_cast<const double*>(raw.data()), raw.size() / 8);
      Bytes out = pfpl::compress(f, p);
      io::write_file(out_path, out.data(), out.size());
      std::printf("%zu -> %zu bytes (ratio %.3f)\n", raw.size(), out.size(),
                  static_cast<double>(raw.size()) / static_cast<double>(out.size()));
      return 0;
    }
    if (mode == "d") {
      Bytes in = io::read_file(in_path);
      std::vector<u8> raw = pfpl::decompress(in, p.exec);
      io::write_file(out_path, raw.data(), raw.size());
      std::printf("%zu -> %zu bytes\n", in.size(), raw.size());
      return 0;
    }
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pfpl: %s\n", e.what());
    return 1;
  }
}
