// Core shared types for the PFPL reproduction.
//
// Everything in this repository speaks in terms of:
//   - DType:  the scalar precision of a field (f32 / f64)
//   - EbType: the point-wise error-bound type (ABS / REL / NOA), Section II
//   - Field:  a non-owning view of a 1D/2D/3D scalar field
//   - Bytes:  an owning compressed byte buffer
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace repro {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Scalar precision of a data field.
enum class DType : u8 { F32 = 0, F64 = 1 };

/// Point-wise error-bound type (paper Section II).
enum class EbType : u8 {
  ABS = 0,  ///< point-wise absolute error
  REL = 1,  ///< point-wise relative error
  NOA = 2,  ///< point-wise normalized absolute error (ABS scaled by range)
};

inline const char* to_string(DType t) { return t == DType::F32 ? "f32" : "f64"; }

inline const char* to_string(EbType t) {
  switch (t) {
    case EbType::ABS: return "ABS";
    case EbType::REL: return "REL";
    case EbType::NOA: return "NOA";
  }
  return "?";
}

inline std::size_t dtype_size(DType t) { return t == DType::F32 ? 4 : 8; }

/// Owning compressed-byte buffer.
using Bytes = std::vector<u8>;

/// Non-owning view of a scalar field with up to 3 dimensions.
///
/// Dimensions are stored slowest-varying first (dims[0] = z, dims[1] = y,
/// dims[2] = x). A 1D stream of n values is {1, 1, n}; a 2D field of
/// h x w is {1, h, w}. This matches the layout of the SDRBench files the
/// paper evaluates on (Table II).
struct Field {
  const void* data = nullptr;
  DType dtype = DType::F32;
  std::array<std::size_t, 3> dims{1, 1, 0};

  Field() = default;

  Field(const float* p, std::size_t n) : data(p), dtype(DType::F32), dims{1, 1, n} {}
  Field(const double* p, std::size_t n) : data(p), dtype(DType::F64), dims{1, 1, n} {}
  Field(const float* p, std::array<std::size_t, 3> d) : data(p), dtype(DType::F32), dims(d) {}
  Field(const double* p, std::array<std::size_t, 3> d) : data(p), dtype(DType::F64), dims(d) {}

  explicit Field(std::span<const float> s) : Field(s.data(), s.size()) {}
  explicit Field(std::span<const double> s) : Field(s.data(), s.size()) {}

  std::size_t count() const { return dims[0] * dims[1] * dims[2]; }
  std::size_t byte_size() const { return count() * dtype_size(dtype); }

  /// Number of dimensions with extent > 1 (at least 1).
  int rank() const {
    int r = 0;
    for (std::size_t d : dims)
      if (d > 1) ++r;
    return r == 0 ? 1 : r;
  }

  bool is_3d() const { return dims[0] > 1 && dims[1] > 1 && dims[2] > 1; }

  template <typename T>
  std::span<const T> as() const {
    static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>);
    if ((std::is_same_v<T, float> && dtype != DType::F32) ||
        (std::is_same_v<T, double> && dtype != DType::F64))
      throw std::logic_error("Field::as: dtype mismatch");
    return {static_cast<const T*>(data), count()};
  }
};

/// Error type thrown on invalid compression parameters or corrupt streams.
class CompressionError : public std::runtime_error {
 public:
  explicit CompressionError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace repro
