// Climate-model checkpointing: the CESM-style workload from the paper's
// introduction — a simulation produces 2D/3D fields every few timesteps and
// cannot afford to write them uncompressed.
//
//   build/examples/climate_checkpoint
//
// A toy heat-diffusion model advances a 3D temperature field; every K steps
// the field is checkpointed with a NOA bound (the right type when different
// variables live at different scales, Section II-C). The example restarts
// the model from a compressed checkpoint and shows the restart trajectory
// stays within the expected envelope.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pfpl.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

namespace {

constexpr std::size_t NZ = 24, NY = 48, NX = 48;

struct Model {
  std::vector<float> t = std::vector<float>(NZ * NY * NX);

  void init() {
    for (std::size_t z = 0; z < NZ; ++z)
      for (std::size_t y = 0; y < NY; ++y)
        for (std::size_t x = 0; x < NX; ++x)
          t[(z * NY + y) * NX + x] =
              280.0f + 40.0f * std::sin(0.2f * z) * std::cos(0.13f * y) * std::sin(0.09f * x);
  }

  void step() {  // explicit diffusion with a mild source term
    std::vector<float> next(t.size());
    auto at = [&](std::size_t z, std::size_t y, std::size_t x) {
      return t[(std::min(z, NZ - 1) * NY + std::min(y, NY - 1)) * NX + std::min(x, NX - 1)];
    };
    for (std::size_t z = 0; z < NZ; ++z)
      for (std::size_t y = 0; y < NY; ++y)
        for (std::size_t x = 0; x < NX; ++x) {
          float lap = at(z ? z - 1 : 0, y, x) + at(z + 1, y, x) + at(z, y ? y - 1 : 0, x) +
                      at(z, y + 1, x) + at(z, y, x ? x - 1 : 0) + at(z, y, x + 1) -
                      6.0f * at(z, y, x);
          next[(z * NY + y) * NX + x] = at(z, y, x) + 0.1f * lap + 0.001f * std::sin(0.01f * x);
        }
    t = std::move(next);
  }
};

}  // namespace

int main() {
  Model truth;
  truth.init();

  const double eps = 1e-4;  // NOA: 1e-4 of the field's value range
  std::size_t raw_bytes = 0, comp_bytes = 0;
  Bytes checkpoint;
  int checkpoint_step = 0;

  for (int s = 1; s <= 60; ++s) {
    truth.step();
    if (s % 20 == 0) {
      Bytes c = pfpl::compress(Field(truth.t.data(), {NZ, NY, NX}),
                               {.eps = eps, .eb = EbType::NOA});
      raw_bytes += truth.t.size() * 4;
      comp_bytes += c.size();
      checkpoint = c;
      checkpoint_step = s;
      auto back = pfpl::decompress_as<float>(c);
      auto st = metrics::compute_stats(std::span<const float>(truth.t),
                                       std::span<const float>(back));
      std::printf("step %3d: checkpoint %7zu -> %6zu bytes (%.1fx), max err %.3g, range %.1f\n",
                  s, truth.t.size() * 4, c.size(),
                  metrics::compression_ratio(truth.t.size() * 4, c.size()), st.max_abs,
                  st.value_range);
    }
  }

  // Restart from the last checkpoint and advance both trajectories.
  Model restart;
  restart.t = pfpl::decompress_as<float>(checkpoint);
  Model reference = truth;  // state at step 60 == checkpoint step
  for (int s = 0; s < 20; ++s) {
    restart.step();
    reference.step();
  }
  double max_div = 0;
  for (std::size_t i = 0; i < restart.t.size(); ++i)
    max_div = std::max(max_div, std::abs(static_cast<double>(restart.t[i]) - reference.t[i]));
  std::printf("restart from step-%d checkpoint, 20 steps later: max divergence %.3g K\n",
              checkpoint_step, max_div);
  std::printf("total checkpoints: %zu -> %zu bytes (%.1fx)\n", raw_bytes, comp_bytes,
              metrics::compression_ratio(raw_bytes, comp_bytes));
  // Diffusion damps perturbations: the restart must stay near the reference.
  return max_div < 1.0 ? 0 : 1;
}
