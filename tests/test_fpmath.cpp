// Tests for the deterministic IEEE-only math substrate (paper Section III-C).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/rng.hpp"
#include "fpmath/det_math.hpp"
#include "fpmath/traits.hpp"

using namespace repro;
using namespace repro::fpmath;

TEST(RoundNearestEven, Integers) {
  EXPECT_EQ(round_nearest_even(0.0), 0.0);
  EXPECT_EQ(round_nearest_even(1.0), 1.0);
  EXPECT_EQ(round_nearest_even(-7.0), -7.0);
  EXPECT_EQ(round_nearest_even(1e18), 1e18);  // beyond 2^52: already integral
}

TEST(RoundNearestEven, HalfwayTiesToEven) {
  EXPECT_EQ(round_nearest_even(0.5), 0.0);
  EXPECT_EQ(round_nearest_even(1.5), 2.0);
  EXPECT_EQ(round_nearest_even(2.5), 2.0);
  EXPECT_EQ(round_nearest_even(-0.5), 0.0);
  EXPECT_EQ(round_nearest_even(-1.5), -2.0);
  EXPECT_EQ(round_nearest_even(-2.5), -2.0);
}

TEST(RoundNearestEven, NearHalf) {
  EXPECT_EQ(round_nearest_even(0.49999999999), 0.0);
  EXPECT_EQ(round_nearest_even(0.50000000001), 1.0);
  EXPECT_EQ(round_nearest_even(-3.50000000001), -4.0);
}

TEST(RoundNearestEven, MatchesLibmRint) {
  data::Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    double x = rng.uniform(-1e9, 1e9);
    EXPECT_EQ(round_nearest_even(x), std::rint(x)) << x;
  }
}

TEST(DetLog, KnownValues) {
  EXPECT_NEAR(det_log(1.0), 0.0, 1e-16);
  EXPECT_NEAR(det_log(2.718281828459045), 1.0, 1e-14);
  EXPECT_NEAR(det_log(10.0), 2.302585092994046, 1e-14);
  EXPECT_NEAR(det_log(0.5), -0.6931471805599453, 1e-14);
}

TEST(DetLog, MatchesLibmAcrossMagnitudes) {
  data::Rng rng(7);
  for (int e = -300; e <= 300; e += 3) {
    double x = std::pow(10.0, e) * (0.5 + rng.uniform());
    double want = std::log(x);
    EXPECT_NEAR(det_log(x), want, std::abs(want) * 1e-14 + 1e-15) << x;
  }
}

TEST(DetLog, DenormalInputs) {
  double tiny = 5e-324;  // smallest positive denormal
  EXPECT_NEAR(det_log(tiny), std::log(tiny), 1e-11);
  double d2 = 1e-310;
  EXPECT_NEAR(det_log(d2), std::log(d2), 1e-11);
}

TEST(DetLog1p, SmallArguments) {
  for (double x : {1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0}) {
    double want = std::log1p(x);
    EXPECT_NEAR(det_log1p(x), want, std::abs(want) * 1e-14) << x;
  }
}

TEST(DetExp, KnownValues) {
  EXPECT_EQ(det_exp(0.0), 1.0);
  EXPECT_NEAR(det_exp(1.0), 2.718281828459045, 1e-14);
  EXPECT_NEAR(det_exp(-1.0), 0.36787944117144233, 1e-15);
}

TEST(DetExp, MatchesLibmAcrossRange) {
  data::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    double x = rng.uniform(-700.0, 700.0);
    double want = std::exp(x);
    EXPECT_NEAR(det_exp(x), want, want * 4e-15) << x;
  }
}

TEST(DetExp, OverflowAndUnderflow) {
  EXPECT_TRUE(std::isinf(det_exp(800.0)));
  EXPECT_EQ(det_exp(-800.0), 0.0);
  // Denormal-range results stay nonzero and close to libm.
  double x = -730.0;
  double want = std::exp(x);
  EXPECT_GT(det_exp(x), 0.0);
  EXPECT_NEAR(det_exp(x), want, want * 1e-10 + 5e-324);
}

TEST(DetExpLog, RoundTrip) {
  data::Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    double x = std::pow(10.0, rng.uniform(-30, 30)) * (0.5 + rng.uniform());
    EXPECT_NEAR(det_exp(det_log(x)), x, x * 1e-13) << x;
  }
}

TEST(RoundNearestEven, ExactTieBoundariesAcrossMagnitudes) {
  // k + 0.5 must round to the even neighbour for every magnitude where the
  // tie is representable.
  for (int e = 1; e < 50; ++e) {  // 2^e is even for e >= 1
    double k = std::ldexp(1.0, e);
    EXPECT_EQ(round_nearest_even(k + 0.5), k) << e;
    EXPECT_EQ(round_nearest_even(k + 1.5), k + 2.0) << e;
    EXPECT_EQ(round_nearest_even(-(k + 0.5)), -k) << e;
  }
}

TEST(RoundNearestEven, Monotone) {
  data::Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    double a = rng.uniform(-1e6, 1e6);
    double b = a + rng.uniform() * 10;
    EXPECT_LE(round_nearest_even(a), round_nearest_even(b));
  }
}

TEST(DetLog, MonotoneNearOne) {
  // The sqrt(2) mantissa-split boundary must not break monotonicity.
  double prev = det_log(0.5);
  for (double x = 0.5; x < 2.5; x += 1e-4) {
    double l = det_log(x);
    EXPECT_GE(l, prev) << x;
    prev = l;
  }
}

TEST(DetExp, MonotoneAcrossReductionBoundaries) {
  // k*ln2 boundaries in the argument reduction must not create steps.
  double prev = det_exp(-5.0);
  for (double x = -5.0; x < 5.0; x += 1e-3) {
    double e = det_exp(x);
    EXPECT_GE(e, prev) << x;
    prev = e;
  }
}

TEST(DetExp, DenormalBoundaryContinuity) {
  // Around the normal/denormal boundary (exp(x) ~ 2^-1022) results stay
  // positive, finite, and within relative tolerance of libm.
  for (double x = -708.0; x > -745.0; x -= 0.5) {
    double got = det_exp(x);
    double want = std::exp(x);
    EXPECT_GT(got, 0.0) << x;
    EXPECT_NEAR(got, want, want * 1e-9 + 1e-320) << x;
  }
}

TEST(Traits, BitPatternHelpers) {
  EXPECT_TRUE(is_nan_bits<float>(to_bits(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_TRUE(is_inf_bits<float>(to_bits(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(is_inf_bits<float>(to_bits(-std::numeric_limits<float>::infinity())));
  EXPECT_FALSE(is_nan_bits<float>(to_bits(1.0f)));
  EXPECT_TRUE(is_finite_bits<float>(to_bits(1.0f)));
  EXPECT_FALSE(is_finite_bits<double>(to_bits(std::numeric_limits<double>::infinity())));
  // The denormal limit really is the boundary of the denormal patterns.
  EXPECT_EQ(FloatTraits<float>::denormal_limit, to_bits(FloatTraits<float>::min_normal));
  EXPECT_EQ(FloatTraits<double>::denormal_limit, to_bits(FloatTraits<double>::min_normal));
}
