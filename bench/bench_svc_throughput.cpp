// Batch-compression service throughput: aggregate GB/s over the synthetic
// suite mix vs. worker count.
//
// The workload is the checkpoint/dump shape the service targets (cuSZ+ /
// FZ-GPU motivation: coarse-grained batch throughput, not single-buffer
// latency): every file of every synthetic suite is one job, all jobs are
// submitted at once, and the batch is timed end to end (plan + chunk fan-out
// + assembly). Each configuration also re-verifies the determinism
// invariant: entry bytes must equal single-threaded pfpl::compress.
//
// Output columns: threads, wall ms, aggregate GB/s (input bytes / wall),
// speedup vs. 1 thread, steal count, peak queue depth. Scaling tops out at
// the machine's core count — on fewer cores than workers the extra threads
// just time-slice.
// Observability flags:
//   --trace FILE       write a Chrome trace of the run (enables obs)
//   --report FILE      write the obs RunReport JSON (enables obs)
//   --overhead-check   measure the pay-for-what-you-use claim: the 4-thread
//                      configuration is timed with observability disabled and
//                      enabled; the delta is printed and the disabled run is
//                      asserted to have recorded nothing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/pfpl.hpp"
#include "data/synthetic.hpp"
#include "obs/flight.hpp"
#include "obs/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "svc/batch.hpp"

using namespace repro;

namespace {

/// Median batch wall time in ms over `reps` runs.
double median_batch_ms(svc::BatchCompressor& batch, const std::vector<svc::Job>& jobs,
                       int reps, std::vector<svc::JobResult>* out) {
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    *out = batch.run(jobs);
    times.push_back(t.seconds() * 1e3);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, report_path;
  bool overhead_check = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) trace_path = argv[++i];
    else if (!std::strcmp(argv[i], "--report") && i + 1 < argc) report_path = argv[++i];
    else if (!std::strcmp(argv[i], "--overhead-check")) overhead_check = true;
  }
  if (!trace_path.empty() || !report_path.empty()) obs::set_enabled(true);

  // Laptop-scale mix: every suite, 2 files each, ~256K values per file.
  auto suites = data::generate_all(/*target_values=*/1 << 18, /*max_files=*/2);
  std::vector<svc::Job> jobs;
  std::size_t total_bytes = 0;
  for (const auto& suite : suites) {
    for (const auto& file : suite.files) {
      jobs.push_back({suite.spec.name + "/" + file.name, file.field(),
                      pfpl::Params{1e-3, EbType::ABS}});
      total_bytes += file.byte_size();
    }
  }
  std::printf("svc batch throughput: %zu jobs, %.1f MB total\n", jobs.size(),
              total_bytes / 1e6);

  // Reference streams for the determinism re-check.
  std::vector<Bytes> reference;
  reference.reserve(jobs.size());
  for (const auto& j : jobs) reference.push_back(pfpl::compress(j.field, j.params));

  std::printf("%8s %10s %10s %9s %8s %8s\n", "threads", "wall_ms", "GB/s", "speedup",
              "stolen", "depth");
  double base_ms = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    svc::BatchCompressor batch({.threads = threads});
    // Median-of-3 protocol (scaled down from the paper's 9 for batch size).
    std::vector<svc::JobResult> results;
    double best_ms = median_batch_ms(batch, jobs, 3, &results);

    bool identical = results.size() == reference.size();
    for (std::size_t i = 0; identical && i < results.size(); ++i)
      identical = !results[i].failed && results[i].stream == reference[i];
    if (!identical) {
      std::fprintf(stderr, "FAIL: threads=%u produced non-identical output\n", threads);
      return 1;
    }

    if (threads == 1) base_ms = best_ms;
    const svc::SvcStats& st = batch.stats();
    std::printf("%8u %10.2f %10.3f %8.2fx %8llu %8llu\n", threads, best_ms,
                total_bytes / 1e6 / best_ms, base_ms / best_ms,
                static_cast<unsigned long long>(st.tasks_stolen),
                static_cast<unsigned long long>(st.peak_queue_depth));
  }

  if (overhead_check) {
    // Pay-for-what-you-use: time the 4-thread batch with observability off,
    // then on. The disabled run must record nothing; the delta quantifies
    // the cost of leaving the instrumentation compiled in but switched off
    // vs. fully active.
    const bool was_enabled = obs::enabled();
    std::vector<svc::JobResult> scratch;

    obs::set_enabled(false);
    obs::TraceRecorder::global().clear();
    obs::MetricsRegistry::global().reset();
    svc::BatchCompressor off_batch({.threads = 4});
    double off_ms = median_batch_ms(off_batch, jobs, 5, &scratch);
    if (obs::TraceRecorder::global().event_count() != 0) {
      std::fprintf(stderr, "FAIL: disabled observability recorded spans\n");
      return 1;
    }
    // The kernel timers ride the same gate: a disabled run must attribute
    // nothing (no clock reads happened, so no bytes/latency either).
    for (const obs::KernelStat& st : obs::kernel_stats()) {
      if (st.calls != 0 || st.bytes != 0) {
        std::fprintf(stderr, "FAIL: disabled observability recorded kernel '%s'\n",
                     st.name);
        return 1;
      }
    }
    // Nobody configured the flight recorder here, so its sampler thread must
    // not exist — disabled observability means no background threads at all.
    if (obs::FlightRecorder::global().running()) {
      std::fprintf(stderr, "FAIL: flight-recorder sampler running unrequested\n");
      return 1;
    }

    obs::set_enabled(true);
    svc::BatchCompressor on_batch({.threads = 4});
    double on_ms = median_batch_ms(on_batch, jobs, 5, &scratch);
    obs::set_enabled(was_enabled);

    double delta_pct = (on_ms - off_ms) / off_ms * 100.0;
    std::printf("overhead-check (4 threads): obs-off %.2f ms, obs-on %.2f ms, "
                "delta %+.2f%%\n", off_ms, on_ms, delta_pct);
  }

  if (!report_path.empty()) {
    obs::RunReport& report = obs::RunReport::global();
    report.set_meta("tool", "bench_svc_throughput");
    report.set_meta("jobs", std::to_string(jobs.size()));
    report.write(report_path);
    std::printf("report: %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().write_chrome_json(trace_path);
    std::printf("trace: %s\n", trace_path.c_str());
  }
  return 0;
}
