// ChunkStore — the two-tier facade the rest of the stack talks to.
//
// Tier 1 is the sharded in-memory ResultCache; tier 2 is the optional
// persistent SegmentStore (enabled by giving Options::dir a path). get()
// consults the cache, falls back to the segment log, and promotes log hits
// into the cache; put() fills both tiers. Either tier alone is a valid
// configuration: a serve-only deployment runs cache-only, `pfpl store`
// verbs run log-only with a tiny cache.
//
// Keys: compress_key() hashes (raw bytes, dtype, eb type, bound) — the full
// identity of a compression request, so the same data under a different
// bound never aliases. decompress_key() hashes the compressed stream under
// a distinct domain tag, so a stream's decompressed bytes and some other
// request's compressed bytes can never collide on one entry.
//
// Timing: get()/put() record store.get_us / store.put_us histograms (the
// bench harness turns those into advisory p50/p95/p99 baseline metrics).
#pragma once

#include <memory>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "store/cache.hpp"
#include "store/segment_log.hpp"

namespace repro::store {

/// Content hash of a compression request: raw input bytes + dtype + error
/// bound type + bound value. Two requests agree on the key iff a cached
/// compressed stream for one is byte-exact for the other.
common::Hash128 compress_key(const void* raw, std::size_t n, DType dtype, EbType eb,
                             double eps);

/// Content hash of a decompression request (domain-separated from
/// compress_key so the two kinds of entries never alias).
common::Hash128 decompress_key(const void* stream, std::size_t n);

class ChunkStore {
 public:
  struct Options {
    ResultCache::Options cache;
    std::string dir;  ///< empty = in-memory tier only
    u64 max_segment_bytes = 64u << 20;
    bool fsync_each_append = false;
  };

  explicit ChunkStore(const Options& opts);

  /// Cache, then segment log (promoting a log hit into the cache).
  bool get(const common::Hash128& key, Bytes& out);

  /// Fill both tiers. `meta` is recorded in the persistent frame (ignored by
  /// the cache tier); pass {} for decompress-side entries.
  void put(const common::Hash128& key, const Bytes& payload, const ChunkMeta& meta);

  /// Group insert: every entry lands in the cache, and the persistent tier
  /// takes them all through SegmentStore::append_batch — one lock, one
  /// flush, one fsync for the whole group. This is the ingest pipeline's
  /// append stage. Payloads are borrowed for the duration of the call.
  /// Returns the number of entries newly written to the persistent tier
  /// (0 when cache-only).
  std::size_t put_batch(const std::vector<SegmentStore::BatchEntry>& entries);

  bool contains(const common::Hash128& key) const;

  bool persistent() const { return log_ != nullptr; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  /// Null when Options::dir was empty.
  SegmentStore* log() { return log_.get(); }
  const SegmentStore* log() const { return log_.get(); }

  /// Flush the persistent tier (no-op when cache-only).
  void sync();

  /// JSON object with both tiers' exact stats — spliced into the server's
  /// STATS response and the svc RunReport section.
  std::string stats_json() const;

 private:
  ResultCache cache_;
  std::unique_ptr<SegmentStore> log_;
};

}  // namespace repro::store
