// Bit shuffling (bit transposition) — second lossless stage.
//
// Paper, Section III-D / Figure 4: output the most significant bit of all
// residuals, then the next bit, and so on. On the GPU this is done at warp
// granularity over tiles of 32 (float) or 64 (double) values using
// log2(wordsize) warp-shuffle steps (Section III-E); the CPU code performs
// the identical tile-wise transposition so both devices produce the same
// bytes. A tile is a square bit matrix (32x32 or 64x64) and transposition is
// its own inverse.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace repro::bits {

/// Transpose a 32x32 bit matrix held as 32 u32 words, in place.
/// Self-inverse. (Hacker's Delight-style masked swap, log2(32) = 5 steps —
/// the CPU mirror of the warp-shuffle implementation.)
void transpose_bits_32(u32* a);

/// Transpose a 64x64 bit matrix held as 64 u64 words, in place. Self-inverse.
void transpose_bits_64(u64* a);

/// Tile-wise bit shuffle over `n` words; `n` must be a multiple of the tile
/// size (32 for u32, 64 for u64). Self-inverse, so the same call performs
/// the unshuffle.
void bitshuffle(u32* w, std::size_t n);
void bitshuffle(u64* w, std::size_t n);

}  // namespace repro::bits
