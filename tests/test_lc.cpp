// Tests for the mini-LC framework: every component round-trips on arbitrary
// data, pipelines compose and invert correctly, the search driver verifies
// candidates, and the PFPL pipeline emerges as a strong candidate on smooth
// quantized data (the Section III-D design story).
#include <gtest/gtest.h>

#include <cmath>

#include "core/quantizers.hpp"
#include "data/rng.hpp"
#include "lc/search.hpp"
#include "lc/stage.hpp"

using namespace repro;
using namespace repro::lc;

namespace {

std::vector<u8> random_bytes(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<u8> d(n);
  for (auto& b : d) b = static_cast<u8>(rng.next_u64());
  return d;
}

std::vector<u8> smooth_quantized_chunk(std::size_t words, u64 seed) {
  data::Rng rng(seed);
  pfpl::AbsQuantizer<float> q(1e-3);
  std::vector<u8> d(words * 4);
  u32* w = reinterpret_cast<u32*>(d.data());
  double acc = 0;
  for (std::size_t i = 0; i < words; ++i) {
    acc += 0.002 * rng.gaussian();
    w[i] = q.encode(static_cast<float>(acc));
  }
  return d;
}

void stage_roundtrip(const StagePtr& st, std::vector<u8> data) {
  std::vector<u8> orig = data;
  std::size_t in_size = data.size();
  st->encode(data);
  st->decode(data, in_size);
  EXPECT_EQ(data, orig) << st->name();
}

}  // namespace

TEST(LcStages, AllComponentsRoundTripOnRandomData) {
  for (int wb : {32, 64}) {
    for (const auto& st : component_library(wb)) {
      stage_roundtrip(st, random_bytes(16384, 11));
      stage_roundtrip(st, random_bytes(0, 12));
      stage_roundtrip(st, random_bytes(16384, 13));
      stage_roundtrip(st, std::vector<u8>(16384, 0));
      stage_roundtrip(st, std::vector<u8>(16384, 0xFF));
    }
  }
}

TEST(LcStages, AllComponentsRoundTripOnOddSizes) {
  for (int wb : {32, 64}) {
    for (const auto& st : component_library(wb)) {
      for (std::size_t n : {1u, 3u, 7u, 8u, 63u, 257u, 4095u})
        stage_roundtrip(st, random_bytes(n, n));
    }
  }
}

TEST(LcStages, NamesAreUnique) {
  for (int wb : {32, 64}) {
    auto lib = component_library(wb);
    for (std::size_t i = 0; i < lib.size(); ++i)
      for (std::size_t j = i + 1; j < lib.size(); ++j)
        EXPECT_NE(lib[i]->name(), lib[j]->name());
  }
}

TEST(LcPipeline, EmptyPipelineIsIdentityPlusHeader) {
  Pipeline p;
  auto data = random_bytes(1000, 21);
  auto enc = p.encode(data);
  EXPECT_EQ(enc.size(), data.size() + 4);  // just the size-table header
  EXPECT_EQ(p.decode(enc, data.size()), data);
}

TEST(LcPipeline, PfplPipelineRoundTrips) {
  Pipeline p({make_diff_negabinary(32), make_bitshuffle(32), make_zerobyte()});
  EXPECT_EQ(p.name(), "diff_nb32+bshfl32+zbe");
  auto data = smooth_quantized_chunk(4096, 22);
  auto enc = p.encode(data);
  EXPECT_LT(enc.size(), data.size());  // compresses smooth data
  EXPECT_EQ(p.decode(enc, data.size()), data);
}

TEST(LcPipeline, MultipleSizeChangingStages) {
  // zbe followed by rle followed by lz: three size-changing stages whose
  // inverse sizes come from the recorded table.
  Pipeline p({make_diff_negabinary(32), make_zerobyte(), make_rle(), make_lz()});
  auto data = smooth_quantized_chunk(4096, 23);
  auto enc = p.encode(data);
  EXPECT_EQ(p.decode(enc, data.size()), data);
}

TEST(LcPipeline, CorruptStreamThrowsOrMismatches) {
  Pipeline p({make_diff_negabinary(32), make_bitshuffle(32), make_zerobyte()});
  auto data = smooth_quantized_chunk(4096, 24);
  auto enc = p.encode(data);
  auto bad = enc;
  bad.resize(bad.size() / 2);
  EXPECT_THROW(p.decode(bad, data.size()), CompressionError);
}

TEST(LcPipeline, RandomPipelinesAlwaysInvert) {
  // Property test: any random pipeline of library stages must invert.
  data::Rng rng(25);
  auto lib32 = component_library(32);
  for (int t = 0; t < 60; ++t) {
    std::vector<StagePtr> stages;
    int depth = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int s = 0; s < depth; ++s) stages.push_back(lib32[rng.next_u64() % lib32.size()]);
    Pipeline p(stages);
    auto data = t % 2 ? random_bytes(8192, t) : smooth_quantized_chunk(2048, t);
    auto enc = p.encode(data);
    EXPECT_EQ(p.decode(enc, data.size()), data) << p.name();
  }
}

TEST(LcSearch, FindsCompressingPipelines) {
  std::vector<std::vector<u8>> chunks;
  for (int i = 0; i < 4; ++i) chunks.push_back(smooth_quantized_chunk(4096, 30 + i));
  SearchConfig cfg;
  cfg.max_stages = 2;
  auto results = search(chunks, cfg);
  ASSERT_FALSE(results.empty());
  // Every result round-tripped by construction; the best must compress.
  EXPECT_GT(results.front().ratio, 2.0);
  // Sorted descending by ratio.
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].ratio, results[i].ratio);
}

TEST(LcSearch, PfplPipelineRanksHighly) {
  // The Section III-D story: the shipped 3-stage pipeline should land in the
  // top tier of the depth-3 search on smooth quantized data.
  std::vector<std::vector<u8>> chunks;
  for (int i = 0; i < 3; ++i) chunks.push_back(smooth_quantized_chunk(4096, 40 + i));
  SearchConfig cfg;
  cfg.max_stages = 3;
  auto results = search(chunks, cfg);
  ASSERT_GT(results.size(), 50u);
  std::size_t rank = results.size();
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].name == "diff_nb32+bshfl32+zbe") {
      rank = i;
      break;
    }
  ASSERT_LT(rank, results.size()) << "pipeline not found";
  EXPECT_LT(rank, results.size() / 5) << "expected top-20% rank, got " << rank;
}

TEST(LcSearch, EvaluateRejectsNothingThatRoundTrips) {
  std::vector<std::vector<u8>> chunks{random_bytes(4096, 50)};
  Candidate c = evaluate(Pipeline({make_lz()}), chunks);
  EXPECT_TRUE(c.roundtrip);
  EXPECT_GT(c.enc_mbps, 0.0);
}
