// Crash reports — an async-signal-safe "black box" dump on fatal signals.
//
// install_crash_handler(dir) registers SIGSEGV/SIGABRT/SIGBUS handlers that
// write `<dir>/crash-<pid>.json` and then re-raise with the default
// disposition, so the process still dies with the original signal (wait
// status is unchanged — supervisors and CI observe the real crash).
//
// Signal handlers may only call async-signal-safe functions, so nothing can
// be *formatted* inside the handler. Instead the FlightRecorder (or any
// caller) keeps a fully pre-rendered report body registered via
// set_crash_body(): a JSON object rendered WITHOUT its closing brace. The
// handler just write(2)s the active body and appends
// `,"signal":"SIGSEGV","signo":11}` with hand-rolled decimal formatting.
// Bodies double-buffer behind an atomic index — the renderer fills the
// inactive slot and flips, the handler only ever reads the active slot, and
// retired bodies are kept alive so a handler racing a flip still reads valid
// memory.
//
// install time renders a minimal body (schema + build info) so a crash
// before the first flight-recorder tick still produces a parseable report.
#pragma once

#include <string>

namespace repro::obs {

/// Install the fatal-signal handlers writing reports into `dir` (created if
/// missing). Safe to call again to change the directory. Throws
/// CompressionError when the directory cannot be created.
void install_crash_handler(const std::string& dir);

bool crash_handler_installed();

/// Register the pre-rendered report body: a JSON object WITHOUT the final
/// closing '}' (the handler appends the signal fields and the brace).
/// Thread-safe against the handler; call from one renderer thread at a time.
void set_crash_body(const std::string& body_without_closing_brace);

/// The minimal body installed before any flight-recorder tick: schema,
/// build info, pid. Returned without the closing brace.
std::string minimal_crash_body();

/// The path the handler would write for this process (for tests and smoke
/// scripts); empty when no handler is installed.
std::string crash_report_path();

}  // namespace repro::obs
