// Tests for the asynchronous staged ingest pipeline: byte-identity with the
// serial compressor, in-order completion, dedup-probe reuse, bounded-queue
// backpressure (byte budget held under a slow consumer), first-error
// cancellation without deadlock, and the audit hook.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/pfpl.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/queue.hpp"
#include "store/store.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

constexpr double kEps = 1e-3;

/// Fresh per-test scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("pfpl_test_ingest_" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<float> make_field_values(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>((i % 97) * 0.25 + seed);
  return v;
}

Bytes as_bytes(const std::vector<float>& v) {
  const u8* p = reinterpret_cast<const u8*>(v.data());
  return Bytes(p, p + v.size() * sizeof(float));
}

ingest::IngestPipeline::Options base_options() {
  ingest::IngestPipeline::Options o;
  o.dtype = DType::F32;
  o.params.eps = kEps;
  o.threads = 2;
  return o;
}

std::vector<ingest::Item> memory_items(std::size_t count, std::size_t values) {
  std::vector<ingest::Item> items;
  for (std::size_t i = 0; i < count; ++i)
    items.push_back(ingest::Item{"item" + std::to_string(i), "",
                                 as_bytes(make_field_values(values, unsigned(i)))});
  return items;
}

/// The serial reference: what pfpl::compress says the stream must be.
Bytes serial_stream(std::size_t values, unsigned seed) {
  const std::vector<float> v = make_field_values(values, seed);
  pfpl::Params params;
  params.eps = kEps;
  return pfpl::compress(Field(v.data(), v.size()), params);
}

}  // namespace

// ------------------------------------------------------------- byte identity

TEST(IngestPipeline, StreamsByteIdenticalToSerialCompress) {
  ingest::IngestPipeline pipe(base_options());
  const std::size_t kValues = 6000;  // > one chunk, odd tail
  std::vector<ingest::Result> rs = pipe.run(memory_items(5, kValues));
  ASSERT_EQ(rs.size(), 5u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_FALSE(rs[i].failed) << rs[i].error;
    EXPECT_FALSE(rs[i].cancelled);
    EXPECT_EQ(rs[i].name, "item" + std::to_string(i));
    EXPECT_EQ(rs[i].raw_bytes, kValues * sizeof(float));
    EXPECT_EQ(rs[i].stream, serial_stream(kValues, unsigned(i)));
    EXPECT_EQ(rs[i].header.value_count, kValues);
  }
  const ingest::IngestStats& st = pipe.stats();
  EXPECT_EQ(st.files, 5u);
  EXPECT_EQ(st.files_failed, 0u);
  EXPECT_GT(st.chunks, 0u);
  EXPECT_EQ(st.bytes_in, 5u * kValues * sizeof(float));
}

TEST(IngestPipeline, FileItemsMatchMemoryItems) {
  ScratchDir dir("files");
  const std::size_t kValues = 3000;
  std::vector<ingest::Item> items;
  for (unsigned i = 0; i < 3; ++i) {
    const Bytes raw = as_bytes(make_field_values(kValues, i));
    const fs::path p = dir.path() / ("f" + std::to_string(i) + ".raw");
    std::FILE* out = std::fopen(p.string().c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), out), raw.size());
    std::fclose(out);
    items.push_back(ingest::Item{"f" + std::to_string(i), p.string(), {}});
  }
  ingest::IngestPipeline::Options o = base_options();
  o.read_buffer_bytes = 1024;  // force many buffer seams per file
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(std::move(items));
  ASSERT_EQ(rs.size(), 3u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_FALSE(rs[i].failed) << rs[i].error;
    EXPECT_EQ(rs[i].raw_bytes, kValues * sizeof(float));
    EXPECT_EQ(rs[i].stream, serial_stream(kValues, i));
  }
}

// --------------------------------------------------------- in-order delivery

TEST(IngestPipeline, ProgressFiresInSubmissionOrder) {
  ingest::IngestPipeline::Options o = base_options();
  std::vector<std::size_t> order;
  o.progress = [&](const ingest::Result& r, std::size_t index, std::size_t total) {
    EXPECT_EQ(total, 8u);
    EXPECT_FALSE(r.failed);
    order.push_back(index);
  };
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(memory_items(8, 2000));
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  for (const ingest::Result& r : rs) EXPECT_FALSE(r.failed) << r.error;
}

TEST(IngestPipeline, EmptyRunReturnsEmpty) {
  ingest::IngestPipeline pipe(base_options());
  EXPECT_TRUE(pipe.run({}).empty());
  EXPECT_EQ(pipe.stats().files, 0u);
}

// ----------------------------------------------------------- dedup / batches

TEST(IngestPipeline, DedupProbeReturnsByteIdenticalStreams) {
  ScratchDir dir("dedup");
  store::ChunkStore::Options so;
  so.dir = (dir.path() / "store").string();
  store::ChunkStore cs(so);

  ingest::IngestPipeline::Options o = base_options();
  o.store = &cs;
  ingest::IngestPipeline pipe(o);

  std::vector<ingest::Result> first = pipe.run(memory_items(4, 4000));
  for (const ingest::Result& r : first) ASSERT_FALSE(r.failed) << r.error;
  const ingest::IngestStats st1 = pipe.stats();
  EXPECT_EQ(st1.probe_hits, 0u);
  EXPECT_EQ(st1.probe_misses, 4u);
  EXPECT_EQ(st1.appended, 4u);
  EXPECT_GE(st1.append_batches, 1u);

  // Second pass over identical content: every item is answered by the
  // dedup probe, nothing new is appended, streams are byte-identical.
  std::vector<ingest::Result> second = pipe.run(memory_items(4, 4000));
  const ingest::IngestStats st2 = pipe.stats();
  EXPECT_EQ(st2.probe_hits, 4u);
  EXPECT_EQ(st2.files_reused, 4u);
  EXPECT_EQ(st2.appended, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(second[i].reused);
    EXPECT_EQ(second[i].stream, first[i].stream);
    EXPECT_EQ(second[i].stream, serial_stream(4000, unsigned(i)));
  }
}

TEST(IngestPipeline, AppendBatchingGroupsItems) {
  ScratchDir dir("batch");
  store::ChunkStore::Options so;
  so.dir = (dir.path() / "store").string();
  store::ChunkStore cs(so);

  ingest::IngestPipeline::Options o = base_options();
  o.store = &cs;
  o.batch_items = 4;
  // Stall the encode stage feed so the append queue accumulates and the
  // greedy batcher actually groups (without it, a fast consumer can drain
  // item-by-item and legitimately produce one batch per item).
  o.stage_cost_us[3] = 2000;
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(memory_items(8, 2000));
  for (const ingest::Result& r : rs) ASSERT_FALSE(r.failed) << r.error;
  const ingest::IngestStats& st = pipe.stats();
  EXPECT_EQ(st.appended, 8u);
  // 8 appended chunks in at most 8 group commits; batching must do no worse
  // than one fsync per chunk and the store must agree on the count.
  EXPECT_LE(st.append_batches, 8u);
  EXPECT_GE(st.append_batches, 1u);
  const store::SegmentStore::VerifyReport rep = cs.log()->verify();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.frames_ok, 8u);
}

// ------------------------------------------------------------- backpressure

TEST(IngestPipeline, ByteBudgetHoldsUnderSlowConsumer) {
  // Append stage stalled 3ms/item via the test hook; reader would otherwise
  // race ahead and buffer the whole input set.
  ::setenv("PFPL_INGEST_TEST_SLOW_STAGE_US", "3000", 1);
  ingest::IngestPipeline::Options o = base_options();
  const std::size_t kValues = 8192;                   // 32 KiB raw per item
  const std::size_t item_bytes = kValues * sizeof(float);
  o.queue_items = 64;                                 // items bound never trips
  o.queue_bytes = 3 * item_bytes;                     // bytes bound does
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(memory_items(10, kValues));
  ::unsetenv("PFPL_INGEST_TEST_SLOW_STAGE_US");
  for (const ingest::Result& r : rs) ASSERT_FALSE(r.failed) << r.error;
  const ingest::IngestStats& st = pipe.stats();
  EXPECT_GT(st.peak_queue_bytes, 0u);
  EXPECT_LE(st.peak_queue_bytes, o.queue_bytes);
  EXPECT_LE(st.peak_queue_items, 3u);
}

TEST(BoundedQueue, AdmitsOneOversizedItemWhenEmpty) {
  ingest::BoundedQueue<int> q(4, 100);
  EXPECT_TRUE(q.push(1, 1000));  // larger than the whole budget, queue empty
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
}

TEST(BoundedQueue, CancelWakesBlockedPusher) {
  ingest::BoundedQueue<int> q(1, 100);
  ASSERT_TRUE(q.push(1, 10));
  std::thread t([&] {
    // Blocks: item bound is full. Must wake with false on cancel, not hang.
    EXPECT_FALSE(q.push(2, 10));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.cancel();
  t.join();
  int v = 0;
  EXPECT_FALSE(q.pop(v));  // cancelled queues drop their contents
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  ingest::BoundedQueue<int> q(8, 1 << 20);
  ASSERT_TRUE(q.push(1, 4));
  ASSERT_TRUE(q.push(2, 4));
  q.close();
  EXPECT_FALSE(q.push(3, 4));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));
}

// ------------------------------------------------------- error / cancellation

TEST(IngestPipeline, SoftErrorContinuesRemainingItems) {
  std::vector<ingest::Item> items = memory_items(4, 2000);
  items[1] = ingest::Item{"missing", "/nonexistent/pfpl-test-input.raw", {}};
  ingest::IngestPipeline pipe(base_options());
  std::vector<ingest::Result> rs = pipe.run(std::move(items));
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_TRUE(rs[1].failed);
  EXPECT_FALSE(rs[1].error.empty());
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_FALSE(rs[i].failed) << rs[i].error;
    EXPECT_FALSE(rs[i].cancelled);
    EXPECT_FALSE(rs[i].stream.empty());
  }
  EXPECT_EQ(pipe.stats().files_failed, 1u);
  EXPECT_EQ(pipe.stats().files_cancelled, 0u);
}

TEST(IngestPipeline, FailFastCancelsUpstreamWithoutDeadlock) {
  // Item 0 fails in the read stage immediately; with fail_fast every later
  // item must come back `cancelled`, the failing item must keep its real
  // error, and run() must return (no stage may deadlock on a cancelled
  // queue). The slow-append hook widens the window where items would be
  // in-flight if cancellation failed to drop them.
  ::setenv("PFPL_INGEST_TEST_SLOW_STAGE_US", "2000", 1);
  std::vector<ingest::Item> items = memory_items(6, 2000);
  items[0] = ingest::Item{"missing", "/nonexistent/pfpl-test-input.raw", {}};
  ingest::IngestPipeline::Options o = base_options();
  o.fail_fast = true;
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(std::move(items));
  ::unsetenv("PFPL_INGEST_TEST_SLOW_STAGE_US");
  ASSERT_EQ(rs.size(), 6u);
  EXPECT_TRUE(rs[0].failed);
  EXPECT_FALSE(rs[0].cancelled);
  EXPECT_NE(rs[0].error.find("nonexistent"), std::string::npos) << rs[0].error;
  for (std::size_t i = 1; i < rs.size(); ++i) {
    EXPECT_TRUE(rs[i].cancelled) << "item " << i;
    EXPECT_TRUE(rs[i].stream.empty());
    EXPECT_EQ(rs[i].name, "item" + std::to_string(i));  // names survive drops
  }
  EXPECT_EQ(pipe.stats().files_failed, 1u);
  EXPECT_EQ(pipe.stats().files_cancelled, 5u);
}

TEST(IngestPipeline, MidStreamFailFastDeliversEarlierItems) {
  // The bad item sits in the middle: items before it complete normally,
  // items after it are cancelled. Exercises the cancel path while every
  // queue is actively carrying work.
  std::vector<ingest::Item> items = memory_items(8, 2000);
  items[4] = ingest::Item{"missing", "/nonexistent/pfpl-test-input.raw", {}};
  ingest::IngestPipeline::Options o = base_options();
  o.fail_fast = true;
  o.queue_items = 1;  // tight queues: the reader cannot race far ahead
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(std::move(items));
  ASSERT_EQ(rs.size(), 8u);
  int failed = 0, cancelled = 0, completed = 0;
  for (const ingest::Result& r : rs) {
    if (r.failed) ++failed;
    else if (r.cancelled) ++cancelled;
    else {
      ++completed;
      EXPECT_FALSE(r.stream.empty());
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_GE(cancelled, 1);  // at least the items the reader never reached
  EXPECT_EQ(failed + cancelled + completed, 8);
  // Completed items are still byte-identical to the serial compressor.
  for (std::size_t i = 0; i < 4; ++i) {
    if (!rs[i].failed && !rs[i].cancelled) {
      EXPECT_EQ(rs[i].stream, serial_stream(2000, unsigned(i)));
    }
  }
}

// ------------------------------------------------------------------- audit

TEST(IngestPipeline, AuditVerifiesEveryStream) {
  ScratchDir dir("audit");
  store::ChunkStore::Options so;
  so.dir = (dir.path() / "store").string();
  store::ChunkStore cs(so);
  ingest::IngestPipeline::Options o = base_options();
  o.store = &cs;
  o.audit = true;
  ingest::IngestPipeline pipe(o);
  std::vector<ingest::Result> rs = pipe.run(memory_items(3, 3000));
  for (const ingest::Result& r : rs) {
    EXPECT_FALSE(r.failed) << r.error;
    EXPECT_TRUE(r.audited);
    EXPECT_EQ(r.audit_violations, 0u);
  }
  EXPECT_EQ(pipe.stats().audited, 3u);
  EXPECT_EQ(pipe.stats().audit_violations, 0u);

  // Reused items are audited too: the probe-hit stream gets the same
  // decompress-and-verify treatment as a freshly encoded one.
  std::vector<ingest::Result> again = pipe.run(memory_items(3, 3000));
  for (const ingest::Result& r : again) {
    EXPECT_TRUE(r.reused);
    EXPECT_TRUE(r.audited);
    EXPECT_EQ(r.audit_violations, 0u);
  }
}

// ------------------------------------------------------------ probe helper

TEST(ProbeCompress, MissThenHit) {
  store::ChunkStore cs(store::ChunkStore::Options{});  // memory-only
  const std::vector<float> v = make_field_values(2000, 7);
  const std::size_t raw_n = v.size() * sizeof(float);

  Bytes stream;
  ingest::ProbeResult miss =
      ingest::probe_compress(cs, v.data(), raw_n, DType::F32, EbType::ABS, kEps, stream);
  EXPECT_FALSE(miss.hit);

  pfpl::Params params;
  params.eps = kEps;
  const Bytes encoded = pfpl::compress(Field(v.data(), v.size()), params);
  cs.put(miss.key, encoded, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw_n});

  ingest::ProbeResult hit =
      ingest::probe_compress(cs, v.data(), raw_n, DType::F32, EbType::ABS, kEps, stream);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.key, miss.key);
  EXPECT_EQ(stream, encoded);
}
