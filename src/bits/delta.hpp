// Word-wise difference coding (delta modulation) — first lossless stage.
//
// Each word is replaced by itself minus the previous word (the first word is
// kept, i.e. differenced against 0), with wraparound arithmetic so the
// transform is a bijection regardless of the word values. Combined with
// negabinary conversion this turns slowly varying bin-number sequences into
// words with long runs of leading zero bits (paper Figure 3).
#pragma once

#include <cstddef>

#include "bits/negabinary.hpp"
#include "common/types.hpp"

namespace repro::bits {

/// In-place forward delta + negabinary over `n` words.
template <typename U>
inline void delta_negabinary_encode(U* w, std::size_t n) {
  U prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    U cur = w[i];
    w[i] = to_negabinary<U>(static_cast<U>(cur - prev));
    prev = cur;
  }
}

/// In-place inverse: negabinary decode + prefix-sum reconstruction.
template <typename U>
inline void delta_negabinary_decode(U* w, std::size_t n) {
  U prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev = static_cast<U>(prev + from_negabinary<U>(w[i]));
    w[i] = prev;
  }
}

}  // namespace repro::bits
