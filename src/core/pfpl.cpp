#include "core/pfpl.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <exception>
#include <cstring>
#include <numeric>

#include "core/chunked.hpp"
#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "fpmath/det_math.hpp"
#include "obs/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/gpu_pipeline.hpp"
#include "sim/lookback.hpp"

namespace repro::pfpl {
namespace {

/// Hot-path metric handles, resolved once (registry lookups take a lock;
/// the add() calls after that are sharded and lock-free — see obs/metrics.hpp).
struct CoreMetrics {
  obs::Counter& chunks_encoded;
  obs::Counter& chunks_raw;
  obs::Counter& chunks_decoded;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Histogram& encode_chunk_us;
  static CoreMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static CoreMetrics m{r.counter("core.chunks_encoded"),
                         r.counter("core.chunks_raw"),
                         r.counter("core.chunks_decoded"),
                         r.counter("core.bytes_in"),
                         r.counter("core.bytes_out"),
                         r.histogram("core.encode_chunk_us")};
    return m;
  }
};

/// Min/max reduction over the finite values of the input (NOA needs the value
/// range, Section III-A; the reduction result is stored in the header so the
/// decoder never recomputes it).
template <typename T>
double finite_range(const T* d, std::size_t n) {
  bool any = false;
  T mn{}, mx{};
  for (std::size_t i = 0; i < n; ++i) {
    T v = d[i];
    if (!std::isfinite(v)) continue;
    if (!any) {
      mn = mx = v;
      any = true;
    } else {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  return any ? static_cast<double>(mx) - static_cast<double>(mn) : 0.0;
}

/// Quantize one chunk's slice and run the (CPU or GPU-sim) lossless pipeline.
/// The quantizer is fused into the chunk loop exactly as in the paper
/// ("the most important optimization is fusing all four stages ... including
/// the quantizer"): the input slice is read once, everything else happens in
/// chunk-local buffers.
template <typename T, typename Q>
u32 encode_one_chunk(const T* data, std::size_t beg, std::size_t k, const Q& q,
                     Executor exec, std::vector<u8>& payload) {
  OBS_SPAN("pfpl.encode_chunk");
  const u64 t0 = obs::enabled() ? obs::TraceRecorder::global().now_ns() : 0;
  using Bits = typename fpmath::FloatTraits<T>::Bits;
  std::vector<Bits> words(k);
  {
    OBS_SPAN("pfpl.quantize");
    obs::KernelTimer kt(obs::Kernel::Quantize, k * sizeof(T));
    for (std::size_t i = 0; i < k; ++i) words[i] = q.encode(data[beg + i]);
  }
  bool compressed = exec == Executor::GpuSim
                        ? sim::gpu_chunk_encode(words.data(), k, payload)
                        : chunk_encode(words.data(), k, payload);
  u32 sz = static_cast<u32>(payload.size());
  if (obs::enabled()) {
    CoreMetrics& m = CoreMetrics::get();
    m.chunks_encoded.add(1);
    if (!compressed) m.chunks_raw.add(1);
    m.bytes_in.add(k * sizeof(T));
    m.bytes_out.add(sz);
    m.encode_chunk_us.record((obs::TraceRecorder::global().now_ns() - t0) / 1000);
  }
  return compressed ? sz : (sz | kRawChunkFlag);
}

template <typename T>
u32 encode_chunk_typed(const T* data, const Header& h, std::size_t c, Executor exec,
                       std::vector<u8>& payload) {
  using Bits = typename fpmath::FloatTraits<T>::Bits;
  constexpr std::size_t cw = chunk_words<Bits>();
  const std::size_t n = h.value_count;
  const std::size_t beg = c * cw;
  const std::size_t k = std::min(cw, n - beg);
  if (h.eb_type == EbType::REL) {
    RelQuantizer<T> q(h.eps, h.recon_param);
    return encode_one_chunk(data, beg, k, q, exec, payload);
  }
  AbsQuantizer<T> q(h.recon_param);
  return encode_one_chunk(data, beg, k, q, exec, payload);
}

template <typename T, typename Q>
std::vector<u8> decompress_typed(const Bytes& in, const Header& h, const Q& q,
                                 Executor exec) {
  using Bits = typename fpmath::FloatTraits<T>::Bits;
  constexpr std::size_t cw = chunk_words<Bits>();
  const std::size_t n = h.value_count;
  const std::size_t nchunks = h.chunk_count;
  // Header consistency: the chunk count is fully determined by the value
  // count, so a corrupted header cannot drive a bogus allocation (the
  // overflow-safe division avoids wrap-around on adversarial counts).
  if (n / cw + (n % cw != 0 ? 1 : 0) != nchunks)
    throw CompressionError("PFPL stream: header value/chunk count mismatch");
  const std::size_t table_off = sizeof(Header);
  if (in.size() < table_off + nchunks * sizeof(u32))
    throw CompressionError("PFPL stream: truncated chunk table");
  std::vector<u32> sizes(nchunks);
  std::memcpy(sizes.data(), in.data() + table_off, nchunks * sizeof(u32));

  // Prefix sum over chunk sizes locates every chunk (paper: "the decoder
  // computes a prefix sum over the stored chunk sizes").
  std::vector<u64> offsets(nchunks, 0);
  for (std::size_t c = 1; c < nchunks; ++c)
    offsets[c] = offsets[c - 1] + (sizes[c - 1] & ~kRawChunkFlag);
  const std::size_t payload_off = table_off + nchunks * sizeof(u32);

  std::vector<u8> out(n * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());

  auto do_chunk = [&](std::size_t c) {
    OBS_SPAN("pfpl.decode_chunk");
    std::size_t beg = c * cw;
    std::size_t k = std::min(cw, n - beg);
    std::size_t off = payload_off + offsets[c];
    std::size_t csize = sizes[c] & ~kRawChunkFlag;
    if (off + csize > in.size()) throw CompressionError("PFPL stream: truncated chunk");
    bool compressed = (sizes[c] & kRawChunkFlag) == 0;
    std::vector<Bits> words(k);
    if (exec == Executor::GpuSim)
      sim::gpu_chunk_decode(in.data() + off, csize, compressed, words.data(), k);
    else
      chunk_decode(in.data() + off, csize, compressed, words.data(), k);
    {
      OBS_SPAN("pfpl.dequantize");
      obs::KernelTimer kt(obs::Kernel::Dequantize, k * sizeof(T));
      for (std::size_t i = 0; i < k; ++i) values[beg + i] = q.decode(words[i]);
    }
    CoreMetrics::get().chunks_decoded.add(1);
  };

  if (exec == Executor::OpenMP) {
    // Exceptions (corrupt chunks) must not escape the parallel region.
    std::exception_ptr err;
#pragma omp parallel for schedule(dynamic)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nchunks); ++c) {
      try {
        do_chunk(static_cast<std::size_t>(c));
      } catch (...) {
#pragma omp critical
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) do_chunk(c);
  }
  return out;
}

template <typename T>
std::vector<u8> decompress_dispatch_eb(const Bytes& in, const Header& h, Executor exec) {
  switch (h.eb_type) {
    case EbType::ABS: {
      AbsQuantizer<T> q(h.recon_param);
      return decompress_typed<T>(in, h, q, exec);
    }
    case EbType::NOA: {
      AbsQuantizer<T> q(h.recon_param);
      return decompress_typed<T>(in, h, q, exec);
    }
    case EbType::REL: {
      RelQuantizer<T> q(h.eps, h.recon_param);
      return decompress_typed<T>(in, h, q, exec);
    }
  }
  throw CompressionError("PFPL stream: unknown error-bound type");
}

template <typename T>
void plan_header_typed(const T* data, std::size_t n, const Params& p, Header& h) {
  switch (p.eb) {
    case EbType::ABS: {
      h.recon_param = p.eps;
      AbsQuantizer<T> validate(p.eps);  // throws on invalid bound
      (void)validate;
      return;
    }
    case EbType::NOA: {
      if (!(p.eps >= 0.0) || !std::isfinite(p.eps))
        throw CompressionError("NOA error bound must be finite and non-negative");
      h.recon_param = p.eps * finite_range(data, n);
      AbsQuantizer<T> validate(h.recon_param);
      (void)validate;
      return;
    }
    case EbType::REL: {
      h.recon_param = fpmath::det_log1p(p.eps);
      RelQuantizer<T> validate(p.eps, h.recon_param);  // throws on invalid bound
      (void)validate;
      return;
    }
  }
  throw CompressionError("unknown error-bound type");
}

}  // namespace

std::size_t chunk_values(DType dtype) {
  return dtype == DType::F32 ? chunk_words<u32>() : chunk_words<u64>();
}

Header plan_header(const Field& in, const Params& p) {
  OBS_SPAN("pfpl.plan");
  Header h;
  h.dtype = in.dtype;
  h.eb_type = p.eb;
  h.eps = p.eps;
  const std::size_t n = in.count();
  if (in.dtype == DType::F32)
    plan_header_typed(static_cast<const float*>(in.data), n, p, h);
  else
    plan_header_typed(static_cast<const double*>(in.data), n, p, h);
  const std::size_t cw = chunk_values(in.dtype);
  h.value_count = n;
  h.chunk_count = static_cast<u32>((n + cw - 1) / cw);
  return h;
}

u32 encode_chunk(const Field& in, const Header& h, std::size_t c, Executor exec,
                 std::vector<u8>& out) {
  if (in.dtype == DType::F32)
    return encode_chunk_typed(static_cast<const float*>(in.data), h, c, exec, out);
  return encode_chunk_typed(static_cast<const double*>(in.data), h, c, exec, out);
}

Bytes assemble_stream(const Header& h, const std::vector<u32>& sizes,
                      const std::vector<Bytes>& payloads, Executor exec) {
  OBS_SPAN("pfpl.assemble");
  const std::size_t nchunks = h.chunk_count;
  // Concatenate. The GPU path computes the chunk offsets with the simulated
  // decoupled look-back scan (Section III-E); the result is the same
  // exclusive prefix sum the CPU path takes, so the bytes are identical.
  std::vector<u64> plain(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) plain[c] = sizes[c] & ~kRawChunkFlag;
  std::vector<u64> offsets;
  if (exec == Executor::GpuSim) {
    offsets = sim::lookback_exclusive_offsets(plain);
  } else {
    offsets.assign(nchunks, 0);
    std::exclusive_scan(plain.begin(), plain.end(), offsets.begin(), u64{0});
  }
  u64 total = nchunks ? offsets.back() + plain.back() : 0;

  Bytes out;
  out.reserve(sizeof(Header) + nchunks * sizeof(u32) + total);
  write_header(h, out);
  const u8* sp = reinterpret_cast<const u8*>(sizes.data());
  out.insert(out.end(), sp, sp + nchunks * sizeof(u32));
  std::size_t base = out.size();
  out.resize(base + total);
  for (std::size_t c = 0; c < nchunks; ++c)
    std::memcpy(out.data() + base + offsets[c], payloads[c].data(), plain[c]);
  return out;
}

Bytes compress(const Field& in, const Params& p) {
  OBS_SPAN("pfpl.compress");
  Header h = plan_header(in, p);
  const std::size_t nchunks = h.chunk_count;
  std::vector<Bytes> payloads(nchunks);
  std::vector<u32> sizes(nchunks, 0);

  if (p.exec == Executor::OpenMP) {
    // Dynamic scheduling mirrors the paper's dynamic chunk assignment for
    // load balance (chunks differ in compressibility).
#pragma omp parallel for schedule(dynamic)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nchunks); ++c) {
      sizes[c] = encode_chunk(in, h, static_cast<std::size_t>(c), p.exec, payloads[c]);
    }
  } else {
    for (std::size_t c = 0; c < nchunks; ++c)
      sizes[c] = encode_chunk(in, h, c, p.exec, payloads[c]);
  }
  return assemble_stream(h, sizes, payloads, p.exec);
}

std::vector<u8> decompress(const Bytes& stream, Executor exec) {
  OBS_SPAN("pfpl.decompress");
  Header h = read_header(stream);
  if (h.dtype == DType::F32) return decompress_dispatch_eb<float>(stream, h, exec);
  return decompress_dispatch_eb<double>(stream, h, exec);
}

Header peek_header(const Bytes& stream) { return read_header(stream); }

}  // namespace repro::pfpl
