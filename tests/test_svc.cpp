// Tests for the svc batch-compression service: the work-stealing thread
// pool, the determinism invariant of BatchCompressor (entry bytes identical
// to single-threaded pfpl::compress for every worker count), and the PFPA
// archive container (round-trip, random access, corruption rejection).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "core/chunked.hpp"
#include "core/pfpl.hpp"
#include "data/rng.hpp"
#include "io/raw_file.hpp"
#include "svc/archive.hpp"
#include "svc/batch.hpp"
#include "common/checksum.hpp"
#include "svc/stats.hpp"
#include "svc/thread_pool.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

std::string tmp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("pfpl_svc_" + name)).string();
}

std::vector<float> wave_f32(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(std::sin(acc) + acc);
  }
  return v;
}

std::vector<double> wave_f64(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<double> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = std::cos(acc) * 3.0 + acc;
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, FuturesReturnValues) {
  svc::ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i) futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce) {
  svc::ThreadPool pool(3, /*queue_capacity=*/16);  // small bound: forces backpressure
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 500; ++i)
    futs.push_back(pool.submit([i, &sum] { sum.fetch_add(i); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500 * 501 / 2);
  auto c = pool.counters();
  EXPECT_EQ(c.submitted, 500u);
  EXPECT_EQ(c.executed, 500u);
  EXPECT_LE(c.peak_pending, 16u);  // the bounded queue held
}

TEST(ThreadPool, WaitIdleDrains) {
  svc::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, GracefulShutdownRunsQueuedTasks) {
  std::atomic<int> done{0};
  {
    svc::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&done] { done.fetch_add(1); });
    // Destructor must drain the queue, not drop it.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  svc::ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), CompressionError);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFuture) {
  svc::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw CompressionError("boom"); });
  EXPECT_THROW(f.get(), CompressionError);
}

// ---------------------------------------------------------------------------
// BatchCompressor determinism
// ---------------------------------------------------------------------------

TEST(BatchCompressor, ByteIdenticalToOneShotForEveryWorkerCount) {
  auto f32 = wave_f32(50000, 1);
  auto f64 = wave_f64(30000, 2);
  auto noisy = wave_f32(4096 * 3 + 17, 3);  // non-multiple of the chunk size

  std::vector<svc::Job> jobs = {
      {"a", Field(f32.data(), f32.size()), {1e-3, EbType::ABS}},
      {"b", Field(f64.data(), f64.size()), {1e-2, EbType::REL}},
      {"c", Field(noisy.data(), noisy.size()), {1e-4, EbType::NOA}},
  };
  std::vector<Bytes> oneshot;
  for (const auto& j : jobs) oneshot.push_back(pfpl::compress(j.field, j.params));

  for (unsigned threads : {1u, 2u, 8u}) {
    svc::BatchCompressor batch({.threads = threads});
    auto results = batch.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_FALSE(results[i].failed) << results[i].error;
      EXPECT_EQ(results[i].stream, oneshot[i])
          << "job " << jobs[i].name << " differs at threads=" << threads;
    }
  }
}

TEST(BatchCompressor, TinyInflightBudgetStillDeterministic) {
  // A budget smaller than one chunk admits chunks one at a time (the
  // oversized-acquisition escape hatch); bytes must still be identical.
  auto v = wave_f32(4096 * 8, 4);
  std::vector<svc::Job> jobs = {{"x", Field(v.data(), v.size()), {1e-3, EbType::ABS}}};
  svc::BatchCompressor batch({.threads = 4, .max_inflight_bytes = 1024});
  auto results = batch.run(jobs);
  ASSERT_FALSE(results[0].failed);
  EXPECT_EQ(results[0].stream, pfpl::compress(jobs[0].field, jobs[0].params));
}

TEST(BatchCompressor, InvalidBoundFailsJobNotBatch) {
  auto v = wave_f32(10000, 5);
  std::vector<svc::Job> jobs = {
      {"bad", Field(v.data(), v.size()), {-1.0, EbType::ABS}},
      {"good", Field(v.data(), v.size()), {1e-3, EbType::ABS}},
  };
  svc::BatchCompressor batch({.threads = 2});
  auto results = batch.run(jobs);
  EXPECT_TRUE(results[0].failed);
  EXPECT_FALSE(results[0].error.empty());
  ASSERT_FALSE(results[1].failed);
  EXPECT_EQ(results[1].stream, pfpl::compress(jobs[1].field, jobs[1].params));
  EXPECT_EQ(batch.stats().jobs_failed, 1u);
}

TEST(BatchCompressor, StatsAreFilled) {
  auto v = wave_f32(4096 * 4, 6);
  std::vector<svc::Job> jobs = {{"s", Field(v.data(), v.size()), {1e-3, EbType::ABS}}};
  svc::BatchCompressor batch({.threads = 2});
  auto results = batch.run(jobs);
  ASSERT_FALSE(results[0].failed);
  const svc::SvcStats& st = batch.stats();
  EXPECT_EQ(st.jobs, 1u);
  EXPECT_EQ(st.chunks, 4u);
  EXPECT_EQ(st.bytes_in, v.size() * 4);
  EXPECT_EQ(st.bytes_out, results[0].stream.size());
  EXPECT_EQ(st.threads, 2u);
  EXPECT_GT(st.ratio(), 1.0);
  EXPECT_FALSE(st.summary().empty());
}

// ---------------------------------------------------------------------------
// Chunked primitives (the contract svc builds on)
// ---------------------------------------------------------------------------

TEST(Chunked, ManualChunkLoopMatchesOneShot) {
  auto v = wave_f32(4096 * 2 + 100, 7);
  Field field(v.data(), v.size());
  pfpl::Params p{1e-3, EbType::ABS};
  pfpl::Header h = pfpl::plan_header(field, p);
  ASSERT_EQ(h.chunk_count, 3u);
  std::vector<Bytes> payloads(h.chunk_count);
  std::vector<u32> sizes(h.chunk_count);
  // Encode in reverse order to prove order-independence.
  for (std::size_t c = h.chunk_count; c-- > 0;)
    sizes[c] = pfpl::encode_chunk(field, h, c, p.exec, payloads[c]);
  Bytes assembled = pfpl::assemble_stream(h, sizes, payloads, p.exec);
  EXPECT_EQ(assembled, pfpl::compress(field, p));
}

// ---------------------------------------------------------------------------
// PFPA archive
// ---------------------------------------------------------------------------

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test file name: ctest runs discovered tests as parallel processes,
    // and a shared path would let one test corrupt another's archive.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path = tmp_path(tag + "_archive.pfpa");
    f32 = wave_f32(20000, 11);
    f64 = wave_f64(9000, 12);
    jobs = {
        {"temp.f32", Field(f32.data(), f32.size()), {1e-3, EbType::ABS}},
        {"pres.f64", Field(f64.data(), f64.size()), {1e-2, EbType::REL}},
    };
    svc::BatchCompressor batch({.threads = 2});
    results = batch.run(jobs);
    svc::ArchiveWriter writer(path);
    for (const auto& r : results) writer.add(r.name, r.header, r.stream, r.raw_bytes);
    writer.finish();
  }
  void TearDown() override { fs::remove(path); }

  std::string path;
  std::vector<float> f32;
  std::vector<double> f64;
  std::vector<svc::Job> jobs;
  std::vector<svc::JobResult> results;
};

TEST_F(ArchiveTest, RoundTrip) {
  svc::ArchiveReader reader(path);
  ASSERT_EQ(reader.entries().size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const svc::ArchiveEntry& e = reader.entries()[i];
    EXPECT_EQ(e.name, results[i].name);
    EXPECT_EQ(e.raw_size, results[i].raw_bytes);
    Bytes stream = reader.read_entry(e);
    EXPECT_EQ(stream, results[i].stream);  // entry bytes survive the container
  }
  auto back = pfpl::decompress_as<float>(reader.read_entry("temp.f32"));
  ASSERT_EQ(back.size(), f32.size());
  for (std::size_t i = 0; i < f32.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(f32[i]) - back[i]), 1e-3) << i;
}

TEST_F(ArchiveTest, RandomAccessReadsOnlyTheEntryRange) {
  svc::ArchiveReader reader(path);
  const svc::ArchiveEntry& e = reader.find("pres.f64");
  // The reader's contract is range-reads only; emulate it directly to prove
  // the entry is self-contained: bytes [offset, offset+size) alone decode.
  Bytes stream = io::read_file_range(path, e.offset, static_cast<std::size_t>(e.size));
  EXPECT_EQ(common::crc32(stream.data(), stream.size()), e.crc32);
  auto back = pfpl::decompress_as<double>(stream);
  ASSERT_EQ(back.size(), f64.size());
  pfpl::Header h = pfpl::peek_header(stream);
  EXPECT_EQ(h.eb_type, EbType::REL);
}

TEST_F(ArchiveTest, FindMissingEntryThrows) {
  svc::ArchiveReader reader(path);
  EXPECT_THROW(reader.find("nonexistent"), CompressionError);
}

TEST_F(ArchiveTest, CorruptedIndexIsRejected) {
  // Flip one byte inside the index region: the index CRC must catch it.
  Bytes raw = io::read_file(path);
  u64 index_offset, index_size;
  std::memcpy(&index_offset, raw.data() + raw.size() - svc::kArchiveFooterSize, 8);
  std::memcpy(&index_size, raw.data() + raw.size() - svc::kArchiveFooterSize + 8, 8);
  ASSERT_GT(index_size, 0u);
  raw[static_cast<std::size_t>(index_offset) + 3] ^= 0x5A;
  io::write_file(path, raw.data(), raw.size());
  EXPECT_THROW(svc::ArchiveReader reader(path), CompressionError);
}

TEST_F(ArchiveTest, HostileEntryNamesAreRejected) {
  // A crafted archive whose index smuggles a path-like entry name must be
  // rejected by the reader even though every CRC and bound checks out —
  // otherwise unpack would join the name onto the output directory and
  // write outside it ("../..", absolute paths, backslash separators).
  const Bytes orig = io::read_file(path);
  u64 index_offset, index_size;
  std::memcpy(&index_offset, orig.data() + orig.size() - svc::kArchiveFooterSize, 8);
  std::memcpy(&index_size, orig.data() + orig.size() - svc::kArchiveFooterSize + 8, 8);
  // First record starts with u16 name_len, then the 8-byte name "temp.f32";
  // overwrite it in place (same length) and re-sign the index so only the
  // name validation — not the CRC — can catch it.
  for (const char* evil : {"../../ab", "/abs/pth", "dir\\file"}) {
    Bytes raw = orig;
    std::memcpy(raw.data() + index_offset + 2, evil, 8);
    u32 crc = common::crc32(raw.data() + index_offset, static_cast<std::size_t>(index_size));
    std::memcpy(raw.data() + raw.size() - svc::kArchiveFooterSize + 20, &crc, 4);
    io::write_file(path, raw.data(), raw.size());
    EXPECT_THROW(svc::ArchiveReader reader(path), CompressionError) << evil;
  }
}

TEST_F(ArchiveTest, CorruptedEntryPayloadIsRejected) {
  svc::ArchiveReader clean(path);
  const svc::ArchiveEntry e = clean.find("temp.f32");
  Bytes raw = io::read_file(path);
  raw[static_cast<std::size_t>(e.offset) + e.size / 2] ^= 0xFF;
  io::write_file(path, raw.data(), raw.size());
  svc::ArchiveReader reader(path);  // index is intact: open succeeds
  EXPECT_THROW(reader.read_entry("temp.f32"), CompressionError);
  // The other entry is untouched and still extractable (fault isolation).
  EXPECT_NO_THROW(reader.read_entry("pres.f64"));
}

TEST_F(ArchiveTest, TruncatedFileIsRejected) {
  Bytes raw = io::read_file(path);
  io::write_file(path, raw.data(), raw.size() / 2);
  EXPECT_THROW(svc::ArchiveReader reader(path), CompressionError);
  io::write_file(path, raw.data(), 4);  // shorter than header+footer
  EXPECT_THROW(svc::ArchiveReader reader(path), CompressionError);
}

TEST_F(ArchiveTest, BadFooterMagicIsRejected) {
  Bytes raw = io::read_file(path);
  raw[raw.size() - 1] ^= 0x01;  // footer magic is the last field
  io::write_file(path, raw.data(), raw.size());
  EXPECT_THROW(svc::ArchiveReader reader(path), CompressionError);
}

TEST(Archive, WriterRejectsBadNames) {
  std::string path = tmp_path("badnames.pfpa");
  auto v = wave_f32(100, 13);
  Bytes stream = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  pfpl::Header h = pfpl::peek_header(stream);
  svc::ArchiveWriter writer(path);
  EXPECT_THROW(writer.add("", h, stream, 400), CompressionError);
  EXPECT_THROW(writer.add("a/b", h, stream, 400), CompressionError);
  writer.add("ok", h, stream, 400);
  EXPECT_THROW(writer.add("ok", h, stream, 400), CompressionError);  // duplicate
  writer.finish();
  fs::remove(path);
}

TEST(Archive, EmptyArchiveRoundTrips) {
  std::string path = tmp_path("empty.pfpa");
  svc::ArchiveWriter writer(path);
  writer.finish();
  svc::ArchiveReader reader(path);
  EXPECT_TRUE(reader.entries().empty());
  fs::remove(path);
}

TEST(Checksum, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  EXPECT_EQ(common::crc32("123456789", 9), 0xCBF43926u);
  // Incremental == one-shot.
  u32 a = common::crc32("12345", 5);
  EXPECT_EQ(common::crc32("6789", 4, a), 0xCBF43926u);
}
