// Per-chunk lossless pipeline (paper Section III-D/E).
//
// The input stream of quantized words is split into 16 KiB chunks (4096 u32
// words or 2048 u64 words). Each chunk independently runs the fused pipeline
//   delta -> negabinary -> tile bit-shuffle -> zero-byte elimination
// so chunks can be compressed by different threads / thread blocks and the
// result is identical regardless of the execution order. A chunk whose
// compressed form would not shrink is stored raw and flagged, capping the
// worst-case expansion (paper: "the original chunk data is emitted and the
// chunk is flagged as uncompressed").
#pragma once

#include <cstring>
#include <vector>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/zerobyte.hpp"
#include "common/types.hpp"
#include "obs/kernels.hpp"
#include "obs/trace.hpp"

namespace repro::pfpl {

/// Chunk size in bytes (paper Section III-E: "16 kB chunks").
inline constexpr std::size_t kChunkBytes = 16 * 1024;

template <typename U>
inline constexpr std::size_t chunk_words() {
  return kChunkBytes / sizeof(U);
}

/// Bit-shuffle tile size: 32 words for u32, 64 for u64 (warp granularity in
/// the CUDA code, Section III-E).
template <typename U>
inline constexpr std::size_t tile_words() {
  return sizeof(U) * 8;
}

template <typename U>
inline constexpr std::size_t padded_words(std::size_t k) {
  constexpr std::size_t t = tile_words<U>();
  return (k + t - 1) / t * t;
}

/// Compress `k` quantized words into `out` (appended). Returns true if the
/// chunk was stored compressed, false if stored raw (caller records the flag
/// in the chunk-size table).
template <typename U>
bool chunk_encode(const U* words, std::size_t k, std::vector<u8>& out) {
  const std::size_t padded = padded_words<U>(k);
  // Kernel attribution charges each stage the logical chunk bytes (k words),
  // not the tile-padded footprint, so per-kernel MB/s is comparable across
  // stages and sums against core.bytes_in.
  const std::size_t kbytes = k * sizeof(U);
  std::vector<U> buf(padded, U{0});
  std::memcpy(buf.data(), words, kbytes);
  {
    OBS_SPAN("pfpl.delta_nb");
    obs::KernelTimer kt(obs::Kernel::DeltaNb, kbytes);
    bits::delta_negabinary_encode(buf.data(), padded);
  }
  {
    OBS_SPAN("pfpl.bitshuffle");
    obs::KernelTimer kt(obs::Kernel::Bitshuffle, kbytes);
    bits::bitshuffle(buf.data(), padded);
  }
  const std::size_t start = out.size();
  {
    OBS_SPAN("pfpl.zerobyte");
    obs::KernelTimer kt(obs::Kernel::Zerobyte, kbytes);
    bits::zerobyte_encode(reinterpret_cast<const u8*>(buf.data()), padded * sizeof(U), out);
  }
  if (out.size() - start >= k * sizeof(U)) {
    // Incompressible: replace with the raw words.
    out.resize(start);
    out.insert(out.end(), reinterpret_cast<const u8*>(words),
               reinterpret_cast<const u8*>(words) + k * sizeof(U));
    return false;
  }
  return true;
}

/// Decompress one chunk of `k` words from `in` (`in_size` bytes available,
/// `compressed` from the chunk-size-table flag). Returns bytes consumed.
template <typename U>
std::size_t chunk_decode(const u8* in, std::size_t in_size, bool compressed, U* words,
                         std::size_t k) {
  if (!compressed) {
    if (in_size < k * sizeof(U)) throw CompressionError("chunk_decode: truncated raw chunk");
    std::memcpy(words, in, k * sizeof(U));
    return k * sizeof(U);
  }
  const std::size_t padded = padded_words<U>(k);
  const std::size_t kbytes = k * sizeof(U);
  std::vector<U> buf(padded);
  std::size_t used;
  {
    obs::KernelTimer kt(obs::Kernel::ZerobyteDec, kbytes);
    used = bits::zerobyte_decode(in, in_size, reinterpret_cast<u8*>(buf.data()),
                                 padded * sizeof(U));
  }
  {
    obs::KernelTimer kt(obs::Kernel::BitshuffleDec, kbytes);
    bits::bitshuffle(buf.data(), padded);
  }
  {
    obs::KernelTimer kt(obs::Kernel::DeltaNbDec, kbytes);
    bits::delta_negabinary_decode(buf.data(), padded);
  }
  std::memcpy(words, buf.data(), kbytes);
  return used;
}

}  // namespace repro::pfpl
