// Block-level primitives of the CUDA implementation, simulated.
//
// The GPU decoder needs block-wide prefix sums (delta reconstruction, and
// locating each thread's bytes in the zero-elimination bitmaps, Section
// III-E). We simulate the classic Hillis–Steele scan a thread block would
// run over shared memory; the simulation is sequentialized but follows the
// stepwise structure so the arithmetic (and thus any overflow behaviour)
// matches the device algorithm.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace repro::sim {

/// In-place inclusive scan, Hillis–Steele structure (double-buffered shared
/// memory, log2(n) rounded-up steps).
template <typename U>
void block_inclusive_scan(U* a, std::size_t n) {
  if (n < 2) return;
  std::vector<U> other(n);
  U* src = a;
  U* dst = other.data();
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    for (std::size_t i = 0; i < n; ++i)
      dst[i] = i >= stride ? static_cast<U>(src[i] + src[i - stride]) : src[i];
    std::swap(src, dst);
  }
  if (src != a)
    for (std::size_t i = 0; i < n; ++i) a[i] = src[i];
}

/// Exclusive scan built on the inclusive scan (shift by one, identity 0).
template <typename U>
void block_exclusive_scan(U* a, std::size_t n) {
  if (n == 0) return;
  block_inclusive_scan(a, n);
  for (std::size_t i = n; i-- > 1;) a[i] = a[i - 1];
  a[0] = 0;
}

}  // namespace repro::sim
