// bench_store — tiered chunk-store benchmark (cold / warm / reopen + dup sweep).
//
// Exercises store::ChunkStore the way `pfpl serve --store` does:
//
//   cold    — every chunk is new: compress, then put() into cache + segment log
//   warm    — same keys again: every get() answers from the in-memory cache
//   reopen  — fresh ChunkStore on the same directory (cold cache): every
//             get() answers from the persistent PFPS segment log
//
// plus a dup-ratio sweep (0 / 0.5 / 1.0) over a memory-only store showing how
// effective-throughput scales with content duplication. Every stream fetched
// from cache or log is checked byte-identical to the cold compression, so the
// bench doubles as the dedup-correctness test.
//
//   bench_store                           # 32 chunks x 16384 values
//   bench_store --chunks 64 --values 65536 --min-speedup 5
//   bench_store --update-baseline --baseline BENCH_baseline.json
//
// Exit codes: 0 ok, 1 byte mismatch / verify failure / speedup below
// --min-speedup, 3 failed --gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pfpl.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "store/store.hpp"

#ifdef _WIN32
#include <process.h>
#define getpid _getpid
#else
#include <unistd.h>
#endif

using namespace repro;

namespace {

struct StoreCfg {
  std::size_t values = 16384;  ///< scalars per chunk
  unsigned chunks = 32;        ///< distinct chunks in the working set
  double min_speedup = 5.0;    ///< required warm-vs-cold throughput ratio
};

StoreCfg parse_store_flags(int argc, char** argv) {
  StoreCfg cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--values") cfg.values = std::strtoull(next(), nullptr, 10);
    else if (a == "--chunks") cfg.chunks = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--min-speedup") cfg.min_speedup = std::atof(next());
  }
  if (cfg.values == 0) cfg.values = 1;
  if (cfg.chunks == 0) cfg.chunks = 1;
  return cfg;
}

std::vector<float> make_chunk(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) * 0.001 + seed * 0.37;
    v[i] = static_cast<float>(std::sin(x) * 100.0 + std::cos(3.0 * x) + seed);
  }
  return v;
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

constexpr double kEps = 1e-3;

/// Push cfg.chunks requests through the store; chunks not yet stored are
/// compressed and put(). Returns elapsed seconds; appends each job's stream
/// to `streams` (for byte-identity checks) when non-null.
double run_pass(const StoreCfg& cfg, store::ChunkStore& cs,
                const std::vector<std::vector<float>>& fields,
                std::vector<Bytes>* streams, u64* raw_bytes, u64* comp_bytes) {
  const double t0 = now_s();
  for (unsigned c = 0; c < cfg.chunks; ++c) {
    const std::vector<float>& f = fields[c];
    const std::size_t raw_n = f.size() * sizeof(float);
    const common::Hash128 key =
        store::compress_key(f.data(), raw_n, DType::F32, EbType::ABS, kEps);
    Bytes stream;
    if (!cs.get(key, stream)) {
      pfpl::Params params;
      params.eps = kEps;
      stream = pfpl::compress(Field(f.data(), f.size()), params);
      cs.put(key, stream, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw_n});
    }
    if (raw_bytes) *raw_bytes += raw_n;
    if (comp_bytes) *comp_bytes += stream.size();
    if (streams) streams->push_back(std::move(stream));
  }
  return now_s() - t0;
}

bench::Row make_row(const char* name, double eb, double seconds, u64 raw_bytes,
                    u64 comp_bytes) {
  bench::Row row;
  row.compressor = name;
  row.eb = eb;
  row.ratio = comp_bytes ? static_cast<double>(raw_bytes) / comp_bytes : 0.0;
  row.comp_mbps = seconds > 0 ? raw_bytes / (1024.0 * 1024.0) / seconds : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig base;
  bench::SweepConfig sweep = bench::parse_args(argc, argv, base);
  (void)sweep;
  const StoreCfg cfg = parse_store_flags(argc, argv);
  obs::set_enabled(true);

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pfpl_bench_store_" + std::to_string(static_cast<long long>(getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);

  std::vector<std::vector<float>> fields;
  fields.reserve(cfg.chunks);
  for (unsigned c = 0; c < cfg.chunks; ++c)
    fields.push_back(make_chunk(cfg.values, c));

  std::fprintf(stderr, "bench_store: %u chunks x %zu values, store at %s\n",
               cfg.chunks, cfg.values, dir.string().c_str());

  int mismatches = 0;
  std::vector<bench::Row> rows;

  // ---- cold / warm / reopen over a persistent store --------------------
  std::vector<Bytes> cold_streams, warm_streams, reopen_streams;
  double cold_s = 0, warm_s = 0, reopen_s = 0;
  u64 raw_bytes = 0, comp_bytes = 0;
  {
    store::ChunkStore::Options so;
    so.dir = dir.string();
    store::ChunkStore cs(so);
    cold_s = run_pass(cfg, cs, fields, &cold_streams, &raw_bytes, &comp_bytes);
    warm_s = run_pass(cfg, cs, fields, &warm_streams, nullptr, nullptr);
    cs.sync();
  }
  {
    // Fresh process-equivalent: empty cache, everything served off the log.
    store::ChunkStore::Options so;
    so.dir = dir.string();
    store::ChunkStore cs(so);
    reopen_s = run_pass(cfg, cs, fields, &reopen_streams, nullptr, nullptr);
    const store::SegmentStore::VerifyReport rep = cs.log()->verify();
    if (!rep.ok()) {
      std::fprintf(stderr, "bench_store: verify FAILED: %zu corrupt frame(s)\n",
                   rep.corrupt_frames);
      ++mismatches;
    }
  }
  for (unsigned c = 0; c < cfg.chunks; ++c) {
    if (warm_streams[c] != cold_streams[c]) {
      std::fprintf(stderr, "bench_store: chunk %u: warm stream differs from cold\n", c);
      ++mismatches;
    }
    if (reopen_streams[c] != cold_streams[c]) {
      std::fprintf(stderr, "bench_store: chunk %u: reopen stream differs from cold\n", c);
      ++mismatches;
    }
  }
  rows.push_back(make_row("PFPS_cold", 0, cold_s, raw_bytes, comp_bytes));
  rows.push_back(make_row("PFPS_warm", 0, warm_s, raw_bytes, comp_bytes));
  rows.push_back(make_row("PFPS_reopen", 0, reopen_s, raw_bytes, comp_bytes));

  const double speedup = cold_s > 0 && warm_s > 0 ? cold_s / warm_s : 0.0;
  std::fprintf(stderr,
               "bench_store: cold %.1f MB/s, warm %.1f MB/s (%.1fx), "
               "reopen %.1f MB/s\n",
               rows[0].comp_mbps, rows[1].comp_mbps, speedup, rows[2].comp_mbps);
  if (speedup < cfg.min_speedup) {
    std::fprintf(stderr,
                 "bench_store: warm/cold speedup %.1fx below required %.1fx\n",
                 speedup, cfg.min_speedup);
    ++mismatches;
  }

  // ---- dup-ratio sweep over a memory-only store ------------------------
  // A request stream where `ratio` of the requests resend chunk 0's bytes;
  // effective throughput rises with the duplicate fraction because those
  // requests skip the compressor entirely.
  for (double dup : {0.0, 0.5, 1.0}) {
    store::ChunkStore cs(store::ChunkStore::Options{});
    u64 dr = 0, dc = 0;
    const double t0 = now_s();
    for (unsigned c = 0; c < cfg.chunks; ++c) {
      const bool is_dup =
          static_cast<double>((c * 104729u) % 1000) < dup * 1000.0;
      const std::vector<float>& f = fields[is_dup ? 0 : c];
      const std::size_t raw_n = f.size() * sizeof(float);
      const common::Hash128 key =
          store::compress_key(f.data(), raw_n, DType::F32, EbType::ABS, kEps);
      Bytes stream;
      if (!cs.get(key, stream)) {
        pfpl::Params params;
        params.eps = kEps;
        stream = pfpl::compress(Field(f.data(), f.size()), params);
        cs.put(key, stream, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw_n});
      }
      dr += raw_n;
      dc += stream.size();
    }
    const double secs = now_s() - t0;
    rows.push_back(make_row("PFPS_dup", dup, secs, dr, dc));
    const store::ResultCache::Stats st = cs.cache().stats();
    std::fprintf(stderr,
                 "bench_store: dup %.1f: %.1f MB/s, cache %llu hits / %llu misses\n",
                 dup, rows.back().comp_mbps,
                 static_cast<unsigned long long>(st.hits),
                 static_cast<unsigned long long>(st.misses));
  }

  bench::print_rows("Store", rows);
  obs::RunReport::global().add_section("store_cold_warm", [&] {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("chunks", cfg.chunks);
    w.kv("values", static_cast<unsigned long long>(cfg.values));
    w.kv("cold_s", cold_s);
    w.kv("warm_s", warm_s);
    w.kv("reopen_s", reopen_s);
    w.kv("warm_speedup", speedup);
    w.kv("mismatches", mismatches);
    w.end_object();
    return w.take();
  }());

  fs::remove_all(dir, ec);

  const int gate_rc = bench::finish();
  if (mismatches) return 1;
  return gate_rc;
}
