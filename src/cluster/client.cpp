#include "cluster/client.hpp"

#include <chrono>
#include <thread>
#include <unistd.h>

#include "common/hash.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace repro::cluster {
namespace {

/// Client-side cluster.* handles (the server-side cluster.node.* counters
/// live in net/server.cpp).
struct ClientMetrics {
  obs::Counter& requests;
  obs::Counter& failovers;
  obs::Counter& retries;
  obs::Counter& map_refreshes;
  obs::Counter& wrong_shard;
  static ClientMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static ClientMetrics m{r.counter("cluster.requests"),
                           r.counter("cluster.failovers"),
                           r.counter("cluster.retries"),
                           r.counter("cluster.map_refreshes"),
                           r.counter("cluster.wrong_shard")};
    return m;
  }
};

u64 jitter_seed() {
  struct {
    u64 pid;
    u64 t;
  } seed{static_cast<u64>(::getpid()),
         static_cast<u64>(
             std::chrono::steady_clock::now().time_since_epoch().count())};
  return common::hash128(&seed, sizeof seed).lo;
}

}  // namespace

ClusterClient::ClusterClient(Options opts)
    : opts_(std::move(opts)), map_(opts_.map), jitter_(jitter_seed()) {
  if (map_.empty())
    throw CompressionError("ClusterClient: the shard map has no nodes");
  if (opts_.refresh_interval_ms > 0)
    refresher_ = std::thread([this] { refresher_loop(); });
}

ClusterClient::~ClusterClient() {
  if (refresher_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    refresher_.join();
  }
}

void ClusterClient::refresher_loop() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    // The wait doubles as the shutdown gate: the destructor flips stop_ and
    // notifies, so teardown never waits out a full interval.
    stop_cv_.wait_for(lk, std::chrono::milliseconds(opts_.refresh_interval_ms),
                      [this] { return stop_; });
    if (stop_) return;
    ++stats_.background_refreshes;
    try {
      refresh_map_locked();
    } catch (const CompressionError&) {
      // No node answered (NetError derives from CompressionError): stale is
      // still routable, and the next tick tries again.
    }
  }
}

ShardMap ClusterClient::map() const {
  std::lock_guard<std::mutex> lk(m_);
  return map_;
}

ClusterClient::Stats ClusterClient::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

net::Client& ClusterClient::client_for(u32 node_index) {
  const NodeInfo& n = map_.nodes()[node_index];
  auto it = clients_.find(n.id);
  if (it == clients_.end()) {
    net::Client::Options co;
    co.host = n.host;
    co.port = n.port;
    co.connect_timeout_ms = opts_.connect_timeout_ms;
    co.request_timeout_ms = opts_.request_timeout_ms;
    co.retry = opts_.node_attempts > 1;
    co.max_attempts = opts_.node_attempts;
    co.max_response_payload = opts_.max_response_payload;
    it = clients_.emplace(n.id, net::Client(std::move(co))).first;
  }
  return it->second;
}

void ClusterClient::adopt(ShardMap fresh) {
  const ShardMap old = std::move(map_);
  map_ = std::move(fresh);
  ++stats_.map_refreshes;
  ClientMetrics::get().map_refreshes.add(1);
  // Drop cached clients whose node left or moved address; survivors keep
  // their open connections.
  for (auto it = clients_.begin(); it != clients_.end();) {
    const int idx = map_.find_node(it->first);
    const int prev = old.find_node(it->first);
    const bool moved =
        idx >= 0 && prev >= 0 &&
        (map_.nodes()[static_cast<std::size_t>(idx)].host !=
             old.nodes()[static_cast<std::size_t>(prev)].host ||
         map_.nodes()[static_cast<std::size_t>(idx)].port !=
             old.nodes()[static_cast<std::size_t>(prev)].port);
    if (idx < 0 || moved)
      it = clients_.erase(it);
    else
      ++it;
  }
}

bool ClusterClient::refresh_from(net::Client& c) {
  try {
    const Bytes wire = c.shardmap_fetch(map_.serialize());
    ShardMap fresh = ShardMap::parse(wire);
    if (fresh.cluster_id() != map_.cluster_id() || fresh.epoch() <= map_.epoch())
      return false;
    adopt(std::move(fresh));
    return true;
  } catch (const CompressionError&) {
    // NetError/RemoteError/parse failure alike: no fresher map from here.
    return false;
  }
}

bool ClusterClient::refresh_map() {
  std::lock_guard<std::mutex> lk(m_);
  return refresh_map_locked();
}

bool ClusterClient::refresh_map_locked() {
  bool any_answer = false;
  bool adopted = false;
  std::string last_error = "no nodes in the map";
  // Ask every node: the newest epoch wins, and offering our map on the way
  // brings stale *servers* up to date too.
  for (u32 i = 0; i < map_.nodes().size(); ++i) {
    try {
      const Bytes wire = client_for(i).shardmap_fetch(map_.serialize());
      any_answer = true;
      ShardMap fresh = ShardMap::parse(wire);
      if (fresh.cluster_id() == map_.cluster_id() && fresh.epoch() > map_.epoch()) {
        adopt(std::move(fresh));
        adopted = true;
      }
    } catch (const CompressionError& e) {
      last_error = e.what();
    }
  }
  if (!any_answer)
    throw net::NetError("cluster: no node answered a map refresh (last error: " +
                        last_error + ")");
  return adopted;
}

Bytes ClusterClient::routed(const common::Hash128& key,
                            const std::function<Bytes(net::Client&)>& op) {
  constexpr unsigned kMaxRefreshesPerRequest = 3;
  unsigned sweep = 0;
  unsigned refreshes = 0;
  std::string last_error;
  for (;;) {
    const std::vector<u32> replicas = map_.route(key);
    bool rerouted = false;
    for (std::size_t ri = 0; ri < replicas.size(); ++ri) {
      const u32 idx = replicas[ri];
      const std::string node_id = map_.nodes()[idx].id;
      net::Client& c = client_for(idx);
      try {
        Bytes out = op(c);
        ++stats_.requests;
        ++stats_.node_requests[node_id];
        ClientMetrics::get().requests.add(1);
        return out;
      } catch (const net::RemoteError& e) {
        if (e.status() == static_cast<u16>(net::Status::WrongShard)) {
          ++stats_.wrong_shard;
          ClientMetrics::get().wrong_shard.add(1);
          last_error = e.what();
          if (refreshes < kMaxRefreshesPerRequest && refresh_from(c)) {
            // Stale map: re-route under the new epoch without burning a
            // sweep (the old replica list was simply wrong).
            ++refreshes;
            rerouted = true;
            break;
          }
          // The node refused but has no fresher map either (or we hit the
          // refresh bound) — treat like an unavailable replica.
        } else if (e.status() == static_cast<u16>(net::Status::Draining)) {
          last_error = e.what();
        } else {
          throw;  // the shard owner answered; retrying elsewhere is wrong
        }
        ++stats_.failovers;
        ClientMetrics::get().failovers.add(1);
      } catch (const net::NetError& e) {
        last_error = e.what();
        ++stats_.failovers;
        ClientMetrics::get().failovers.add(1);
      }
    }
    if (rerouted) continue;
    ++sweep;
    if (sweep >= std::max(opts_.sweeps, 1u)) break;
    ++stats_.retries;
    ClientMetrics::get().retries.add(1);
    const int ms =
        net::backoff_ms(sweep, opts_.backoff_base_ms, opts_.backoff_max_ms, jitter_);
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  throw net::NetError("cluster: request for key " + key.hex() + " failed after " +
                      std::to_string(sweep) + " sweep(s) over " +
                      std::to_string(map_.route(key).size()) +
                      " replica(s); last error: " + last_error);
}

Bytes ClusterClient::compress(const void* raw, std::size_t n, DType dtype, EbType eb,
                              double eps) {
  const common::Hash128 key = store::compress_key(raw, n, dtype, eb, eps);
  std::lock_guard<std::mutex> lk(m_);
  return routed(key, [&](net::Client& c) { return c.compress(raw, n, dtype, eb, eps); });
}

std::vector<u8> ClusterClient::decompress(const Bytes& stream) {
  const common::Hash128 key = store::decompress_key(stream.data(), stream.size());
  std::lock_guard<std::mutex> lk(m_);
  return routed(key, [&](net::Client& c) { return c.decompress(stream); });
}

std::string ClusterClient::health(const std::string& node_id) {
  std::lock_guard<std::mutex> lk(m_);
  const int idx = map_.find_node(node_id);
  if (idx < 0)
    throw CompressionError("cluster: unknown node '" + node_id + "'");
  return client_for(static_cast<u32>(idx)).health();
}

std::string ClusterClient::stats_json() const {
  std::lock_guard<std::mutex> lk(m_);
  obs::JsonWriter w;
  w.begin_object();
  w.kv("cluster_id", map_.cluster_id());
  w.kv("epoch", static_cast<unsigned long long>(map_.epoch()));
  w.kv("requests", static_cast<unsigned long long>(stats_.requests));
  w.kv("failovers", static_cast<unsigned long long>(stats_.failovers));
  w.kv("retries", static_cast<unsigned long long>(stats_.retries));
  w.kv("map_refreshes", static_cast<unsigned long long>(stats_.map_refreshes));
  w.kv("wrong_shard", static_cast<unsigned long long>(stats_.wrong_shard));
  w.kv("background_refreshes",
       static_cast<unsigned long long>(stats_.background_refreshes));
  w.key("node_requests");
  w.begin_object();
  for (const auto& [id, n] : stats_.node_requests)
    w.kv(id, static_cast<unsigned long long>(n));
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace repro::cluster
