// EventLog — leveled, rate-limited, structured one-line-JSON event logging.
//
// Each emitted event is a single line:
//
//   {"ts_ms":1723190400123,"level":"warn","event":"slow_request","fields":{...}}
//
// so a server's event stream can be tailed, grepped by event name, or fed to
// a log pipeline without a parser beyond "one JSON object per line". Events
// below the configured level are dropped before any formatting; a token
// bucket caps the emit rate (a misbehaving client must not be able to turn
// the slow-request log into an I/O hot spot), and drops are counted rather
// than logged. The sink is stderr by default or a file via configure().
//
// Unlike metrics/tracing this is NOT gated on obs::enabled() — a production
// server wants its slow-request log even when span recording is off. The
// cost when nothing is emitted is one level comparison.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/types.hpp"

namespace repro::obs {

enum class LogLevel : u8 { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char* to_string(LogLevel lvl);
/// Parse "debug"/"info"/"warn"/"error"; returns false on unknown names.
bool parse_log_level(const std::string& s, LogLevel& out);

class EventLog {
 public:
  struct Options {
    LogLevel level = LogLevel::Info;
    std::string path;          ///< empty = stderr
    double rate_per_s = 200.0; ///< token-bucket refill rate; burst = 2x rate
  };

  /// The process-wide log (stderr, Info, default rate until configured).
  static EventLog& global();

  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// (Re)configure sink, level, and rate. Closes any previously opened file.
  /// Throws CompressionError if `path` cannot be opened for append.
  void configure(const Options& o);

  /// True when an event at `lvl` would pass the level filter (cheap guard so
  /// callers can skip building the fields string).
  bool would_log(LogLevel lvl) const {
    return lvl >= level_.load(std::memory_order_relaxed);
  }

  /// Emit one event. `fields_json`, when non-empty, must be a complete JSON
  /// value (usually an object) and is attached under "fields". Returns true
  /// if the line was written, false if filtered or rate-limited.
  bool emit(LogLevel lvl, const std::string& event,
            const std::string& fields_json = "");

  u64 emitted() const;
  u64 dropped() const;  ///< rate-limited only (level-filtered events don't count)

 private:
  void close_file();

  mutable std::mutex m_;
  std::atomic<LogLevel> level_{LogLevel::Info};
  std::FILE* file_ = nullptr;  ///< nullptr = stderr
  double rate_per_s_ = 200.0;
  double tokens_ = 400.0;  ///< current bucket fill; burst capacity = 2x rate
  u64 last_refill_ns_ = 0;
  u64 emitted_ = 0;
  u64 dropped_ = 0;
};

}  // namespace repro::obs
