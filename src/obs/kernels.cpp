#include "obs/kernels.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {
namespace {

struct KernelHandles {
  Counter* bytes[kKernelCount];
  Histogram* us[kKernelCount];
};

constexpr const char* kNames[kKernelCount] = {
    "quantize", "delta_nb", "bitshuffle", "zerobyte",
    "zerobyte_dec", "bitshuffle_dec", "delta_nb_dec", "dequantize",
};

/// Registry handles for all eight kernels, resolved once per process. The
/// registration mutex is paid on the first recorded kernel, not per chunk.
KernelHandles& handles() {
  static KernelHandles h = [] {
    KernelHandles out;
    MetricsRegistry& reg = MetricsRegistry::global();
    for (int i = 0; i < kKernelCount; ++i) {
      const std::string stem = std::string("kernel.") + kNames[i];
      out.bytes[i] = &reg.counter(stem + ".bytes");
      out.us[i] = &reg.histogram(stem + "_us");
    }
    return out;
  }();
  return h;
}

}  // namespace

const char* kernel_name(Kernel k) { return kNames[static_cast<int>(k)]; }

bool kernel_is_encode(Kernel k) { return static_cast<int>(k) < 4; }

void record_kernel(Kernel k, u64 bytes, u64 us) {
  if (!enabled()) return;
  KernelHandles& h = handles();
  const int i = static_cast<int>(k);
  h.bytes[i]->add(bytes);
  h.us[i]->record(us);
}

std::vector<KernelStat> kernel_stats() {
  std::vector<KernelStat> out;
  out.reserve(kKernelCount);
  KernelHandles& h = handles();
  for (int i = 0; i < kKernelCount; ++i) {
    KernelStat s;
    s.name = kNames[i];
    s.encode = i < 4;
    s.calls = h.us[i]->count();
    s.bytes = h.bytes[i]->value();
    s.us = h.us[i]->sum();
    if (s.us > 0) s.mbps = static_cast<double>(s.bytes) / static_cast<double>(s.us);
    out.push_back(s);
  }
  return out;
}

std::string kernel_report_json() {
  JsonWriter w;
  w.begin_object();
  for (const bool encode : {true, false}) {
    w.key(encode ? "encode" : "decode").begin_array();
    for (const KernelStat& s : kernel_stats()) {
      if (s.encode != encode || s.calls == 0) continue;
      w.begin_object();
      w.kv("name", s.name);
      w.kv("calls", static_cast<unsigned long long>(s.calls));
      w.kv("bytes", static_cast<unsigned long long>(s.bytes));
      w.kv("us", static_cast<unsigned long long>(s.us));
      w.kv("MBps", s.mbps);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.take();
}

std::string kernel_table_text() {
  const std::vector<KernelStat> stats = kernel_stats();
  bool any = false;
  for (const KernelStat& s : stats) any = any || s.calls > 0;
  if (!any) return "";
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-16s %-6s %10s %12s %12s %10s\n", "kernel", "path",
                "calls", "MB", "ms", "MB/s");
  out += line;
  for (const KernelStat& s : stats) {
    if (s.calls == 0) continue;
    std::snprintf(line, sizeof line, "%-16s %-6s %10llu %12.2f %12.3f %10.1f\n", s.name,
                  s.encode ? "enc" : "dec", static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.bytes) / 1e6, static_cast<double>(s.us) / 1e3,
                  s.mbps);
    out += line;
  }
  return out;
}

}  // namespace repro::obs
