#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json.hpp"

namespace repro::obs {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* r = new TraceRecorder();  // leaked: outlives all users
  return *r;
}

TraceRecorder::ThreadBuf& TraceRecorder::thread_buf() {
  static thread_local ThreadBuf* mine = nullptr;
  if (!mine) {
    auto buf = std::make_unique<ThreadBuf>();
    std::lock_guard<std::mutex> lk(m_);
    buf->tid = static_cast<u32>(bufs_.size());
    mine = buf.get();
    bufs_.push_back(std::move(buf));
  }
  return *mine;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->m);
    b->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<SpanEvent> out;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->m);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->m);
    n += b->events.size();
  }
  return n;
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->m);
    if (!b->events.empty()) ++n;
  }
  return n;
}

std::string TraceRecorder::chrome_json() const {
  std::vector<SpanEvent> evs = events();
  std::sort(evs.begin(), evs.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_ns < b.start_ns;
  });
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const SpanEvent& e : evs) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", "X");
    w.kv("ts", static_cast<double>(e.start_ns) / 1e3);   // trace_event: microseconds
    w.kv("dur", static_cast<double>(e.dur_ns) / 1e3);
    w.kv("pid", 1);
    w.kv("tid", static_cast<unsigned long long>(e.tid));
    if (e.request_id != 0) {
      w.key("args").begin_object();
      w.kv("request_id", static_cast<unsigned long long>(e.request_id));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string TraceRecorder::text_tree() const {
  std::vector<SpanEvent> evs = events();
  std::map<u32, std::vector<SpanEvent>> by_tid;
  for (SpanEvent& e : evs) by_tid[e.tid].push_back(std::move(e));

  std::string out;
  char line[256];
  for (auto& [tid, v] : by_tid) {
    std::sort(v.begin(), v.end(), [](const SpanEvent& a, const SpanEvent& b) {
      return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.depth < b.depth;
    });
    std::snprintf(line, sizeof(line), "tid %u (%zu spans)\n", tid, v.size());
    out += line;
    // Collapse runs of same-name siblings (the per-chunk fan-out would
    // otherwise print thousands of identical lines).
    for (std::size_t i = 0; i < v.size();) {
      std::size_t j = i;
      u64 total = 0, mn = UINT64_MAX, mx = 0;
      while (j < v.size() && v[j].name == v[i].name && v[j].depth == v[i].depth) {
        total += v[j].dur_ns;
        mn = std::min(mn, v[j].dur_ns);
        mx = std::max(mx, v[j].dur_ns);
        ++j;
      }
      std::string indent(2 * (v[i].depth + 1), ' ');
      if (j - i == 1) {
        std::snprintf(line, sizeof(line), "%s%-28s %10.3f ms\n", indent.c_str(),
                      v[i].name.c_str(), v[i].dur_ns / 1e6);
      } else {
        std::snprintf(line, sizeof(line),
                      "%s%-28s x%-6zu total %10.3f ms  min/max %.3f/%.3f ms\n",
                      indent.c_str(), v[i].name.c_str(), j - i, total / 1e6, mn / 1e6,
                      mx / 1e6);
      }
      out += line;
      i = j;
    }
  }
  return out;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::string doc = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw CompressionError("obs: cannot open trace file '" + path + "'");
  std::size_t wrote = std::fwrite(doc.data(), 1, doc.size(), f);
  int rc = std::fclose(f);
  if (wrote != doc.size() || rc != 0)
    throw CompressionError("obs: short write to trace file '" + path + "'");
}

void ScopedSpan::begin(const char* name) {
  TraceRecorder& r = TraceRecorder::global();
  buf_ = &r.thread_buf();
  name_ = name;
  depth_ = buf_->depth++;
  request_id_ = TraceContext::current();
  start_ns_ = r.now_ns();
}

void ScopedSpan::end() {
  const u64 dur = TraceRecorder::global().now_ns() - start_ns_;
  --buf_->depth;
  std::lock_guard<std::mutex> lk(buf_->m);
  buf_->events.push_back(
      SpanEvent{name_, start_ns_, dur, buf_->tid, depth_, request_id_});
}

}  // namespace repro::obs
