// Zero-byte elimination with iterated bitmap compression — final lossless
// stage (paper, Section III-D / Figure 5).
//
// A bitmap marks which input bytes are nonzero; zero bytes are dropped. The
// bitmap itself is then compressed by a similar scheme: a second bitmap marks
// which bitmap bytes differ from their predecessor ("non-repeating"), and
// only those are kept. This is iterated until the surviving bitmap is only a
// few bytes long (for a full 16 KiB chunk: 2048 -> 256 -> 32 -> 4 bytes).
//
// Stream layout, matching the order the decoder consumes it:
//   [top-level bitmap B3] [R2] [R1] [R0] [NZ]
// where B_{k+1} is the repeat-bitmap of B_k, R_k holds the non-repeating
// bytes of B_k, and NZ holds the nonzero data bytes.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace repro::bits {

/// Number of bitmap-compression iterations applied on top of the zero-byte
/// bitmap (paper: "iteratively applied ... until the bitmap is only a few
/// bytes long").
inline constexpr int kZeroByteLevels = 3;

/// Encode `n` bytes; appends the compressed representation to `out`.
/// Worst case output is ~n * (1 + 1/8 + ...) bytes; callers cap expansion at
/// the chunk level by falling back to raw storage.
void zerobyte_encode(const u8* data, std::size_t n, std::vector<u8>& out);

/// Decode exactly `n` bytes into `data` from `in` (at most `in_size` bytes
/// available). Returns the number of input bytes consumed.
/// Throws CompressionError if the stream is truncated.
std::size_t zerobyte_decode(const u8* in, std::size_t in_size, u8* data, std::size_t n);

}  // namespace repro::bits
