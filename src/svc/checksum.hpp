// CRC-32 for PFPA archive integrity. The implementation lives in
// common/checksum.hpp (shared with the PFPN wire protocol in src/net); this
// header keeps the svc::crc32 spelling the archive code and its tests use.
#pragma once

#include "common/checksum.hpp"

namespace repro::svc {

using common::crc32;
using common::crc32_table;

}  // namespace repro::svc
