// bench_store — tiered chunk-store benchmark (cold / warm / reopen + dup sweep).
//
// Exercises store::ChunkStore the way `pfpl serve --store` does:
//
//   cold    — every chunk is new: compress, then put() into cache + segment log
//   warm    — same keys again: every get() answers from the in-memory cache
//   reopen  — fresh ChunkStore on the same directory (cold cache): every
//             get() answers from the persistent PFPS segment log
//
// plus a dup-ratio sweep (0 / 0.5 / 1.0) over a memory-only store showing how
// effective-throughput scales with content duplication. Every stream fetched
// from cache or log is checked byte-identical to the cold compression, so the
// bench doubles as the dedup-correctness test.
//
//   bench_store                           # 32 chunks x 16384 values
//   bench_store --chunks 64 --values 65536 --min-speedup 5
//   bench_store --update-baseline --baseline BENCH_baseline.json
//
// Exit codes: 0 ok, 1 byte mismatch / verify failure / speedup below
// --min-speedup, 3 failed --gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pfpl.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "store/store.hpp"

#ifdef _WIN32
#include <process.h>
#define getpid _getpid
#else
#include <unistd.h>
#endif

using namespace repro;

namespace {

struct StoreCfg {
  std::size_t values = 16384;  ///< scalars per chunk
  unsigned chunks = 32;        ///< distinct chunks in the working set
  double min_speedup = 5.0;    ///< required warm-vs-cold throughput ratio
};

StoreCfg parse_store_flags(int argc, char** argv) {
  StoreCfg cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--values") cfg.values = std::strtoull(next(), nullptr, 10);
    else if (a == "--chunks") cfg.chunks = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--min-speedup") cfg.min_speedup = std::atof(next());
  }
  if (cfg.values == 0) cfg.values = 1;
  if (cfg.chunks == 0) cfg.chunks = 1;
  return cfg;
}

std::vector<float> make_chunk(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) * 0.001 + seed * 0.37;
    v[i] = static_cast<float>(std::sin(x) * 100.0 + std::cos(3.0 * x) + seed);
  }
  return v;
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

constexpr double kEps = 1e-3;

/// Push cfg.chunks requests through the store; chunks not yet stored are
/// compressed and put(). Returns elapsed seconds; appends each job's stream
/// to `streams` (for byte-identity checks) when non-null.
double run_pass(const StoreCfg& cfg, store::ChunkStore& cs,
                const std::vector<std::vector<float>>& fields,
                std::vector<Bytes>* streams, u64* raw_bytes, u64* comp_bytes) {
  const double t0 = now_s();
  for (unsigned c = 0; c < cfg.chunks; ++c) {
    const std::vector<float>& f = fields[c];
    const std::size_t raw_n = f.size() * sizeof(float);
    const common::Hash128 key =
        store::compress_key(f.data(), raw_n, DType::F32, EbType::ABS, kEps);
    Bytes stream;
    if (!cs.get(key, stream)) {
      pfpl::Params params;
      params.eps = kEps;
      stream = pfpl::compress(Field(f.data(), f.size()), params);
      cs.put(key, stream, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw_n});
    }
    if (raw_bytes) *raw_bytes += raw_n;
    if (comp_bytes) *comp_bytes += stream.size();
    if (streams) streams->push_back(std::move(stream));
  }
  return now_s() - t0;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Store rows are one-directional request throughput: no decompression pass,
/// PSNR, or violation count exists, so those columns are skipped instead of
/// recorded as zeros.
bench::Row make_row(const char* name, double eb, const std::vector<double>& rep_secs,
                    u64 raw_bytes, u64 comp_bytes) {
  bench::Row row;
  row.compressor = name;
  row.eb = eb;
  row.ratio = comp_bytes ? static_cast<double>(raw_bytes) / comp_bytes : 0.0;
  const double mb = raw_bytes / (1024.0 * 1024.0);
  for (double s : rep_secs)
    if (s > 0) row.comp_run_mbps.push_back(mb / s);
  const double med = median(rep_secs);
  row.comp_mbps = med > 0 ? mb / med : 0.0;
  row.has_decomp = row.has_psnr = row.has_violations = false;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig base;
  bench::SweepConfig sweep = bench::parse_args(argc, argv, base);
  const StoreCfg cfg = parse_store_flags(argc, argv);
  obs::set_enabled(true);

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pfpl_bench_store_" + std::to_string(static_cast<long long>(getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);

  std::vector<std::vector<float>> fields;
  fields.reserve(cfg.chunks);
  for (unsigned c = 0; c < cfg.chunks; ++c)
    fields.push_back(make_chunk(cfg.values, c));

  std::fprintf(stderr, "bench_store: %u chunks x %zu values, store at %s\n",
               cfg.chunks, cfg.values, dir.string().c_str());

  int mismatches = 0;
  std::vector<bench::Row> rows;

  // Repetition count: median + MAD need ≥3 samples for the baseline gate to
  // have a real noise floor (--runs raises it further). Each rep uses its own
  // store directory so every cold pass is genuinely cold.
  const int reps = std::max(3, sweep.runs);

  // ---- cold / warm / reopen over a persistent store --------------------
  std::vector<double> cold_times, warm_times, reopen_times;
  u64 raw_bytes = 0, comp_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const fs::path rep_dir = dir / ("r" + std::to_string(rep));
    std::vector<Bytes> cold_streams, warm_streams, reopen_streams;
    u64 rb = 0, cb = 0;
    {
      store::ChunkStore::Options so;
      so.dir = rep_dir.string();
      store::ChunkStore cs(so);
      cold_times.push_back(run_pass(cfg, cs, fields, &cold_streams, &rb, &cb));
      warm_times.push_back(run_pass(cfg, cs, fields, &warm_streams, nullptr, nullptr));
      cs.sync();
    }
    {
      // Fresh process-equivalent: empty cache, everything served off the log.
      store::ChunkStore::Options so;
      so.dir = rep_dir.string();
      store::ChunkStore cs(so);
      reopen_times.push_back(run_pass(cfg, cs, fields, &reopen_streams, nullptr, nullptr));
      const store::SegmentStore::VerifyReport rep_v = cs.log()->verify();
      if (!rep_v.ok()) {
        std::fprintf(stderr, "bench_store: verify FAILED: %zu corrupt frame(s)\n",
                     rep_v.corrupt_frames);
        ++mismatches;
      }
    }
    if (rep == 0) {
      // Byte-identity is deterministic: checking the first rep proves all.
      raw_bytes = rb;
      comp_bytes = cb;
      for (unsigned c = 0; c < cfg.chunks; ++c) {
        if (warm_streams[c] != cold_streams[c]) {
          std::fprintf(stderr, "bench_store: chunk %u: warm stream differs from cold\n", c);
          ++mismatches;
        }
        if (reopen_streams[c] != cold_streams[c]) {
          std::fprintf(stderr, "bench_store: chunk %u: reopen stream differs from cold\n",
                       c);
          ++mismatches;
        }
      }
    }
  }
  const double cold_s = median(cold_times), warm_s = median(warm_times),
               reopen_s = median(reopen_times);
  rows.push_back(make_row("PFPS_cold", 0, cold_times, raw_bytes, comp_bytes));
  rows.push_back(make_row("PFPS_warm", 0, warm_times, raw_bytes, comp_bytes));
  rows.push_back(make_row("PFPS_reopen", 0, reopen_times, raw_bytes, comp_bytes));

  const double speedup = cold_s > 0 && warm_s > 0 ? cold_s / warm_s : 0.0;
  std::fprintf(stderr,
               "bench_store: cold %.1f MB/s, warm %.1f MB/s (%.1fx), "
               "reopen %.1f MB/s\n",
               rows[0].comp_mbps, rows[1].comp_mbps, speedup, rows[2].comp_mbps);
  if (speedup < cfg.min_speedup) {
    std::fprintf(stderr,
                 "bench_store: warm/cold speedup %.1fx below required %.1fx\n",
                 speedup, cfg.min_speedup);
    ++mismatches;
  }

  // ---- dup-ratio sweep over a memory-only store ------------------------
  // A request stream where `ratio` of the requests resend chunk 0's bytes;
  // effective throughput rises with the duplicate fraction because those
  // requests skip the compressor entirely.
  for (double dup : {0.0, 0.5, 1.0}) {
    std::vector<double> dup_times;
    u64 dr = 0, dc = 0;
    u64 hits = 0, misses = 0;
    for (int rep = 0; rep < reps; ++rep) {
      store::ChunkStore cs(store::ChunkStore::Options{});  // fresh per rep
      u64 rep_dr = 0, rep_dc = 0;
      const double t0 = now_s();
      for (unsigned c = 0; c < cfg.chunks; ++c) {
        const bool is_dup =
            static_cast<double>((c * 104729u) % 1000) < dup * 1000.0;
        const std::vector<float>& f = fields[is_dup ? 0 : c];
        const std::size_t raw_n = f.size() * sizeof(float);
        const common::Hash128 key =
            store::compress_key(f.data(), raw_n, DType::F32, EbType::ABS, kEps);
        Bytes stream;
        if (!cs.get(key, stream)) {
          pfpl::Params params;
          params.eps = kEps;
          stream = pfpl::compress(Field(f.data(), f.size()), params);
          cs.put(key, stream, store::ChunkMeta{DType::F32, EbType::ABS, kEps, raw_n});
        }
        rep_dr += raw_n;
        rep_dc += stream.size();
      }
      dup_times.push_back(now_s() - t0);
      if (rep == 0) {
        dr = rep_dr;
        dc = rep_dc;
        const store::ResultCache::Stats st = cs.cache().stats();
        hits = st.hits;
        misses = st.misses;
      }
    }
    rows.push_back(make_row("PFPS_dup", dup, dup_times, dr, dc));
    std::fprintf(stderr,
                 "bench_store: dup %.1f: %.1f MB/s, cache %llu hits / %llu misses\n",
                 dup, rows.back().comp_mbps,
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
  }

  bench::print_rows("Store", rows);
  obs::RunReport::global().add_section("store_cold_warm", [&] {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("chunks", cfg.chunks);
    w.kv("values", static_cast<unsigned long long>(cfg.values));
    w.kv("cold_s", cold_s);
    w.kv("warm_s", warm_s);
    w.kv("reopen_s", reopen_s);
    w.kv("warm_speedup", speedup);
    w.kv("mismatches", mismatches);
    w.end_object();
    return w.take();
  }());

  fs::remove_all(dir, ec);

  const int gate_rc = bench::finish();
  if (mismatches) return 1;
  return gate_rc;
}
