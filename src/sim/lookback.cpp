#include "sim/lookback.hpp"

#include <stdexcept>

namespace repro::sim {

namespace {
enum class State : u8 { Invalid, Aggregate, Prefix };
}

std::vector<u64> lookback_exclusive_offsets(const std::vector<u64>& sizes, std::size_t wave) {
  const std::size_t n = sizes.size();
  std::vector<u64> exclusive(n, 0);
  if (n == 0) return exclusive;
  if (wave == 0) wave = 1;

  std::vector<State> state(n, State::Invalid);
  std::vector<u64> aggregate(n, 0);
  std::vector<u64> inclusive(n, 0);
  std::vector<bool> done(n, false);
  std::size_t remaining = n;

  // Round-robin scheduler over a sliding window of `wave` resident blocks.
  std::size_t guard = 0;
  while (remaining > 0) {
    if (++guard > 64 * n + 64) throw std::logic_error("lookback: no forward progress");
    for (std::size_t b = 0; b < n && remaining > 0; ++b) {
      if (done[b]) continue;
      // Only blocks within the resident window may run; the window advances
      // as earlier blocks retire.
      std::size_t lowest_live = 0;
      while (lowest_live < n && done[lowest_live]) ++lowest_live;
      if (b >= lowest_live + wave) break;
      if (state[b] == State::Invalid) {
        aggregate[b] = sizes[b];  // local reduction of the block's sizes
        state[b] = State::Aggregate;
      }
      if (b == 0) {
        inclusive[0] = aggregate[0];
        exclusive[0] = 0;
        state[0] = State::Prefix;
        done[0] = true;
        --remaining;
        continue;
      }
      // Look back: sum predecessor aggregates until a full prefix is found.
      u64 running = 0;
      bool complete = false;
      for (std::size_t p = b; p-- > 0;) {
        if (state[p] == State::Prefix) {
          running += inclusive[p];
          complete = true;
          break;
        }
        if (state[p] == State::Aggregate) {
          running += aggregate[p];
          continue;
        }
        break;  // predecessor not published yet: spin (retry next slice)
      }
      if (complete) {
        exclusive[b] = running;
        inclusive[b] = running + aggregate[b];
        state[b] = State::Prefix;
        done[b] = true;
        --remaining;
      }
    }
  }
  return exclusive;
}

}  // namespace repro::sim
