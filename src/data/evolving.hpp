// Time-correlated "evolving field" suites for the temporal subsystem.
//
// Each suite is a deterministic generator of a frame *sequence* — the
// time-series analogue of the snapshot suites in synthetic.hpp — built to
// exercise the regimes the temporal encoder's I/P decision is sensitive to:
//
//   advect   f32  smoothly advected climate-like field: a multi-octave
//                 value-noise lattice sampled at positions drifting with a
//                 constant velocity plus slow deformation. Consecutive
//                 frames differ by far less than the intra-frame entropy —
//                 the P-frame win case.
//   diffuse  f64  particle densities: a sum of Gaussian blobs whose centres
//                 drift and whose widths grow diffusively. Smooth in space
//                 and time.
//   regime   f32  correlation-killing series: the first half of the frames
//                 (and, after the switch, the first half of the z-slabs)
//                 advect smoothly, while the remaining slabs are re-seeded
//                 fresh every frame — spatially smooth but temporally
//                 uncorrelated, so per-chunk intra fallback must engage.
//
// All generators are seeded and byte-deterministic across platforms (fixed
// splitmix64 streams, explicit double arithmetic) — tests and benches rely
// on that exactly like they do for the snapshot suites.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::data {

struct EvolvingSpec {
  std::string name;
  std::string description;
  DType dtype = DType::F32;
  std::string kind;  ///< generator id (see evolving.cpp)
};

/// The three evolving suites, in the order above.
std::vector<EvolvingSpec> evolving_suites();

/// Lookup by name; throws std::invalid_argument for an unknown suite.
EvolvingSpec find_evolving(const std::string& name);

/// One generated frame sequence: every frame shares the same dims/dtype.
struct FrameSequence {
  std::string name;
  DType dtype = DType::F32;
  std::array<std::size_t, 3> dims{1, 1, 0};
  std::vector<std::vector<float>> f32;   ///< per-frame values (dtype == F32)
  std::vector<std::vector<double>> f64;  ///< per-frame values (dtype == F64)

  std::size_t frames() const { return dtype == DType::F32 ? f32.size() : f64.size(); }
  std::size_t frame_values() const { return dims[0] * dims[1] * dims[2]; }

  Field frame(std::size_t i) const {
    if (dtype == DType::F32) return Field(f32[i].data(), dims);
    return Field(f64[i].data(), dims);
  }
};

/// Generate `frames` frames of roughly `target_values` scalars each (the
/// generator picks a z-slabbed 3D shape). Deterministic in (spec, sizes,
/// seed).
FrameSequence generate_evolving(const EvolvingSpec& spec,
                                std::size_t target_values = 1 << 16,
                                std::size_t frames = 64, u64 seed = 0x5D12B1E5u);

}  // namespace repro::data
