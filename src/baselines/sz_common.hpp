// Shared machinery for the SZ-class baselines (SZ2, SZ3): prediction +
// linear-scaling quantization with an outlier list, Huffman + LZ backend.
//
// This is the "prediction-based" compressor family of the paper's related
// work (Section VI): predict each value from already-decompressed neighbours,
// quantize the residual into 2^16 bins, entropy-code the bin indices, and
// store unpredictable values in a separate outlier list — the design PFPL
// explicitly deviates from (PFPL inlines outliers to stay parallel).
#pragma once

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lz.hpp"

namespace repro::baselines {

/// Linear-scaling quantizer with radius 2^15 (SZ's default 65536 bins).
/// Code 0 is reserved for outliers (stored exactly in a side list).
template <typename T>
class SzQuantizer {
 public:
  static constexpr i32 radius = 1 << 15;

  explicit SzQuantizer(double eps) : eps_(eps), two_eps_(2.0 * eps) {}

  /// Quantize `val` against `pred`; returns the code and sets `recon` to the
  /// decompressor's value. Appends to `outliers` when unpredictable.
  u16 quantize(T pred, T val, T& recon, std::vector<T>& outliers) {
    double diff = static_cast<double>(val) - static_cast<double>(pred);
    double qd = std::nearbyint(diff / two_eps_);
    if (std::isfinite(diff) && std::abs(qd) < radius - 1) {
      i32 q = static_cast<i32>(qd);
      T r = static_cast<T>(static_cast<double>(pred) + static_cast<double>(q) * two_eps_);
      // SZ double-checks the reconstruction (guaranteed ABS bound).
      if (std::abs(static_cast<double>(val) - static_cast<double>(r)) <= eps_) {
        recon = r;
        return static_cast<u16>(q + radius);
      }
    }
    outliers.push_back(val);
    recon = val;
    return 0;
  }

  /// Decompressor side: reconstruct from code (code != 0).
  T reconstruct(T pred, u16 code) const {
    i32 q = static_cast<i32>(code) - radius;
    return static_cast<T>(static_cast<double>(pred) + static_cast<double>(q) * two_eps_);
  }

 private:
  double eps_;
  double two_eps_;
};

/// Serialized SZ-family payload: Huffman(codes) + LZ, then the outlier list.
struct SzPayload {
  std::vector<u16> codes;
  std::vector<u8> outlier_bytes;
};

inline Bytes sz_pack(const SzPayload& p) {
  Bytes body = lossless::lz_encode(lossless::huffman_encode(p.codes));
  Bytes out;
  u64 body_size = body.size(), outlier_size = p.outlier_bytes.size();
  out.insert(out.end(), reinterpret_cast<u8*>(&body_size),
             reinterpret_cast<u8*>(&body_size) + 8);
  out.insert(out.end(), reinterpret_cast<u8*>(&outlier_size),
             reinterpret_cast<u8*>(&outlier_size) + 8);
  out.insert(out.end(), body.begin(), body.end());
  out.insert(out.end(), p.outlier_bytes.begin(), p.outlier_bytes.end());
  return out;
}

inline SzPayload sz_unpack(const u8* data, std::size_t size, std::size_t* consumed = nullptr) {
  if (size < 16) throw CompressionError("sz: truncated payload");
  u64 body_size, outlier_size;
  std::memcpy(&body_size, data, 8);
  std::memcpy(&outlier_size, data + 8, 8);
  if (16 + body_size + outlier_size > size) throw CompressionError("sz: truncated payload");
  SzPayload p;
  p.codes = lossless::huffman_decode(lossless::lz_decode(data + 16, body_size));
  p.outlier_bytes.assign(data + 16 + body_size, data + 16 + body_size + outlier_size);
  if (consumed) *consumed = 16 + body_size + outlier_size;
  return p;
}

template <typename T>
void append_scalar(std::vector<u8>& out, T v) {
  const u8* p = reinterpret_cast<const u8*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T take_scalar(std::span<const u8> bytes, std::size_t index) {
  T v;
  if ((index + 1) * sizeof(T) > bytes.size()) throw CompressionError("sz: outlier underrun");
  std::memcpy(&v, bytes.data() + index * sizeof(T), sizeof(T));
  return v;
}

/// Common compressed-stream header for all baselines (each adds its own
/// payload after it).
struct BaselineHeader {
  u32 magic = 0;
  DType dtype = DType::F32;
  EbType eb = EbType::ABS;
  u16 pad = 0;
  double eps = 0.0;
  double derived = 0.0;  ///< eb-derived parameter (e.g. NOA absolute bound)
  u64 count = 0;
  u64 dims[3] = {1, 1, 1};
};

inline void write_bheader(const BaselineHeader& h, Bytes& out) {
  std::size_t off = out.size();
  out.resize(off + sizeof(BaselineHeader));
  std::memcpy(out.data() + off, &h, sizeof(BaselineHeader));
}

inline BaselineHeader read_bheader(const Bytes& in, u32 expect_magic) {
  if (in.size() < sizeof(BaselineHeader)) throw CompressionError("baseline: truncated header");
  BaselineHeader h;
  std::memcpy(&h, in.data(), sizeof(BaselineHeader));
  if (h.magic != expect_magic) throw CompressionError("baseline: bad magic");
  // Sanity-cap the value count so corrupted headers cannot drive giant
  // allocations: no baseline represents a value in less than 1/4096 of a
  // byte, and the dims product must match the count.
  if (h.count > in.size() * 4096)
    throw CompressionError("baseline: implausible value count");
  if (h.dims[0] * h.dims[1] * h.dims[2] != h.count)
    throw CompressionError("baseline: dims/count mismatch");
  return h;
}

/// NOA -> ABS bound conversion shared by every baseline that supports NOA.
template <typename T>
double noa_to_abs(std::span<const T> v, double eps) {
  bool any = false;
  double mn = 0, mx = 0;
  for (T x : v) {
    if (!std::isfinite(x)) continue;
    double d = static_cast<double>(x);
    if (!any) {
      mn = mx = d;
      any = true;
    } else {
      mn = std::min(mn, d);
      mx = std::max(mx, d);
    }
  }
  return any ? eps * (mx - mn) : 0.0;
}

}  // namespace repro::baselines
