// Figures 8 & 9 reproduction: REL error bounds — compression ratio vs.
// compression throughput on single- (Fig 8) and double-precision (Fig 9)
// data. All suites are used ("We used all inputs to produce the results").
// Only PFPL, SZ2, and ZFP support REL; the capability filter enforces that.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::REL;

  cfg.dtype = DType::F32;
  bench::print_rows("Fig8_REL_compress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  bench::print_rows("Fig9_REL_compress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
