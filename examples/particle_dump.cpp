// Cosmology particle dumps with relative error bounds — the HACC-style
// workload (Table II): per-particle positions and velocities written every
// few steps, where small velocities near zero must keep high precision
// (Section II-B motivates REL for exactly this).
//
//   build/examples/particle_dump
//
// Compares ABS vs REL on the same velocity data: ABS loses all detail of the
// slow particles; REL preserves every particle to within 0.1% of its own
// magnitude — the reason REL support (with a guarantee) matters.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pfpl.hpp"
#include "data/rng.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;

int main() {
  // Velocities: most particles slow (cluster members), a hot tail.
  data::Rng rng(99);
  std::vector<float> vel(1 << 20);
  for (auto& v : vel) {
    double speed = rng.uniform() < 0.8 ? 0.3 : 300.0;
    v = static_cast<float>(speed * rng.gaussian());
  }

  const double eps = 1e-3;
  for (EbType eb : {EbType::ABS, EbType::REL}) {
    Bytes c = pfpl::compress(Field(vel.data(), vel.size()), {.eps = eps, .eb = eb});
    auto back = pfpl::decompress_as<float>(c);
    // How well did the slow particles survive?
    double worst_slow_rel = 0;
    std::size_t slow = 0;
    for (std::size_t i = 0; i < vel.size(); ++i) {
      if (std::abs(vel[i]) > 1.0f || vel[i] == 0.0f) continue;
      ++slow;
      worst_slow_rel = std::max(
          worst_slow_rel, std::abs(static_cast<double>(vel[i]) - back[i]) / std::abs(vel[i]));
    }
    std::size_t violations = metrics::count_violations(
        std::span<const float>(vel), std::span<const float>(back), eps, eb);
    std::printf("%s eps=%g: ratio %6.2fx, slow particles (%zu) worst rel err %.3g, %s\n",
                to_string(eb), eps,
                metrics::compression_ratio(vel.size() * 4, c.size()), slow, worst_slow_rel,
                violations == 0 ? "bound guaranteed" : "BOUND VIOLATED");
  }
  std::printf("\nABS flattens slow particles to the bin grid; REL keeps each one to ~0.1%%.\n");
  return 0;
}
