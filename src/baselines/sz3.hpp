// SZ3-like baseline: multi-level interpolation prediction + linear-scaling
// quantization + Huffman + LZ (Liang et al., IEEE TBD 2023; paper Section VI).
//
// Reproduces the SZ3 profile of Table III: ABS and NOA (both guaranteed),
// no REL, float+double, CPU only. Two variants, as evaluated in the paper:
//   * SZ3_Serial — one global model, highest compression ratio;
//   * SZ3_OMP    — independent blocks compressed in parallel; compresses
//     noticeably less ("the serial version includes well-compressing
//     transformations that are not parallelism friendly") but streams remain
//     interchangeable with serial SZ3 for decompression.
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class Sz3Compressor final : public Compressor {
 public:
  explicit Sz3Compressor(bool parallel) : parallel_(parallel) {}

  std::string name() const override { return parallel_ ? "SZ3_OMP" : "SZ3_Serial"; }
  Features features() const override {
    Features f;
    f.abs = f.noa = true;
    f.f32 = f.f64 = true;
    f.cpu = true;
    f.guarantee_abs = f.guarantee_noa = true;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;

 private:
  bool parallel_;
};

}  // namespace repro::baselines
