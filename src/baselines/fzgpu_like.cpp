#include "baselines/fzgpu_like.hpp"

#include <cmath>
#include <exception>

#include "baselines/sz_common.hpp"
#include "bits/bitshuffle.hpp"
#include "bits/zerobyte.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x55475A46u;  // "FZGU"
constexpr std::size_t kChunk = 4096;  // u32 words per fused kernel chunk

/// FZ-GPU prequantizes like cuSZp (wrapping cast — same overflow flaw, hence
/// the '○' in Table III) but then bit-shuffles the delta words and removes
/// zero regions instead of fixed-length packing.
i32 prequant(float v, double recip) {
  double q = std::nearbyint(static_cast<double>(v) * recip);
  if (!std::isfinite(q)) q = 0.0;
  return static_cast<i32>(static_cast<u32>(static_cast<i64>(q)));
}

Bytes compress_f32(const Field& in, double eps, EbType eb) {
  auto d = in.as<float>();
  if (eb != EbType::NOA) throw CompressionError("FZ-GPU only supports NOA bounds");
  if (!in.is_3d()) throw CompressionError("FZ-GPU requires 3D inputs");
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = DType::F32;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  double abs_eps = noa_to_abs(d, eps);
  if (!(abs_eps > 0)) abs_eps = 1e-300;
  h.derived = abs_eps;
  const double recip = 0.5 / abs_eps;

  const std::size_t n = d.size();
  const std::size_t nchunks = (n + kChunk - 1) / kChunk;
  Bytes out;
  write_bheader(h, out);
  std::vector<u32> sizes(nchunks);
  std::vector<Bytes> payloads(nchunks);
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nchunks); ++c) {
    std::size_t beg = static_cast<std::size_t>(c) * kChunk;
    std::size_t len = std::min(kChunk, n - beg);
    std::size_t padded = (len + 31) / 32 * 32;
    std::vector<u32> w(padded, 0);
    i32 prev = 0;
    for (std::size_t i = 0; i < len; ++i) {
      i32 q = prequant(d[beg + i], recip);
      w[i] = static_cast<u32>(q - prev);
      prev = q;
    }
    bits::bitshuffle(w.data(), padded);
    bits::zerobyte_encode(reinterpret_cast<const u8*>(w.data()), padded * 4, payloads[c]);
    sizes[c] = static_cast<u32>(payloads[c].size());
  }
  const u8* sp = reinterpret_cast<const u8*>(sizes.data());
  out.insert(out.end(), sp, sp + nchunks * 4);
  for (const Bytes& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::vector<u8> decompress_f32(const Bytes& in, const BaselineHeader& h) {
  const std::size_t n = h.count;
  const std::size_t nchunks = (n + kChunk - 1) / kChunk;
  std::size_t pos = sizeof(BaselineHeader);
  if (pos + nchunks * 4 > in.size()) throw CompressionError("fzgpu: truncated size table");
  std::vector<u32> sizes(nchunks);
  std::memcpy(sizes.data(), in.data() + pos, nchunks * 4);
  pos += nchunks * 4;
  std::vector<u64> offsets(nchunks, 0);
  for (std::size_t c = 1; c < nchunks; ++c) offsets[c] = offsets[c - 1] + sizes[c - 1];
  std::vector<u8> out(n * 4);
  float* values = reinterpret_cast<float*>(out.data());
  const double two_eps = 2.0 * h.derived;
  std::exception_ptr err;  // exceptions must not escape the parallel region
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nchunks); ++c) {
    try {
      std::size_t beg = static_cast<std::size_t>(c) * kChunk;
      std::size_t len = std::min(kChunk, n - beg);
      std::size_t padded = (len + 31) / 32 * 32;
      std::size_t off = pos + offsets[c];
      if (off + sizes[c] > in.size()) throw CompressionError("fzgpu: truncated chunk");
      std::vector<u32> w(padded);
      bits::zerobyte_decode(in.data() + off, sizes[c], reinterpret_cast<u8*>(w.data()),
                            padded * 4);
      bits::bitshuffle(w.data(), padded);
      i32 q = 0;
      for (std::size_t i = 0; i < len; ++i) {
        q += static_cast<i32>(w[i]);
        values[beg + i] = static_cast<float>(static_cast<double>(q) * two_eps);
      }
    } catch (...) {
#pragma omp critical
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
  return out;
}

}  // namespace

Bytes FzGpuLikeCompressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype != DType::F32) throw CompressionError("FZ-GPU only supports float data");
  return compress_f32(in, eps, eb);
}

std::vector<u8> FzGpuLikeCompressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  return decompress_f32(stream, h);
}

}  // namespace repro::baselines
