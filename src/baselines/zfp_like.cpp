#include "baselines/zfp_like.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/sz_common.hpp"
#include "bits/negabinary.hpp"
#include "lossless/bitio.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x50465A42u;  // "BZFP"

// Integer type used for the decorrelating transform.
template <typename T>
using Int = std::conditional_t<std::is_same_v<T, float>, i32, i64>;
template <typename T>
using UInt = std::conditional_t<std::is_same_v<T, float>, u32, u64>;

template <typename T>
constexpr int int_prec() {
  return std::is_same_v<T, float> ? 32 : 64;
}

// ZFP's forward/inverse lifting transform on 4 values with stride s.
template <typename I>
void fwd_lift(I* p, std::size_t s) {
  I x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

template <typename I>
void inv_lift(I* p, std::size_t s) {
  I x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Bit planes kept for a block with common exponent e.
/// ABS (accuracy mode): down to the bound's exponent plus transform guard
/// bits; REL (precision mode): a fixed count independent of e — ZFP's
/// "truncate least-significant bits" relative bounding.
int planes_kept(int e, double eps, EbType eb, int rank, int prec) {
  int p;
  if (eb == EbType::REL) {
    p = static_cast<int>(std::ceil(-std::log2(eps))) + 3;
  } else {
    int emin = static_cast<int>(std::floor(std::log2(eps)));
    p = e - emin + 1 + 2 * rank;
  }
  return std::clamp(p, 0, prec);
}

template <typename T>
struct BlockCodec {
  using I = Int<T>;
  using U = UInt<T>;
  static constexpr int prec = int_prec<T>();

  int rank;              // 1, 2, or 3
  std::size_t bs;        // block size: 4^rank
  double eps;
  EbType eb;

  void transform_fwd(I* b) const {
    if (rank >= 1)
      for (std::size_t y = 0; y < bs / 4; ++y) fwd_lift(b + y * 4, 1);
    if (rank >= 2)
      for (std::size_t z = 0; z < bs / 16; ++z)
        for (std::size_t x = 0; x < 4; ++x) fwd_lift(b + z * 16 + x, 4);
    if (rank >= 3)
      for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x) fwd_lift(b + y * 4 + x, 16);
  }
  void transform_inv(I* b) const {
    if (rank >= 3)
      for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x) inv_lift(b + y * 4 + x, 16);
    if (rank >= 2)
      for (std::size_t z = 0; z < bs / 16; ++z)
        for (std::size_t x = 0; x < 4; ++x) inv_lift(b + z * 16 + x, 4);
    if (rank >= 1)
      for (std::size_t y = 0; y < bs / 4; ++y) inv_lift(b + y * 4, 1);
  }

  void encode_block(const T* vals, lossless::BitWriter& bw) const {
    double vmax = 0;
    for (std::size_t i = 0; i < bs; ++i) {
      double a = std::abs(static_cast<double>(vals[i]));
      if (std::isfinite(a)) vmax = std::max(vmax, a);
    }
    if (vmax == 0.0) {
      bw.put_bit(false);  // all-zero block
      return;
    }
    bw.put_bit(true);
    int e = static_cast<int>(std::floor(std::log2(vmax)));
    bw.put(static_cast<u64>(e + 16384), 16);
    double scale = std::ldexp(1.0, prec - 3 - e);
    std::vector<I> q(bs);
    for (std::size_t i = 0; i < bs; ++i) {
      double v = static_cast<double>(vals[i]);
      if (!std::isfinite(v)) v = 0.0;  // ZFP does not handle non-finite data
      q[i] = static_cast<I>(v * scale);
    }
    transform_fwd(q.data());
    std::vector<U> nb(bs);
    for (std::size_t i = 0; i < bs; ++i)
      nb[i] = bits::to_negabinary<U>(static_cast<U>(q[i]));
    int keep = planes_kept(e, eps, eb, rank, prec);
    // Bit planes from the MSB down, with a per-16-coefficient group flag.
    for (int p = prec - 1; p >= prec - keep; --p) {
      for (std::size_t g = 0; g < bs; g += 16) {
        std::size_t gend = std::min(g + 16, bs);
        bool any = false;
        for (std::size_t i = g; i < gend; ++i) any |= (nb[i] >> p) & 1u;
        bw.put_bit(any);
        if (any)
          for (std::size_t i = g; i < gend; ++i) bw.put_bit((nb[i] >> p) & 1u);
      }
    }
  }

  void decode_block(T* vals, lossless::BitReader& br) const {
    if (!br.get_bit()) {
      for (std::size_t i = 0; i < bs; ++i) vals[i] = T(0);
      return;
    }
    int e = static_cast<int>(br.get(16)) - 16384;
    int keep = planes_kept(e, eps, eb, rank, prec);
    std::vector<U> nb(bs, 0);
    for (int p = prec - 1; p >= prec - keep; --p) {
      for (std::size_t g = 0; g < bs; g += 16) {
        std::size_t gend = std::min(g + 16, bs);
        if (br.get_bit())
          for (std::size_t i = g; i < gend; ++i) nb[i] |= static_cast<U>(br.get_bit()) << p;
      }
    }
    std::vector<I> q(bs);
    for (std::size_t i = 0; i < bs; ++i)
      q[i] = static_cast<I>(bits::from_negabinary<U>(nb[i]));
    transform_inv(q.data());
    double inv_scale = std::ldexp(1.0, -(prec - 3 - e));
    for (std::size_t i = 0; i < bs; ++i)
      vals[i] = static_cast<T>(static_cast<double>(q[i]) * inv_scale);
  }
};

/// Iterate 4^rank blocks over the field, gathering with edge clamping.
template <typename T, typename FnBlock>
void for_each_block(std::array<std::size_t, 3> dims, int rank, FnBlock&& fn) {
  std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  std::size_t bz = rank >= 3 ? 4 : 1, by = rank >= 2 ? 4 : 1, bx = 4;
  for (std::size_t z0 = 0; z0 < nz; z0 += bz)
    for (std::size_t y0 = 0; y0 < ny; y0 += by)
      for (std::size_t x0 = 0; x0 < nx; x0 += bx) fn(z0, y0, x0, bz, by, bx);
}

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb) {
  auto d = in.as<T>();
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  if (eb == EbType::NOA) throw CompressionError("ZFP does not support NOA bounds");
  if (!(eps > 0)) throw CompressionError("ZFP requires a positive bound");
  int rank = in.rank();
  BlockCodec<T> codec{rank, std::size_t{1} << (2 * rank), eps, eb};
  Bytes out;
  write_bheader(h, out);
  lossless::BitWriter bw(out);
  std::size_t nz = in.dims[0], ny = in.dims[1], nx = in.dims[2];
  std::vector<T> block(codec.bs);
  for_each_block<T>(in.dims, rank, [&](std::size_t z0, std::size_t y0, std::size_t x0,
                                       std::size_t bz, std::size_t by, std::size_t bx) {
    std::size_t bi = 0;
    for (std::size_t z = 0; z < bz; ++z)
      for (std::size_t y = 0; y < by; ++y)
        for (std::size_t x = 0; x < bx; ++x) {
          std::size_t zz = std::min(z0 + z, nz - 1), yy = std::min(y0 + y, ny - 1),
                      xx = std::min(x0 + x, nx - 1);
          block[bi++] = d[(zz * ny + yy) * nx + xx];
        }
    codec.encode_block(block.data(), bw);
  });
  bw.flush();
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  std::array<std::size_t, 3> dims{h.dims[0], h.dims[1], h.dims[2]};
  Field shape(static_cast<const T*>(nullptr), dims);
  int rank = shape.rank();
  BlockCodec<T> codec{rank, std::size_t{1} << (2 * rank), h.eps, h.eb};
  std::vector<u8> out(h.count * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());
  lossless::BitReader br(in.data() + sizeof(BaselineHeader), in.size() - sizeof(BaselineHeader));
  std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  std::vector<T> block(codec.bs);
  for_each_block<T>(dims, rank, [&](std::size_t z0, std::size_t y0, std::size_t x0,
                                    std::size_t bz, std::size_t by, std::size_t bx) {
    codec.decode_block(block.data(), br);
    std::size_t bi = 0;
    for (std::size_t z = 0; z < bz; ++z)
      for (std::size_t y = 0; y < by; ++y)
        for (std::size_t x = 0; x < bx; ++x) {
          std::size_t zz = z0 + z, yy = y0 + y, xx = x0 + x;
          T v = block[bi++];
          if (zz < nz && yy < ny && xx < nx) values[(zz * ny + yy) * nx + xx] = v;
        }
  });
  if (br.truncated()) throw CompressionError("zfp: truncated stream");
  return out;
}

}  // namespace

Bytes ZfpLikeCompressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb);
  return compress_typed<double>(in, eps, eb);
}

std::vector<u8> ZfpLikeCompressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
