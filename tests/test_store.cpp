// Tests for the PFPS tiered chunk store: the 128-bit content hash, the
// sharded in-memory LRU, the persistent segment log (including crash
// recovery and corruption detection), the two-tier facade, and the batch
// service's stored-chunk reuse.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/hash.hpp"
#include "core/pfpl.hpp"
#include "store/cache.hpp"
#include "store/segment_log.hpp"
#include "store/store.hpp"
#include "svc/batch.hpp"

using namespace repro;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test store directory under the system temp dir.
class StoreDir {
 public:
  explicit StoreDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("pfpl_test_store_" + tag)) {
    fs::remove_all(path_);
  }
  ~StoreDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

common::Hash128 key_of(unsigned i) {
  return common::hash128(&i, sizeof i);
}

Bytes bytes_of(std::size_t n, u8 fill) { return Bytes(n, fill); }

std::vector<float> make_field_values(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>((i % 97) * 0.25 + seed);
  return v;
}

}  // namespace

// ---------------------------------------------------------------- Hash128

TEST(Hash128, StableDigests) {
  // On-disk keys must never change across refactors: these digests are part
  // of the PFPS format (a silent hash change would orphan every stored
  // chunk). Reference values computed once from the shipped implementation.
  const char* s = "PFPS hash stability probe";
  EXPECT_EQ(common::hash128(s, 25).hex(), "26f8eebab553a34003d15427f66709be");
  EXPECT_EQ(common::hash128(s, 25, 42).hex(), "43273c9f5ca65d7978851ee8ac53d856");
  EXPECT_TRUE(common::hash128("", 0).is_zero());
}

TEST(Hash128, HexParseRoundTrip) {
  const common::Hash128 h = common::hash128("roundtrip", 9);
  EXPECT_EQ(h.hex().size(), 32u);
  common::Hash128 back;
  ASSERT_TRUE(common::Hash128::parse(h.hex(), back));
  EXPECT_EQ(back, h);
  common::Hash128 junk;
  EXPECT_FALSE(common::Hash128::parse("zz", junk));
  EXPECT_FALSE(common::Hash128::parse(std::string(32, 'g'), junk));
  EXPECT_TRUE(common::Hash128::parse(std::string(32, '0'), junk));
  EXPECT_TRUE(junk.is_zero());
}

TEST(Hash128, SensitiveToEveryInput) {
  Bytes a(64, 0x5a);
  const common::Hash128 base = common::hash128(a.data(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] ^= 1;
    EXPECT_NE(common::hash128(a.data(), a.size()), base) << "byte " << i;
    a[i] ^= 1;
  }
  EXPECT_NE(common::hash128(a.data(), a.size() - 1), base);
  EXPECT_NE(common::hash128(a.data(), a.size(), 1), base);
}

TEST(StoreKeys, DomainSeparation) {
  Bytes raw(256, 0x11);
  const auto c = store::compress_key(raw.data(), raw.size(), DType::F32,
                                     EbType::ABS, 1e-3);
  // Same bytes, different request parameters -> different keys.
  EXPECT_NE(c, store::compress_key(raw.data(), raw.size(), DType::F64,
                                   EbType::ABS, 1e-3));
  EXPECT_NE(c, store::compress_key(raw.data(), raw.size(), DType::F32,
                                   EbType::REL, 1e-3));
  EXPECT_NE(c, store::compress_key(raw.data(), raw.size(), DType::F32,
                                   EbType::ABS, 1e-4));
  // Compress and decompress keys over the same bytes never alias.
  EXPECT_NE(c, store::decompress_key(raw.data(), raw.size()));
  // Deterministic.
  EXPECT_EQ(c, store::compress_key(raw.data(), raw.size(), DType::F32,
                                   EbType::ABS, 1e-3));
}

// ------------------------------------------------------------- ResultCache

TEST(ResultCache, HitMissAndAccounting) {
  store::ResultCache::Options o;
  o.byte_budget = 1 << 20;
  o.shards = 4;
  store::ResultCache cache(o);
  Bytes out;
  EXPECT_FALSE(cache.get(key_of(1), out));
  cache.put(key_of(1), bytes_of(100, 0xaa));
  ASSERT_TRUE(cache.get(key_of(1), out));
  EXPECT_EQ(out, bytes_of(100, 0xaa));
  EXPECT_TRUE(cache.contains(key_of(1)));
  EXPECT_FALSE(cache.contains(key_of(2)));

  const store::ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.bytes, 100u);
  EXPECT_EQ(st.entries, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_FALSE(cache.get(key_of(1), out));
}

TEST(ResultCache, LruEvictionByBytes) {
  // One shard so recency order is global and deterministic.
  store::ResultCache::Options o;
  o.byte_budget = 1000;
  o.shards = 1;
  store::ResultCache cache(o);
  for (unsigned i = 0; i < 10; ++i) cache.put(key_of(i), bytes_of(100, u8(i)));
  EXPECT_EQ(cache.stats().entries, 10u);

  // Touch key 0 so it is MRU, then insert past the budget: key 1 (now LRU)
  // must be the eviction victim, key 0 must survive.
  Bytes out;
  ASSERT_TRUE(cache.get(key_of(0), out));
  cache.put(key_of(100), bytes_of(100, 0xff));
  EXPECT_TRUE(cache.contains(key_of(0)));
  EXPECT_TRUE(cache.contains(key_of(100)));
  EXPECT_FALSE(cache.contains(key_of(1)));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 1000u);
}

TEST(ResultCache, OversizeValueRejected) {
  store::ResultCache::Options o;
  o.byte_budget = 1000;
  o.shards = 4;  // shard budget = 250
  store::ResultCache cache(o);
  cache.put(key_of(1), bytes_of(100, 1));
  cache.put(key_of(2), bytes_of(500, 2));  // larger than any shard budget
  EXPECT_TRUE(cache.contains(key_of(1)));
  EXPECT_FALSE(cache.contains(key_of(2)));
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
}

TEST(ResultCache, SameKeyPutRefreshesNotDuplicates) {
  store::ResultCache::Options o;
  o.byte_budget = 1 << 16;
  o.shards = 1;
  store::ResultCache cache(o);
  cache.put(key_of(7), bytes_of(64, 1));
  cache.put(key_of(7), bytes_of(64, 1));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 64u);
}

TEST(ResultCache, ConcurrentMixedTraffic) {
  store::ResultCache::Options o;
  o.byte_budget = 1 << 20;
  o.shards = 8;
  store::ResultCache cache(o);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t)
    threads.emplace_back([&cache, t] {
      Bytes out;
      for (unsigned i = 0; i < 500; ++i) {
        const unsigned k = (t * 131 + i) % 64;
        if (cache.get(key_of(k), out)) {
          ASSERT_EQ(out.size(), 32u + k);
        } else {
          cache.put(key_of(k), bytes_of(32 + k, u8(k)));
        }
      }
    });
  for (auto& th : threads) th.join();
  const store::ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 8u * 500u);
  EXPECT_LE(st.bytes, o.byte_budget);
}

// ------------------------------------------------------------ SegmentStore

TEST(SegmentStore, PutGetRoundTripWithMeta) {
  StoreDir dir("roundtrip");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  store::SegmentStore log(o);
  const store::ChunkMeta meta{DType::F64, EbType::REL, 1e-4, 4096};
  EXPECT_TRUE(log.put(key_of(1), bytes_of(333, 0x42), meta));
  Bytes out;
  store::ChunkMeta back;
  ASSERT_TRUE(log.get(key_of(1), out, &back));
  EXPECT_EQ(out, bytes_of(333, 0x42));
  EXPECT_EQ(back.dtype, DType::F64);
  EXPECT_EQ(back.eb, EbType::REL);
  EXPECT_DOUBLE_EQ(back.eps, 1e-4);
  EXPECT_EQ(back.raw_size, 4096u);
  EXPECT_FALSE(log.get(key_of(2), out));
}

TEST(SegmentStore, DedupByContentKey) {
  StoreDir dir("dedup");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  store::SegmentStore log(o);
  EXPECT_TRUE(log.put(key_of(1), bytes_of(100, 1), {}));
  const u64 live = log.live_bytes();
  EXPECT_FALSE(log.put(key_of(1), bytes_of(100, 1), {}));  // no-op
  EXPECT_EQ(log.live_bytes(), live);
  EXPECT_EQ(log.entry_count(), 1u);
}

TEST(SegmentStore, PersistsAcrossReopen) {
  StoreDir dir("reopen");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  {
    store::SegmentStore log(o);
    for (unsigned i = 0; i < 20; ++i)
      log.put(key_of(i), bytes_of(50 + i, u8(i)), {DType::F32, EbType::ABS, 1e-3, 50});
  }
  store::SegmentStore log(o);
  EXPECT_EQ(log.entry_count(), 20u);
  EXPECT_EQ(log.open_report().torn_bytes, 0u);
  EXPECT_FALSE(log.open_report().manifest_recovered);
  for (unsigned i = 0; i < 20; ++i) {
    Bytes out;
    ASSERT_TRUE(log.get(key_of(i), out)) << i;
    EXPECT_EQ(out, bytes_of(50 + i, u8(i)));
  }
  EXPECT_TRUE(log.verify().ok());
}

TEST(SegmentStore, TornTailTruncatedOnReopen) {
  StoreDir dir("torn");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  fs::path active;
  {
    store::SegmentStore log(o);
    log.put(key_of(1), bytes_of(200, 1), {});
    log.sync();
    active = dir.path() / "seg-00000001.pfps";
    ASSERT_TRUE(fs::exists(active));
  }
  // Simulate a crash mid-append: garbage after the last valid frame.
  {
    std::FILE* f = std::fopen(active.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const Bytes garbage = bytes_of(37, 0xde);
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
  }
  store::SegmentStore log(o);
  EXPECT_EQ(log.open_report().torn_bytes, 37u);
  EXPECT_EQ(log.entry_count(), 1u);
  Bytes out;
  ASSERT_TRUE(log.get(key_of(1), out));
  EXPECT_EQ(out, bytes_of(200, 1));
  EXPECT_TRUE(log.verify().ok());
  // The torn bytes are gone from disk, so appends resume cleanly.
  EXPECT_TRUE(log.put(key_of(2), bytes_of(10, 2), {}));
  EXPECT_TRUE(log.verify().ok());
}

TEST(SegmentStore, SealedSegmentCorruptionDetected) {
  StoreDir dir("corrupt");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  o.max_segment_bytes = 512;  // force rotation -> sealed segments
  {
    store::SegmentStore log(o);
    for (unsigned i = 0; i < 8; ++i) log.put(key_of(i), bytes_of(200, u8(i)), {});
    ASSERT_GT(log.open_report().segments + 1, 1u);
  }
  // Flip a payload byte inside the first (sealed) segment.
  const fs::path seg = dir.path() / "seg-00000001.pfps";
  ASSERT_TRUE(fs::exists(seg));
  {
    std::FILE* f = std::fopen(seg.string().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(store::kSegmentHeaderSize +
                                    store::kChunkFrameHeaderSize + 5),
               SEEK_SET);
    u8 b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0xff;
    std::fseek(f, -1, SEEK_CUR);
    std::fwrite(&b, 1, 1, f);
    std::fclose(f);
  }
  store::SegmentStore log(o);
  const store::SegmentStore::VerifyReport rep = log.verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(rep.corrupt_frames, 1u);
}

TEST(SegmentStore, ManifestRecoveredAfterDeletion) {
  StoreDir dir("manifest");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  {
    store::SegmentStore log(o);
    log.put(key_of(1), bytes_of(64, 1), {});
  }
  fs::remove(dir.path() / "manifest.pfps");
  store::SegmentStore log(o);
  EXPECT_TRUE(log.open_report().manifest_recovered);
  Bytes out;
  EXPECT_TRUE(log.get(key_of(1), out));
  // Reopen once more: the rebuilt manifest must now be clean.
  log.sync();
}

TEST(SegmentStore, RotationAndCompact) {
  StoreDir dir("compact");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  o.max_segment_bytes = 1024;
  store::SegmentStore log(o);
  // Interleave unique puts with duplicate puts (dedup leaves no dead bytes;
  // dead bytes here come only from what compact() is told to drop).
  for (unsigned i = 0; i < 16; ++i)
    log.put(key_of(i), bytes_of(300, u8(i)), {});
  const u64 gen_before = log.generation();
  ASSERT_GT(log.open_report().segments + log.generation(), 0u);

  const store::SegmentStore::CompactReport rep = log.compact();
  EXPECT_EQ(rep.live_entries, 16u);
  EXPECT_GT(log.generation(), gen_before);
  EXPECT_EQ(log.dead_bytes(), 0u);
  for (unsigned i = 0; i < 16; ++i) {
    Bytes out;
    ASSERT_TRUE(log.get(key_of(i), out)) << i;
    EXPECT_EQ(out, bytes_of(300, u8(i)));
  }
  EXPECT_TRUE(log.verify().ok());
  // And everything still reads back after a reopen of the compacted store.
  log.sync();
}

// -------------------------------------------------------------- ChunkStore

TEST(ChunkStore, MemoryOnlyTier) {
  store::ChunkStore cs(store::ChunkStore::Options{});
  EXPECT_FALSE(cs.persistent());
  EXPECT_EQ(cs.log(), nullptr);
  cs.put(key_of(1), bytes_of(128, 7), {});
  Bytes out;
  ASSERT_TRUE(cs.get(key_of(1), out));
  EXPECT_EQ(out, bytes_of(128, 7));
  cs.sync();  // no-op, must not throw
}

TEST(ChunkStore, LogHitPromotesIntoCache) {
  StoreDir dir("promote");
  store::ChunkStore::Options o;
  o.dir = dir.str();
  store::ChunkStore cs(o);
  ASSERT_TRUE(cs.persistent());
  cs.put(key_of(1), bytes_of(99, 3), {});
  cs.cache().clear();
  EXPECT_FALSE(cs.cache().contains(key_of(1)));
  Bytes out;
  ASSERT_TRUE(cs.get(key_of(1), out));  // served by the log...
  EXPECT_EQ(out, bytes_of(99, 3));
  EXPECT_TRUE(cs.cache().contains(key_of(1)));  // ...and promoted
}

TEST(ChunkStore, StatsJsonShape) {
  store::ChunkStore cs(store::ChunkStore::Options{});
  const std::string js = cs.stats_json();
  EXPECT_NE(js.find("\"cache\""), std::string::npos);
  EXPECT_NE(js.find("\"hits\""), std::string::npos);
  EXPECT_NE(js.find("\"persistent\":false"), std::string::npos);
}

// ------------------------------------------------- BatchCompressor + store

TEST(BatchStoreReuse, SecondRunServedFromStore) {
  store::ChunkStore cs(store::ChunkStore::Options{});
  svc::BatchCompressor::Options o;
  o.threads = 2;
  o.store = &cs;
  svc::BatchCompressor batch(o);

  const std::vector<float> values = make_field_values(20000, 1);
  pfpl::Params params;
  params.eps = 1e-3;
  std::vector<svc::Job> jobs;
  jobs.push_back({"a", Field(values.data(), values.size()), params});
  jobs.push_back({"b", Field(values.data(), values.size()), params});

  // First run: job "a" compresses; job "b" has identical content, so by the
  // time phase 3 stores "a", "b" was already planned — both compress this
  // run, but the second *run* must be answered entirely from the store.
  const std::vector<svc::JobResult> first = batch.run(jobs);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_FALSE(first[0].failed);
  ASSERT_FALSE(first[1].failed);
  EXPECT_EQ(first[0].stream, first[1].stream);

  const std::vector<svc::JobResult> second = batch.run(jobs);
  ASSERT_FALSE(second[0].failed);
  ASSERT_FALSE(second[1].failed);
  EXPECT_TRUE(second[0].reused);
  EXPECT_TRUE(second[1].reused);
  EXPECT_EQ(batch.stats().jobs_reused, 2u);
  EXPECT_EQ(second[0].stream, first[0].stream);
  EXPECT_EQ(second[1].stream, first[1].stream);

  // Reused results decompress to the same values as fresh ones.
  const std::vector<u8> raw = pfpl::decompress(second[0].stream);
  EXPECT_EQ(raw.size(), values.size() * sizeof(float));
}

// ------------------------------------------------------------ append_batch

TEST(SegmentStore, AppendBatchGroupCommit) {
  StoreDir dir("batch");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  store::SegmentStore log(o);

  // A key that is already stored must be skipped by the batch's dedup.
  ASSERT_TRUE(log.put(key_of(0), bytes_of(64, 0xAA), {}));

  const Bytes p1 = bytes_of(100, 1), p2 = bytes_of(200, 2), p3 = bytes_of(300, 3);
  const Bytes p_old = bytes_of(64, 0xAA);
  std::vector<store::SegmentStore::BatchEntry> entries;
  entries.push_back({key_of(1), &p1, {DType::F32, EbType::ABS, 1e-3, 400}});
  entries.push_back({key_of(2), &p2, {}});
  entries.push_back({key_of(0), &p_old, {}});  // duplicate of the earlier put
  entries.push_back({key_of(2), &p2, {}});     // duplicate within the batch
  entries.push_back({key_of(3), &p3, {}});

  EXPECT_EQ(log.append_batch(entries), 3u);  // only the three new keys
  EXPECT_EQ(log.entry_count(), 4u);

  Bytes out;
  store::ChunkMeta meta;
  ASSERT_TRUE(log.get(key_of(1), out, &meta));
  EXPECT_EQ(out, p1);
  EXPECT_EQ(meta.raw_size, 400u);
  ASSERT_TRUE(log.get(key_of(2), out));
  EXPECT_EQ(out, p2);
  ASSERT_TRUE(log.get(key_of(3), out));
  EXPECT_EQ(out, p3);
  EXPECT_TRUE(log.verify().ok());
}

TEST(SegmentStore, AppendBatchPersistsAcrossReopenAndRotation) {
  StoreDir dir("batch_reopen");
  store::SegmentStore::Options o;
  o.dir = dir.str();
  o.max_segment_bytes = 2048;  // force rotation mid-batch
  {
    store::SegmentStore log(o);
    std::vector<Bytes> payloads;
    for (unsigned i = 0; i < 12; ++i) payloads.push_back(bytes_of(400 + i, u8(i)));
    std::vector<store::SegmentStore::BatchEntry> entries;
    for (unsigned i = 0; i < 12; ++i)
      entries.push_back({key_of(i), &payloads[i], {DType::F32, EbType::ABS, 1e-3, 400}});
    EXPECT_EQ(log.append_batch(entries), 12u);
    EXPECT_GT(log.verify().segments, 1u);  // the batch crossed a rotation
  }
  store::SegmentStore log(o);
  EXPECT_EQ(log.entry_count(), 12u);
  EXPECT_EQ(log.open_report().torn_bytes, 0u);
  for (unsigned i = 0; i < 12; ++i) {
    Bytes out;
    ASSERT_TRUE(log.get(key_of(i), out)) << i;
    EXPECT_EQ(out, bytes_of(400 + i, u8(i)));
  }
  EXPECT_TRUE(log.verify().ok());
}

#ifndef _WIN32
TEST(SegmentStore, BatchKillSurfacesOnlyCommittedPrefix) {
  // Durability ordering under a crash mid-batch: SIGKILL while the 3rd frame
  // of a 4-entry batch is being written must leave exactly the first two
  // entries recoverable — never a chunk the recovery scan doesn't cover —
  // and the torn 3rd frame must be truncated on reopen.
  StoreDir dir("batch_kill");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the env hook tears the 3rd written frame and raises SIGKILL.
    ::setenv("PFPL_STORE_TEST_KILL_AT_BATCH_ITEM", "3", 1);
    store::SegmentStore::Options o;
    o.dir = dir.str();
    store::SegmentStore log(o);
    std::vector<Bytes> payloads;
    for (unsigned i = 0; i < 4; ++i) payloads.push_back(bytes_of(512 + i, u8(i + 1)));
    std::vector<store::SegmentStore::BatchEntry> entries;
    for (unsigned i = 0; i < 4; ++i)
      entries.push_back({key_of(i), &payloads[i], {DType::F32, EbType::ABS, 1e-3, 512}});
    log.append_batch(entries);  // never returns
    _exit(0);                   // hook failed: parent sees a clean exit and fails
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of being killed";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  store::SegmentStore::Options o;
  o.dir = dir.str();
  store::SegmentStore log(o);
  EXPECT_GT(log.open_report().torn_bytes, 0u);  // the half-written 3rd frame
  EXPECT_EQ(log.entry_count(), 2u);
  Bytes out;
  ASSERT_TRUE(log.get(key_of(0), out));
  EXPECT_EQ(out, bytes_of(512, 1));
  ASSERT_TRUE(log.get(key_of(1), out));
  EXPECT_EQ(out, bytes_of(513, 2));
  EXPECT_FALSE(log.get(key_of(2), out));  // torn mid-write
  EXPECT_FALSE(log.get(key_of(3), out));  // never reached
  EXPECT_TRUE(log.verify().ok());
}
#endif

TEST(ChunkStore, PutBatchFillsBothTiers) {
  StoreDir dir("put_batch");
  store::ChunkStore::Options o;
  o.dir = dir.str();
  std::vector<Bytes> payloads;
  for (unsigned i = 0; i < 6; ++i) payloads.push_back(bytes_of(128 + i, u8(i)));
  {
    store::ChunkStore cs(o);
    std::vector<store::SegmentStore::BatchEntry> entries;
    for (unsigned i = 0; i < 6; ++i)
      entries.push_back({key_of(i), &payloads[i], {DType::F32, EbType::ABS, 1e-3, 128}});
    EXPECT_EQ(cs.put_batch(entries), 6u);
    // Cache tier: every get answers without touching the log.
    for (unsigned i = 0; i < 6; ++i) {
      Bytes out;
      ASSERT_TRUE(cs.get(key_of(i), out)) << i;
      EXPECT_EQ(out, payloads[i]);
    }
    EXPECT_GE(cs.cache().stats().hits, 6u);
    cs.sync();
  }
  // Persistent tier: a fresh ChunkStore (cold cache) still serves every key.
  store::ChunkStore cs(o);
  for (unsigned i = 0; i < 6; ++i) {
    Bytes out;
    ASSERT_TRUE(cs.get(key_of(i), out)) << i;
    EXPECT_EQ(out, payloads[i]);
  }
}
