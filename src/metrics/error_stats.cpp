#include "metrics/error_stats.hpp"

#include <cmath>
#include <limits>

namespace repro::metrics {
namespace {

template <typename T>
using VerifyReal = std::conditional_t<std::is_same_v<T, float>, double, long double>;

template <typename T>
ErrorStats compute_stats_impl(std::span<const T> orig, std::span<const T> recon) {
  ErrorStats s;
  s.count = orig.size();
  bool any = false;
  double mn = 0, mx = 0;
  double sum_sq = 0.0;
  std::size_t finite_pairs = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    T o = orig[i];
    T r = i < recon.size() ? recon[i] : T(0);
    if (std::isnan(o)) {
      if (!std::isnan(r)) ++s.nonfinite_mismatches;
      continue;
    }
    if (std::isinf(o)) {
      if (r != o) ++s.nonfinite_mismatches;
      continue;
    }
    if (!any) {
      mn = mx = static_cast<double>(o);
      any = true;
    } else {
      mn = std::min(mn, static_cast<double>(o));
      mx = std::max(mx, static_cast<double>(o));
    }
    if (!std::isfinite(r)) {
      ++s.nonfinite_mismatches;
      continue;
    }
    double d = std::abs(static_cast<double>(o) - static_cast<double>(r));
    s.max_abs = std::max(s.max_abs, d);
    sum_sq += d * d;
    ++finite_pairs;
    if (o != T(0)) s.max_rel = std::max(s.max_rel, d / std::abs(static_cast<double>(o)));
    if ((o > T(0) && r < T(0)) || (o < T(0) && r > T(0))) ++s.sign_flips;
  }
  s.value_range = any ? mx - mn : 0.0;
  s.zero_range = s.value_range == 0.0;
  s.mse = finite_pairs ? sum_sq / static_cast<double>(finite_pairs) : 0.0;
  // Always-finite PSNR: exact reconstruction hits the cap; a constant
  // (zero-range) field with real error reports 0 dB instead of the +inf the
  // range-based formula would produce (which used to hide the error).
  if (s.mse <= 0.0) {
    s.psnr = kPsnrCapDb;
  } else if (s.zero_range) {
    s.psnr = 0.0;
  } else {
    s.psnr = std::min(kPsnrCapDb,
                      20.0 * std::log10(s.value_range) - 10.0 * std::log10(s.mse));
  }
  return s;
}

template <typename T>
double finite_range_of(std::span<const T> v) {
  bool any = false;
  double mn = 0, mx = 0;
  for (T x : v) {
    if (!std::isfinite(x)) continue;
    double d = static_cast<double>(x);
    if (!any) {
      mn = mx = d;
      any = true;
    } else {
      mn = std::min(mn, d);
      mx = std::max(mx, d);
    }
  }
  return any ? mx - mn : 0.0;
}

template <typename T>
std::size_t count_violations_impl(std::span<const T> orig, std::span<const T> recon,
                                  double eps, EbType eb) {
  using V = VerifyReal<T>;
  std::size_t bad = 0;
  V bound = static_cast<V>(eps);
  if (eb == EbType::NOA) bound = static_cast<V>(eps) * static_cast<V>(finite_range_of(orig));
  const V one_plus = V(1) + static_cast<V>(eps);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    T o = orig[i];
    T r = i < recon.size() ? recon[i] : T(0);
    if (std::isnan(o)) {
      bad += !std::isnan(r);
      continue;
    }
    if (eb == EbType::ABS || eb == EbType::NOA) {
      if (std::isinf(o)) {
        bad += r != o;
        continue;
      }
      if (!std::isfinite(r)) {
        ++bad;
        continue;
      }
      V d = static_cast<V>(o) - static_cast<V>(r);
      if (d < 0) d = -d;
      bad += !(d <= bound);
    } else {  // REL
      if (std::isinf(o)) {
        bad += r != o;
        continue;
      }
      if (o == T(0)) {
        bad += r != T(0);
        continue;
      }
      bool same_sign = (o > T(0)) == (r > T(0)) && r != T(0);
      if (!same_sign || !std::isfinite(r)) {
        ++bad;
        continue;
      }
      V ao = static_cast<V>(o < T(0) ? -o : o);
      V ar = static_cast<V>(r < T(0) ? -r : r);
      bad += !(ar * one_plus >= ao && ar <= ao * one_plus);
    }
  }
  return bad;
}

}  // namespace

ErrorStats compute_stats(std::span<const float> o, std::span<const float> r) {
  return compute_stats_impl(o, r);
}
ErrorStats compute_stats(std::span<const double> o, std::span<const double> r) {
  return compute_stats_impl(o, r);
}

std::size_t count_violations(std::span<const float> o, std::span<const float> r, double eps,
                             EbType eb) {
  return count_violations_impl(o, r, eps, eb);
}
std::size_t count_violations(std::span<const double> o, std::span<const double> r, double eps,
                             EbType eb) {
  return count_violations_impl(o, r, eps, eb);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

}  // namespace repro::metrics
