// Section V-F analogue: per-stage micro-benchmarks (google-benchmark).
//
// The paper profiles the CUDA kernels and finds PFPL compute-bound with the
// quantizer doing only a few FP operations. These micro-benchmarks measure
// each pipeline stage and the fused end-to-end paths on this host, giving
// the per-stage cost breakdown behind the Figure 6/7 throughput numbers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/zerobyte.hpp"
#include "core/pfpl.hpp"
#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "data/rng.hpp"

using namespace repro;

namespace {

std::vector<float> smooth_input(std::size_t n) {
  data::Rng rng(7);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(std::sin(acc) + acc * 0.1);
  }
  return v;
}

std::vector<u32> quantized_words(std::size_t n) {
  auto v = smooth_input(n);
  pfpl::AbsQuantizer<float> q(1e-3);
  std::vector<u32> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = q.encode(v[i]);
  return w;
}

constexpr std::size_t kN = 1 << 20;  // 4 MB of f32

void BM_QuantizeAbs(benchmark::State& state) {
  auto v = smooth_input(kN);
  pfpl::AbsQuantizer<float> q(1e-3);
  std::vector<u32> w(kN);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kN; ++i) w[i] = q.encode(v[i]);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_QuantizeAbs);

void BM_QuantizeRel(benchmark::State& state) {
  auto v = smooth_input(kN);
  for (auto& x : v) x += 2.0f;
  pfpl::RelQuantizer<float> q(1e-3);
  std::vector<u32> w(kN);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kN; ++i) w[i] = q.encode(v[i]);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_QuantizeRel);

void BM_DeltaNegabinary(benchmark::State& state) {
  auto w = quantized_words(kN);
  std::vector<u32> buf(kN);
  for (auto _ : state) {
    buf = w;
    bits::delta_negabinary_encode(buf.data(), kN);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_DeltaNegabinary);

void BM_BitShuffle(benchmark::State& state) {
  auto w = quantized_words(kN);
  for (auto _ : state) {
    bits::bitshuffle(w.data(), kN);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_BitShuffle);

void BM_ZeroByteEncode(benchmark::State& state) {
  auto w = quantized_words(kN);
  bits::delta_negabinary_encode(w.data(), kN);
  bits::bitshuffle(w.data(), kN);
  for (auto _ : state) {
    std::vector<u8> out;
    out.reserve(kN * 4);
    bits::zerobyte_encode(reinterpret_cast<const u8*>(w.data()), kN * 4, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_ZeroByteEncode);

void BM_ChunkPipeline(benchmark::State& state) {
  auto w = quantized_words(kN);
  constexpr std::size_t cw = pfpl::chunk_words<u32>();
  for (auto _ : state) {
    std::vector<u8> out;
    out.reserve(kN * 4);
    for (std::size_t beg = 0; beg < kN; beg += cw)
      pfpl::chunk_encode(w.data() + beg, std::min(cw, kN - beg), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_ChunkPipeline);

void BM_PfplCompressSerial(benchmark::State& state) {
  auto v = smooth_input(kN);
  Field f(v.data(), v.size());
  for (auto _ : state) {
    Bytes c = pfpl::compress(f, {1e-3, EbType::ABS, pfpl::Executor::Serial});
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplCompressSerial);

void BM_PfplCompressOmp(benchmark::State& state) {
  auto v = smooth_input(kN);
  Field f(v.data(), v.size());
  for (auto _ : state) {
    Bytes c = pfpl::compress(f, {1e-3, EbType::ABS, pfpl::Executor::OpenMP});
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplCompressOmp);

void BM_PfplDecompressSerial(benchmark::State& state) {
  auto v = smooth_input(kN);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  for (auto _ : state) {
    auto raw = pfpl::decompress(c);
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PfplDecompressSerial);

}  // namespace

BENCHMARK_MAIN();
