// GPU-algorithm chunk kernels (simulated), paper Section III-E.
//
// These functions re-express the PFPL chunk pipeline the way the CUDA
// kernels compute it — per-thread work assignments, warp-shuffle bit
// transposes, block-wide prefix sums for output placement — instead of the
// sequential CPU loops in core/pipeline.hpp. They must produce *byte
// identical* chunk payloads; the test suite asserts this, which is the
// reproduction of the paper's CPU/GPU bit-compatibility guarantee.
//
// This is a functional simulation: one OS thread plays all lanes/threads of
// a block in lockstep. Timing is meaningless; only the algorithm and its
// output bytes are validated.
#pragma once

#include <cstring>
#include <vector>

#include "bits/negabinary.hpp"
#include "common/types.hpp"
#include "core/pipeline.hpp"
#include "sim/block.hpp"
#include "sim/warp.hpp"

namespace repro::sim {

namespace detail {

/// GPU-style zero-byte bitmap construction: each thread owns 8 consecutive
/// bytes ("we assign 8 consecutive bytes to each thread" — no atomics
/// needed), per-thread survivor counts are combined with a block-wide
/// exclusive scan, and survivors are scattered to their final offsets.
inline void gpu_mark_nonzero(const u8* data, std::size_t n, std::vector<u8>& bitmap,
                             std::vector<u8>& survivors) {
  const std::size_t threads = (n + 7) / 8;
  bitmap.assign(threads, 0);
  std::vector<u32> counts(threads + 1, 0);
  for (std::size_t t = 0; t < threads; ++t) {  // parallel on the device
    u8 bm = 0;
    u32 cnt = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      std::size_t i = t * 8 + j;
      if (i < n && data[i] != 0) {
        bm |= static_cast<u8>(1u << j);
        ++cnt;
      }
    }
    bitmap[t] = bm;
    counts[t] = cnt;
  }
  block_exclusive_scan(counts.data(), threads + 1);
  // counts[threads] now holds the total (the scan input had a 0 sentinel).
  survivors.resize(counts[threads]);
  for (std::size_t t = 0; t < threads; ++t) {  // scatter phase
    u32 w = counts[t];
    for (std::size_t j = 0; j < 8; ++j) {
      std::size_t i = t * 8 + j;
      if (i < n && data[i] != 0) survivors[w++] = data[i];
    }
  }
}

/// GPU-style repeat bitmap: bit i set iff byte i differs from byte i-1
/// (byte -1 := 0). Each thread reads its 8 bytes plus the left neighbour —
/// no serial dependence, unlike the CPU formulation with a running `prev`.
inline void gpu_mark_nonrepeat(const u8* data, std::size_t n, std::vector<u8>& bitmap,
                               std::vector<u8>& survivors) {
  const std::size_t threads = (n + 7) / 8;
  bitmap.assign(threads, 0);
  std::vector<u32> counts(threads, 0);
  for (std::size_t t = 0; t < threads; ++t) {
    u8 bm = 0;
    u32 cnt = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      std::size_t i = t * 8 + j;
      if (i >= n) break;
      u8 prev = i == 0 ? u8{0} : data[i - 1];
      if (data[i] != prev) {
        bm |= static_cast<u8>(1u << j);
        ++cnt;
      }
    }
    bitmap[t] = bm;
    counts[t] = cnt;
  }
  std::vector<u32> offs(counts);
  block_exclusive_scan(offs.data(), threads);
  u32 total = 0;
  for (std::size_t t = 0; t < threads; ++t) total += counts[t];
  survivors.resize(total);
  for (std::size_t t = 0; t < threads; ++t) {
    u32 w = offs[t];
    for (std::size_t j = 0; j < 8; ++j) {
      std::size_t i = t * 8 + j;
      if (i >= n) break;
      u8 prev = i == 0 ? u8{0} : data[i - 1];
      if (data[i] != prev) survivors[w++] = data[i];
    }
  }
}

/// Decode one bitmap level: reconstruct `n` bytes from a repeat bitmap and
/// its survivor bytes using a block-wide rank scan (prefix popcount), the way
/// the GPU decoder locates each thread's bytes.
inline void gpu_expand_repeat(const std::vector<u8>& bitmap, const u8* survivors,
                              std::size_t survivor_count, std::vector<u8>& out,
                              std::size_t n) {
  std::vector<u32> rank(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) rank[i + 1] = (bitmap[i >> 3] >> (i & 7)) & 1u;
  block_inclusive_scan(rank.data(), n + 1);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {  // each thread resolves its bytes
    u32 r = rank[i + 1];
    if (r == 0) {
      out[i] = 0;  // nothing changed yet: initial value
    } else {
      if (r > survivor_count) throw CompressionError("gpu_expand_repeat: corrupt stream");
      out[i] = survivors[r - 1];
    }
  }
}

/// Expand the data bytes from the zero-byte bitmap with a rank scan.
inline void gpu_expand_zero(const std::vector<u8>& bitmap, const u8* nonzero,
                            std::size_t nonzero_count, u8* out, std::size_t n) {
  std::vector<u32> rank(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) rank[i + 1] = (bitmap[i >> 3] >> (i & 7)) & 1u;
  block_inclusive_scan(rank.data(), n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if ((bitmap[i >> 3] >> (i & 7)) & 1u) {
      u32 r = rank[i + 1];
      if (r > nonzero_count) throw CompressionError("gpu_expand_zero: corrupt stream");
      out[i] = nonzero[r - 1];
    } else {
      out[i] = 0;
    }
  }
}

}  // namespace detail

/// GPU-structured zero-byte elimination; byte-identical to
/// bits::zerobyte_encode.
inline void gpu_zerobyte_encode(const u8* data, std::size_t n, std::vector<u8>& out) {
  std::vector<u8> bitmaps[bits::kZeroByteLevels + 1];
  std::vector<u8> repeats[bits::kZeroByteLevels];
  std::vector<u8> nonzero;
  detail::gpu_mark_nonzero(data, n, bitmaps[0], nonzero);
  for (int lvl = 0; lvl < bits::kZeroByteLevels; ++lvl)
    detail::gpu_mark_nonrepeat(bitmaps[lvl].data(), bitmaps[lvl].size(), bitmaps[lvl + 1],
                               repeats[lvl]);
  const std::vector<u8>& top = bitmaps[bits::kZeroByteLevels];
  out.insert(out.end(), top.begin(), top.end());
  for (int lvl = bits::kZeroByteLevels - 1; lvl >= 0; --lvl)
    out.insert(out.end(), repeats[lvl].begin(), repeats[lvl].end());
  out.insert(out.end(), nonzero.begin(), nonzero.end());
}

/// GPU-structured zero-byte decoding; consumes the same stream as
/// bits::zerobyte_decode. Returns bytes consumed.
inline std::size_t gpu_zerobyte_decode(const u8* in, std::size_t in_size, u8* data,
                                       std::size_t n) {
  std::size_t sizes[bits::kZeroByteLevels + 1];
  sizes[0] = (n + 7) / 8;
  for (int lvl = 1; lvl <= bits::kZeroByteLevels; ++lvl) sizes[lvl] = (sizes[lvl - 1] + 7) / 8;
  std::size_t pos = 0;
  auto take = [&](std::size_t k) {
    if (pos + k > in_size) throw CompressionError("gpu_zerobyte_decode: truncated stream");
    const u8* p = in + pos;
    pos += k;
    return p;
  };
  const u8* top = take(sizes[bits::kZeroByteLevels]);
  std::vector<u8> upper(top, top + sizes[bits::kZeroByteLevels]);
  for (int lvl = bits::kZeroByteLevels - 1; lvl >= 0; --lvl) {
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < sizes[lvl]; ++i)
      survivors += (upper[i >> 3] >> (i & 7)) & 1u;
    const u8* r = take(survivors);
    std::vector<u8> cur;
    detail::gpu_expand_repeat(upper, r, survivors, cur, sizes[lvl]);
    upper = std::move(cur);
  }
  std::size_t nz = 0;
  for (std::size_t i = 0; i < n; ++i) nz += (upper[i >> 3] >> (i & 7)) & 1u;
  const u8* z = take(nz);
  detail::gpu_expand_zero(upper, z, nz, data, n);
  return pos;
}

/// Full GPU-structured chunk encode. Same contract (and same bytes) as
/// pfpl::chunk_encode: returns true when stored compressed, false when the
/// raw fallback fires.
template <typename U>
bool gpu_chunk_encode(const U* words, std::size_t k, std::vector<u8>& out) {
  const std::size_t padded = pfpl::padded_words<U>(k);
  constexpr std::size_t tile = pfpl::tile_words<U>();
  std::vector<U> buf(padded, U{0});
  // Delta + negabinary, embarrassingly parallel: each thread reads its word
  // and its left neighbour (no running state).
  for (std::size_t i = 0; i < padded; ++i) {
    U cur = i < k ? words[i] : U{0};
    U prev = (i == 0) ? U{0} : (i - 1 < k ? words[i - 1] : U{0});
    buf[i] = bits::to_negabinary<U>(static_cast<U>(cur - prev));
  }
  // Warp-granularity bit shuffle: one simulated warp per tile.
  for (std::size_t w = 0; w < padded; w += tile) warp_transpose_bits(buf.data() + w);
  const std::size_t start = out.size();
  gpu_zerobyte_encode(reinterpret_cast<const u8*>(buf.data()), padded * sizeof(U), out);
  if (out.size() - start >= k * sizeof(U)) {
    out.resize(start);
    out.insert(out.end(), reinterpret_cast<const u8*>(words),
               reinterpret_cast<const u8*>(words) + k * sizeof(U));
    return false;
  }
  return true;
}

/// Full GPU-structured chunk decode; same contract as pfpl::chunk_decode.
/// The delta reconstruction uses a block-wide inclusive scan, which is the
/// reason the paper's GPU decompressor is slower than its compressor.
template <typename U>
std::size_t gpu_chunk_decode(const u8* in, std::size_t in_size, bool compressed, U* words,
                             std::size_t k) {
  if (!compressed) {
    if (in_size < k * sizeof(U)) throw CompressionError("gpu_chunk_decode: truncated raw chunk");
    std::memcpy(words, in, k * sizeof(U));
    return k * sizeof(U);
  }
  const std::size_t padded = pfpl::padded_words<U>(k);
  constexpr std::size_t tile = pfpl::tile_words<U>();
  std::vector<U> buf(padded);
  std::size_t used =
      gpu_zerobyte_decode(in, in_size, reinterpret_cast<u8*>(buf.data()), padded * sizeof(U));
  for (std::size_t w = 0; w < padded; w += tile) warp_transpose_bits(buf.data() + w);
  for (std::size_t i = 0; i < padded; ++i) buf[i] = bits::from_negabinary<U>(buf[i]);
  block_inclusive_scan(buf.data(), padded);  // prefix sum rebuilds the values
  std::memcpy(words, buf.data(), k * sizeof(U));
  return used;
}

}  // namespace repro::sim
