#include "core/stream.hpp"

#include <cstring>
#include <variant>

#include "core/pipeline.hpp"
#include "core/quantizers.hpp"
#include "fpmath/det_math.hpp"

namespace repro::pfpl {
namespace {

template <typename T>
struct TypedState {
  using Bits = typename fpmath::FloatTraits<T>::Bits;
  std::variant<AbsQuantizer<T>, RelQuantizer<T>> quant;
  std::vector<T> pending;  // < one chunk of raw values

  explicit TypedState(const Header& h)
      : quant(h.eb_type == EbType::REL
                  ? std::variant<AbsQuantizer<T>, RelQuantizer<T>>(
                        RelQuantizer<T>(h.eps, h.recon_param))
                  : std::variant<AbsQuantizer<T>, RelQuantizer<T>>(
                        AbsQuantizer<T>(h.recon_param))) {}

  Bits encode_value(T v) const {
    return std::visit([&](const auto& q) { return q.encode(v); }, quant);
  }
  T decode_word(Bits w) const {
    return std::visit([&](const auto& q) { return q.decode(w); }, quant);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

class StreamEncoderImpl {
 public:
  StreamEncoderImpl(DType dtype, const StreamEncoder::Options& opts) {
    header_.dtype = dtype;
    header_.eb_type = opts.eb;
    header_.eps = opts.eps;
    switch (opts.eb) {
      case EbType::ABS:
        header_.recon_param = opts.eps;
        break;
      case EbType::REL:
        header_.recon_param = fpmath::det_log1p(opts.eps);
        break;
      case EbType::NOA:
        if (!opts.noa_range)
          throw CompressionError(
              "streaming NOA needs Options::noa_range (global max - min)");
        header_.recon_param = opts.eps * *opts.noa_range;
        break;
    }
    if (dtype == DType::F32)
      state_.emplace<TypedState<float>>(header_);
    else
      state_.emplace<TypedState<double>>(header_);
  }

  template <typename T>
  void append(std::span<const T> values) {
    if (!std::holds_alternative<TypedState<T>>(state_))
      throw CompressionError("StreamEncoder: value type does not match configured dtype");
    auto& st = std::get<TypedState<T>>(state_);
    constexpr std::size_t cw = chunk_words<typename fpmath::FloatTraits<T>::Bits>();
    std::size_t i = 0;
    while (i < values.size()) {
      std::size_t take = std::min(cw - st.pending.size(), values.size() - i);
      st.pending.insert(st.pending.end(), values.begin() + i, values.begin() + i + take);
      i += take;
      if (st.pending.size() == cw) flush_chunk<T>();
    }
    count_ += values.size();
  }

  u64 count() const { return count_; }
  std::size_t compressed_size_so_far() const { return payload_.size(); }

  Bytes finish() {
    if (header_.dtype == DType::F32) {
      if (!std::get<TypedState<float>>(state_).pending.empty()) flush_chunk<float>();
    } else {
      if (!std::get<TypedState<double>>(state_).pending.empty()) flush_chunk<double>();
    }
    header_.value_count = count_;
    header_.chunk_count = static_cast<u32>(sizes_.size());
    Bytes out;
    out.reserve(sizeof(Header) + sizes_.size() * 4 + payload_.size());
    write_header(header_, out);
    const u8* sp = reinterpret_cast<const u8*>(sizes_.data());
    out.insert(out.end(), sp, sp + sizes_.size() * 4);
    out.insert(out.end(), payload_.begin(), payload_.end());
    return out;
  }

 private:
  template <typename T>
  void flush_chunk() {
    using Bits = typename fpmath::FloatTraits<T>::Bits;
    auto& st = std::get<TypedState<T>>(state_);
    std::vector<Bits> words(st.pending.size());
    for (std::size_t i = 0; i < words.size(); ++i) words[i] = st.encode_value(st.pending[i]);
    std::size_t start = payload_.size();
    bool compressed = chunk_encode(words.data(), words.size(), payload_);
    u32 sz = static_cast<u32>(payload_.size() - start);
    sizes_.push_back(compressed ? sz : (sz | kRawChunkFlag));
    st.pending.clear();
  }

  Header header_;
  std::variant<std::monostate, TypedState<float>, TypedState<double>> state_;
  std::vector<u32> sizes_;
  std::vector<u8> payload_;
  u64 count_ = 0;
};

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

class StreamDecoderImpl {
 public:
  explicit StreamDecoderImpl(const Bytes& stream) : stream_(stream) {
    header_ = read_header(stream);
    // Same header-consistency validation as the one-shot decoder.
    const u64 cw = header_.dtype == DType::F32 ? chunk_words<u32>() : chunk_words<u64>();
    const u64 n = header_.value_count;
    if (n / cw + (n % cw != 0 ? 1 : 0) != header_.chunk_count)
      throw CompressionError("PFPL stream: header value/chunk count mismatch");
    table_off_ = sizeof(Header);
    if (stream.size() < table_off_ + header_.chunk_count * 4)
      throw CompressionError("PFPL stream: truncated chunk table");
    sizes_.resize(header_.chunk_count);
    std::memcpy(sizes_.data(), stream.data() + table_off_, header_.chunk_count * 4);
    payload_off_ = table_off_ + header_.chunk_count * 4;
    if (header_.dtype == DType::F32)
      state_.emplace<TypedState<float>>(header_);
    else
      state_.emplace<TypedState<double>>(header_);
  }

  const Header& header() const { return header_; }
  u64 remaining() const { return header_.value_count - read_; }

  template <typename T>
  std::size_t read(std::span<T> out) {
    using Bits = typename fpmath::FloatTraits<T>::Bits;
    constexpr std::size_t cw = chunk_words<Bits>();
    if (!std::holds_alternative<TypedState<T>>(state_))
      throw CompressionError("StreamDecoder: output type does not match stream dtype");
    auto& st = std::get<TypedState<T>>(state_);
    std::size_t written = 0;
    while (written < out.size() && remaining() > 0) {
      if (buffered_values_ == consumed_values_) {
        // Decode the next chunk into the staging buffer.
        std::size_t k =
            static_cast<std::size_t>(std::min<u64>(cw, header_.value_count - decoded_values_));
        std::size_t csize = sizes_[chunk_] & ~kRawChunkFlag;
        std::size_t off = payload_off_ + offset_;
        if (off + csize > stream_.size())
          throw CompressionError("PFPL stream: truncated chunk");
        std::vector<Bits> words(k);
        chunk_decode(stream_.data() + off, csize, (sizes_[chunk_] & kRawChunkFlag) == 0,
                     words.data(), k);
        staging_.resize(k * sizeof(T));
        T* vals = reinterpret_cast<T*>(staging_.data());
        for (std::size_t i = 0; i < k; ++i) vals[i] = st.decode_word(words[i]);
        offset_ += csize;
        ++chunk_;
        decoded_values_ += k;
        buffered_values_ = k;
        consumed_values_ = 0;
      }
      std::size_t avail = buffered_values_ - consumed_values_;
      std::size_t take = std::min(avail, out.size() - written);
      const T* src = reinterpret_cast<const T*>(staging_.data()) + consumed_values_;
      std::copy(src, src + take, out.begin() + written);
      consumed_values_ += take;
      written += take;
      read_ += take;
    }
    return written;
  }

 private:
  const Bytes& stream_;
  Header header_;
  std::size_t table_off_ = 0, payload_off_ = 0;
  std::vector<u32> sizes_;
  std::variant<std::monostate, TypedState<float>, TypedState<double>> state_;
  std::vector<u8> staging_;  ///< one decoded chunk of scalar bytes
  std::size_t chunk_ = 0;
  u64 offset_ = 0;
  u64 decoded_values_ = 0;
  std::size_t buffered_values_ = 0, consumed_values_ = 0;
  u64 read_ = 0;
};

// ---------------------------------------------------------------------------
// Facade plumbing
// ---------------------------------------------------------------------------

StreamEncoder::StreamEncoder(DType dtype, const Options& opts)
    : impl_(std::make_unique<StreamEncoderImpl>(dtype, opts)) {}
StreamEncoder::~StreamEncoder() = default;
StreamEncoder::StreamEncoder(StreamEncoder&&) noexcept = default;
StreamEncoder& StreamEncoder::operator=(StreamEncoder&&) noexcept = default;

void StreamEncoder::append(std::span<const float> v) { impl_->append(v); }
void StreamEncoder::append(std::span<const double> v) { impl_->append(v); }
u64 StreamEncoder::count() const { return impl_->count(); }
std::size_t StreamEncoder::compressed_size_so_far() const {
  return impl_->compressed_size_so_far();
}
Bytes StreamEncoder::finish() { return impl_->finish(); }

StreamDecoder::StreamDecoder(const Bytes& stream)
    : impl_(std::make_unique<StreamDecoderImpl>(stream)) {}
StreamDecoder::~StreamDecoder() = default;
StreamDecoder::StreamDecoder(StreamDecoder&&) noexcept = default;
StreamDecoder& StreamDecoder::operator=(StreamDecoder&&) noexcept = default;

const Header& StreamDecoder::header() const { return impl_->header(); }
u64 StreamDecoder::remaining() const { return impl_->remaining(); }
std::size_t StreamDecoder::read(std::span<float> out) { return impl_->read(out); }
std::size_t StreamDecoder::read(std::span<double> out) { return impl_->read(out); }

}  // namespace repro::pfpl
