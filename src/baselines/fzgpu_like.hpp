// FZ-GPU-like baseline (Zhang et al., HPDC'23; paper Section VI): a fused
// GPU pipeline — prequantization + Lorenzo deltas, bit shuffle, and
// zero-region removal.
//
// Table III profile: NOA only (not guaranteed, '○'), float only, GPU only.
// The paper additionally notes FZ-GPU requires 3D inputs (it is excluded
// from the non-3D suites) and crashes at tight bounds on some inputs; we
// reproduce the 3D-only restriction via `requires_3d`.
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class FzGpuLikeCompressor final : public Compressor {
 public:
  std::string name() const override { return "FZ-GPU_CUDAsim"; }
  Features features() const override {
    Features f;
    f.noa = true;
    f.f32 = true;
    f.gpu = true;
    f.guarantee_noa = false;  // Table III '○'
    f.requires_3d = true;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
